//! The Click API annotation table of §4.1, rendered as data.
//!
//! The paper requires, for every data-structure and header-access API,
//! "(a) the data read and modified when calling into the API and (b) if
//! the API returns a pointer, the data referred to by the pointer". In
//! this reproduction those facts are *enforced* by
//! [`gallium_mir::Op::reads`]/[`gallium_mir::Op::writes`]; this module
//! exposes the same table declaratively so documentation, diagnostics, and
//! tests can check the two stay in sync.

/// One API annotation row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Annotation {
    /// The Click API (method) being annotated.
    pub api: &'static str,
    /// What it reads.
    pub reads: &'static str,
    /// What it modifies.
    pub writes: &'static str,
    /// What a returned pointer refers to, if any.
    pub pointee: Option<&'static str>,
}

/// The annotation table used by dependency extraction.
pub fn annotation_table() -> Vec<Annotation> {
    vec![
        Annotation {
            api: "Packet::network_header()",
            reads: "-",
            writes: "-",
            pointee: Some("the packet's IP header"),
        },
        Annotation {
            api: "Packet::transport_header()",
            reads: "-",
            writes: "-",
            pointee: Some("the packet's TCP/UDP header"),
        },
        Annotation {
            api: "HashMap::find(key*)",
            reads: "key, the HashMap",
            writes: "-",
            pointee: Some("the matching value slot (NULL on miss)"),
        },
        Annotation {
            api: "HashMap::insert(key*, value*)",
            reads: "key, value",
            writes: "the HashMap",
            pointee: None,
        },
        Annotation {
            api: "HashMap::erase(key*)",
            reads: "key",
            writes: "the HashMap",
            pointee: None,
        },
        Annotation {
            api: "Vector::operator[](idx)",
            reads: "idx, the Vector",
            writes: "-",
            pointee: Some("the idx-th element"),
        },
        Annotation {
            api: "Vector::size()",
            reads: "the Vector",
            writes: "-",
            pointee: None,
        },
        Annotation {
            api: "Packet::send()",
            reads: "the whole packet",
            writes: "the output stream",
            pointee: None,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gallium_mir::{Loc, Op, StateId, ValueId};

    /// The declarative table and the executable read/write sets must agree
    /// on the load-bearing facts.
    #[test]
    fn table_matches_op_footprints() {
        let table = annotation_table();
        assert_eq!(table.len(), 8);

        // HashMap::find reads the map, writes nothing.
        let get = Op::MapGet {
            map: StateId(0),
            key: vec![ValueId(0)],
        };
        assert_eq!(get.reads(), vec![Loc::State(StateId(0))]);
        assert!(get.writes().is_empty());

        // HashMap::insert modifies the map.
        let put = Op::MapPut {
            map: StateId(0),
            key: vec![ValueId(0)],
            value: vec![ValueId(1)],
        };
        assert_eq!(put.writes(), vec![Loc::State(StateId(0))]);

        // Vector reads both index (as SSA use) and the vector.
        let vget = Op::VecGet {
            vec: StateId(1),
            index: ValueId(0),
        };
        assert_eq!(vget.reads(), vec![Loc::State(StateId(1))]);
        assert_eq!(vget.uses(), vec![ValueId(0)]);

        // send() reads the whole packet and writes the output stream.
        assert!(Op::Send.reads().contains(&Loc::Payload));
        assert_eq!(Op::Send.writes(), vec![Loc::Output]);
    }
}
