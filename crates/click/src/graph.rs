//! Element graphs and their lowering to MIR.

use crate::element::Element;
use gallium_mir::{FuncBuilder, MirError, Program};
use std::collections::HashMap;

/// A Click-style element graph.
///
/// Elements are added with [`Graph::add`]; connections between an
/// element's output port and a downstream element with [`Graph::connect`]
/// (Click's `a[0] -> b` syntax). [`Graph::lower`] inlines the whole graph
/// into one MIR [`Program`], starting from the designated input element.
pub struct Graph {
    elements: Vec<Box<dyn Element>>,
    edges: HashMap<(usize, usize), usize>,
    input: Option<usize>,
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Graph {
    /// Empty graph.
    pub fn new() -> Self {
        Graph {
            elements: Vec::new(),
            edges: HashMap::new(),
            input: None,
        }
    }

    /// Add an element; returns its index. The first element added becomes
    /// the packet entry point unless [`Graph::set_input`] overrides it.
    pub fn add(&mut self, e: Box<dyn Element>) -> usize {
        self.elements.push(e);
        let idx = self.elements.len() - 1;
        if self.input.is_none() {
            self.input = Some(idx);
        }
        idx
    }

    /// Connect `from`'s output `port` to element `to`.
    pub fn connect(&mut self, from: usize, port: usize, to: usize) {
        assert!(from < self.elements.len(), "connect: bad source");
        assert!(to < self.elements.len(), "connect: bad target");
        assert!(
            port < self.elements[from].n_outputs(),
            "connect: element `{}` has no output {port}",
            self.elements[from].name()
        );
        self.edges.insert((from, port), to);
    }

    /// Override the entry element.
    pub fn set_input(&mut self, idx: usize) {
        assert!(idx < self.elements.len());
        self.input = Some(idx);
    }

    /// Inline the graph into a single program named `name`.
    pub fn lower(&self, name: &str) -> Result<Program, MirError> {
        let input = self
            .input
            .ok_or_else(|| MirError::Invalid("empty element graph".into()))?;
        let mut b = FuncBuilder::new(name);
        // Phase 1: every element declares its state.
        let mut state_handles = Vec::with_capacity(self.elements.len());
        for e in &self.elements {
            state_handles.push(e.declare_state(&mut b));
        }
        // Phase 2: recursive inlining from the entry element.
        let mut ctx = LowerCtx {
            graph: self,
            b,
            state_handles,
            depth: 0,
        };
        ctx.lower_element(input);
        // Whatever block lowering left unterminated ends the program.
        ctx.finish()
    }

    fn next_of(&self, from: usize, port: usize) -> Option<usize> {
        self.edges.get(&(from, port)).copied()
    }
}

/// Lowering context handed to each element.
pub struct LowerCtx<'g> {
    graph: &'g Graph,
    /// The function builder elements emit into.
    pub b: FuncBuilder,
    /// Per-element state handles returned by `declare_state`.
    pub state_handles: Vec<Vec<gallium_mir::StateId>>,
    depth: usize,
}

impl<'g> LowerCtx<'g> {
    /// Continue lowering at whatever is connected to `(from, port)`.
    /// Unconnected ports discard the packet, as in Click.
    pub fn lower_port(&mut self, from: usize, port: usize) {
        self.depth += 1;
        assert!(
            self.depth <= 10_000,
            "element graph lowering too deep (cycle?)"
        );
        match self.graph.next_of(from, port) {
            Some(next) => self.lower_element(next),
            None => {
                self.b.drop_pkt();
                self.b.ret();
            }
        }
        self.depth -= 1;
    }

    fn lower_element(&mut self, idx: usize) {
        // The graph reference outlives `self`, so the element borrow is
        // disjoint from the mutable context borrow.
        let graph: &'g Graph = self.graph;
        graph.elements[idx].lower(self, idx);
    }

    fn finish(self) -> Result<Program, MirError> {
        self.b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::{Classifier, ClassifyRule, Discard, SendOut};
    use gallium_mir::{Interpreter, StateStore};
    use gallium_net::{FiveTuple, IpProtocol, PacketBuilder, PortId, TcpFlags};

    #[test]
    fn empty_graph_rejected() {
        assert!(Graph::new().lower("x").is_err());
    }

    #[test]
    fn classifier_routes_tcp_and_drops_rest() {
        let mut g = Graph::new();
        let cls = g.add(Box::new(Classifier::new(vec![ClassifyRule::IpProto(6)])));
        let out = g.add(Box::new(SendOut));
        let discard = g.add(Box::new(Discard));
        g.connect(cls, 0, out); // TCP -> send
        g.connect(cls, 1, discard); // everything else -> drop
        let prog = g.lower("tcp_only").unwrap();

        let mut store = StateStore::new(&prog.states);
        let interp = Interpreter::new(&prog);

        let tcp = PacketBuilder::tcp(
            FiveTuple {
                saddr: 1,
                daddr: 2,
                sport: 3,
                dport: 4,
                proto: IpProtocol::Tcp,
            },
            TcpFlags(TcpFlags::ACK),
            80,
        )
        .build(PortId(0));
        let r = interp.run(&mut tcp.clone(), &mut store, 0).unwrap();
        assert!(r.sent().is_some());
        assert!(!r.dropped());

        let udp = PacketBuilder::udp(
            FiveTuple {
                saddr: 1,
                daddr: 2,
                sport: 3,
                dport: 4,
                proto: IpProtocol::Udp,
            },
            80,
        )
        .build(PortId(0));
        let r = interp.run(&mut udp.clone(), &mut store, 0).unwrap();
        assert!(r.dropped());
        assert!(r.sent().is_none());
    }

    #[test]
    fn unconnected_port_discards() {
        let mut g = Graph::new();
        let cls = g.add(Box::new(Classifier::new(vec![ClassifyRule::IpProto(6)])));
        let out = g.add(Box::new(SendOut));
        g.connect(cls, 0, out); // port 1 dangling
        let prog = g.lower("dangling").unwrap();
        let mut store = StateStore::new(&prog.states);
        let udp = PacketBuilder::udp(
            FiveTuple {
                saddr: 1,
                daddr: 2,
                sport: 3,
                dport: 4,
                proto: IpProtocol::Udp,
            },
            80,
        )
        .build(PortId(0));
        let r = Interpreter::new(&prog)
            .run(&mut udp.clone(), &mut store, 0)
            .unwrap();
        assert!(r.dropped());
    }
}
