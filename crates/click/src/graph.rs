//! Element graphs and their lowering to MIR.

use crate::element::Element;
use gallium_mir::{FuncBuilder, MirError, Program};
use std::collections::HashMap;

/// A Click-style element graph.
///
/// Elements are added with [`Graph::add`]; connections between an
/// element's output port and a downstream element with [`Graph::connect`]
/// (Click's `a[0] -> b` syntax). [`Graph::lower`] inlines the whole graph
/// into one MIR [`Program`], starting from the designated input element.
pub struct Graph {
    elements: Vec<Box<dyn Element>>,
    edges: HashMap<(usize, usize), usize>,
    input: Option<usize>,
    /// First wiring mistake, reported when the graph is lowered (the same
    /// deferred-error discipline as [`FuncBuilder`]).
    error: Option<MirError>,
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Graph {
    /// Empty graph.
    pub fn new() -> Self {
        Graph {
            elements: Vec::new(),
            edges: HashMap::new(),
            input: None,
            error: None,
        }
    }

    /// Record the first wiring mistake; later calls keep building so the
    /// whole graph can be diagnosed from one `lower` call.
    fn poison(&mut self, msg: String) {
        if self.error.is_none() {
            self.error = Some(MirError::Invalid(msg));
        }
    }

    /// The first wiring error recorded so far, if any.
    pub fn error(&self) -> Option<&MirError> {
        self.error.as_ref()
    }

    /// Add an element; returns its index. The first element added becomes
    /// the packet entry point unless [`Graph::set_input`] overrides it.
    pub fn add(&mut self, e: Box<dyn Element>) -> usize {
        self.elements.push(e);
        let idx = self.elements.len() - 1;
        if self.input.is_none() {
            self.input = Some(idx);
        }
        idx
    }

    /// Connect `from`'s output `port` to element `to`. Bad indices poison
    /// the graph; the error surfaces from [`Graph::lower`].
    pub fn connect(&mut self, from: usize, port: usize, to: usize) {
        let n = self.elements.len();
        if from >= n {
            self.poison(format!(
                "connect: source index {from} out of range ({n} elements)"
            ));
            return;
        }
        if to >= n {
            self.poison(format!(
                "connect: target index {to} out of range ({n} elements)"
            ));
            return;
        }
        if port >= self.elements[from].n_outputs() {
            let msg = format!(
                "connect: element `{}` has no output {port}",
                self.elements[from].name()
            );
            self.poison(msg);
            return;
        }
        self.edges.insert((from, port), to);
    }

    /// Override the entry element. An out-of-range index poisons the graph.
    pub fn set_input(&mut self, idx: usize) {
        if idx >= self.elements.len() {
            self.poison(format!(
                "set_input: index {idx} out of range ({} elements)",
                self.elements.len()
            ));
            return;
        }
        self.input = Some(idx);
    }

    /// Inline the graph into a single program named `name`.
    pub fn lower(&self, name: &str) -> Result<Program, MirError> {
        if let Some(e) = &self.error {
            return Err(e.clone());
        }
        let input = self
            .input
            .ok_or_else(|| MirError::Invalid("empty element graph".into()))?;
        let mut b = FuncBuilder::new(name);
        // Phase 1: every element declares its state.
        let mut state_handles = Vec::with_capacity(self.elements.len());
        for e in &self.elements {
            state_handles.push(e.declare_state(&mut b));
        }
        // Phase 2: recursive inlining from the entry element.
        let mut ctx = LowerCtx {
            graph: self,
            b,
            state_handles,
            depth: 0,
            error: None,
        };
        ctx.lower_element(input);
        // Whatever block lowering left unterminated ends the program.
        ctx.finish()
    }

    fn next_of(&self, from: usize, port: usize) -> Option<usize> {
        self.edges.get(&(from, port)).copied()
    }
}

/// Lowering context handed to each element.
pub struct LowerCtx<'g> {
    graph: &'g Graph,
    /// The function builder elements emit into.
    pub b: FuncBuilder,
    /// Per-element state handles returned by `declare_state`.
    pub state_handles: Vec<Vec<gallium_mir::StateId>>,
    depth: usize,
    error: Option<MirError>,
}

impl<'g> LowerCtx<'g> {
    /// Continue lowering at whatever is connected to `(from, port)`.
    /// Unconnected ports discard the packet, as in Click.
    pub fn lower_port(&mut self, from: usize, port: usize) {
        if self.error.is_some() {
            // Already poisoned: terminate the current block and stop
            // descending, so unwinding stays linear in the graph size.
            self.b.drop_pkt();
            self.b.ret();
            return;
        }
        self.depth += 1;
        // Inlining depth bound: any acyclic graph re-enters an element at
        // most once per (element, port) edge, so legitimate depth is tiny;
        // a cycle would otherwise recurse (and emit blocks) forever. Kept
        // well under the test-thread stack budget.
        if self.depth > 512 {
            // A cycle in the element graph: stop descending, close the
            // current block so the builder stays consistent, and surface
            // the diagnostic from `finish`.
            if self.error.is_none() {
                self.error = Some(MirError::Invalid(
                    "element graph lowering too deep (cycle?)".into(),
                ));
            }
            self.b.drop_pkt();
            self.b.ret();
            self.depth -= 1;
            return;
        }
        match self.graph.next_of(from, port) {
            Some(next) => self.lower_element(next),
            None => {
                self.b.drop_pkt();
                self.b.ret();
            }
        }
        self.depth -= 1;
    }

    fn lower_element(&mut self, idx: usize) {
        // The graph reference outlives `self`, so the element borrow is
        // disjoint from the mutable context borrow.
        let graph: &'g Graph = self.graph;
        graph.elements[idx].lower(self, idx);
    }

    fn finish(self) -> Result<Program, MirError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::{Classifier, ClassifyRule, Discard, SendOut};
    use gallium_mir::{Interpreter, StateStore};
    use gallium_net::{FiveTuple, IpProtocol, PacketBuilder, PortId, TcpFlags};

    #[test]
    fn empty_graph_rejected() {
        assert!(Graph::new().lower("x").is_err());
    }

    #[test]
    fn bad_connect_indices_poison_the_graph() {
        let mut g = Graph::new();
        let out = g.add(Box::new(SendOut));
        g.connect(5, 0, out); // no element 5
        let err = g.lower("broken").expect_err("must reject");
        assert_eq!(
            err,
            MirError::Invalid("connect: source index 5 out of range (1 elements)".into())
        );
    }

    #[test]
    fn bad_output_port_poisons_the_graph() {
        let mut g = Graph::new();
        let out = g.add(Box::new(SendOut));
        let discard = g.add(Box::new(Discard));
        g.connect(out, 7, discard); // SendOut has no port 7
        let err = g.lower("broken").expect_err("must reject");
        assert!(
            err.to_string().contains("has no output 7"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn out_of_range_input_poisons_the_graph() {
        let mut g = Graph::new();
        g.add(Box::new(SendOut));
        g.set_input(9);
        assert!(g.error().is_some());
        assert!(g.lower("broken").is_err());
    }

    #[test]
    fn cyclic_graph_reported_not_overflowed() {
        let mut g = Graph::new();
        let cls = g.add(Box::new(Classifier::new(vec![ClassifyRule::IpProto(6)])));
        g.connect(cls, 0, cls); // direct self-loop
        g.connect(cls, 1, cls);
        let err = g.lower("looped").expect_err("must reject");
        assert!(
            err.to_string().contains("too deep"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn classifier_routes_tcp_and_drops_rest() {
        let mut g = Graph::new();
        let cls = g.add(Box::new(Classifier::new(vec![ClassifyRule::IpProto(6)])));
        let out = g.add(Box::new(SendOut));
        let discard = g.add(Box::new(Discard));
        g.connect(cls, 0, out); // TCP -> send
        g.connect(cls, 1, discard); // everything else -> drop
        let prog = g.lower("tcp_only").unwrap();

        let mut store = StateStore::new(&prog.states);
        let interp = Interpreter::new(&prog);

        let tcp = PacketBuilder::tcp(
            FiveTuple {
                saddr: 1,
                daddr: 2,
                sport: 3,
                dport: 4,
                proto: IpProtocol::Tcp,
            },
            TcpFlags(TcpFlags::ACK),
            80,
        )
        .build(PortId(0));
        let r = interp.run(&mut tcp.clone(), &mut store, 0).unwrap();
        assert!(r.sent().is_some());
        assert!(!r.dropped());

        let udp = PacketBuilder::udp(
            FiveTuple {
                saddr: 1,
                daddr: 2,
                sport: 3,
                dport: 4,
                proto: IpProtocol::Udp,
            },
            80,
        )
        .build(PortId(0));
        let r = interp.run(&mut udp.clone(), &mut store, 0).unwrap();
        assert!(r.dropped());
        assert!(r.sent().is_none());
    }

    #[test]
    fn unconnected_port_discards() {
        let mut g = Graph::new();
        let cls = g.add(Box::new(Classifier::new(vec![ClassifyRule::IpProto(6)])));
        let out = g.add(Box::new(SendOut));
        g.connect(cls, 0, out); // port 1 dangling
        let prog = g.lower("dangling").unwrap();
        let mut store = StateStore::new(&prog.states);
        let udp = PacketBuilder::udp(
            FiveTuple {
                saddr: 1,
                daddr: 2,
                sport: 3,
                dport: 4,
                proto: IpProtocol::Udp,
            },
            80,
        )
        .build(PortId(0));
        let r = Interpreter::new(&prog)
            .run(&mut udp.clone(), &mut store, 0)
            .unwrap();
        assert!(r.dropped());
    }
}
