//! # gallium-click — the Click-style element frontend
//!
//! The paper's input programs are middleboxes "written using the Click
//! framework in C++" (§1): directed graphs of packet-processing elements.
//! This crate reproduces that authoring model for the Rust reproduction:
//!
//! * a [`graph::Graph`] of [`element::Element`]s with numbered output
//!   ports, mirroring Click's push configuration;
//! * an element library covering what the five evaluated middleboxes use
//!   (classifiers, header rewriters, counters, lookups, terminals);
//! * graph **lowering**: the whole element chain is inlined into a single
//!   MIR function, exactly as the paper inlines all calls before analysis
//!   ("Gallium inlines all other function calls before constructing the
//!   read and write sets", §4.1).
//!
//! The Click API *annotations* of §4.1 — which locations each data
//! structure method reads and writes, and what returned pointers refer to
//! — are carried by the IR operations themselves
//! ([`gallium_mir::Op::reads`]/[`writes`](gallium_mir::Op::writes)); the
//! elements here lower onto those annotated operations. [`annotations`]
//! renders the table for documentation and tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annotations;
pub mod element;
pub mod graph;

pub use annotations::{annotation_table, Annotation};
pub use element::{Classifier, ClassifyRule, Counter, Discard, HeaderRewrite, SendOut, Tee};
pub use graph::{Graph, LowerCtx};
