//! The end-to-end compiler.

use crate::server_codegen::server_listing;
use gallium_mir::{MirError, Program};
use gallium_p4::{generate, print_p4, CodegenError, P4Program};
use gallium_partition::{
    partition_program, ExplainReport, PartitionError, StagedProgram, SwitchModel,
};
use gallium_switchsim::LoadError;
use gallium_telemetry::names;
use gallium_verify::{VerifyError, VerifyReport};

/// Compilation failures, tagged by pipeline stage. The `Display` form
/// always leads with the stage name; MIR-stage errors carry the source
/// span (line/column or instruction id) produced by the frontend.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The frontend failed to build or parse the MIR input (carries the
    /// parser's line/column or the builder's instruction id).
    Mir(MirError),
    /// Partitioning failed (validation or internal inconsistency).
    Partition(PartitionError),
    /// Code generation failed (always an internal bug).
    Codegen(CodegenError),
    /// The generated program failed the switch's load-time re-check.
    Load(LoadError),
    /// The independent verifier rejected the compiler's own output (a
    /// compiler bug or an unloadable program the earlier stages missed).
    Verify(VerifyError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Mir(e) => write!(f, "mir: {e}"),
            CompileError::Partition(e) => write!(f, "partitioning: {e}"),
            CompileError::Codegen(e) => write!(f, "codegen: {e}"),
            CompileError::Load(e) => write!(f, "load: {e}"),
            CompileError::Verify(e) => write!(f, "verify: {e}"),
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Mir(e) => Some(e),
            CompileError::Partition(e) => Some(e),
            CompileError::Codegen(e) => Some(e),
            CompileError::Load(e) => Some(e),
            CompileError::Verify(e) => Some(e),
        }
    }
}

impl From<MirError> for CompileError {
    fn from(e: MirError) -> Self {
        CompileError::Mir(e)
    }
}

impl From<PartitionError> for CompileError {
    fn from(e: PartitionError) -> Self {
        CompileError::Partition(e)
    }
}

impl From<CodegenError> for CompileError {
    fn from(e: CodegenError) -> Self {
        CompileError::Codegen(e)
    }
}

impl From<LoadError> for CompileError {
    fn from(e: LoadError) -> Self {
        CompileError::Load(e)
    }
}

impl From<VerifyError> for CompileError {
    fn from(e: VerifyError) -> Self {
        CompileError::Verify(e)
    }
}

/// Knobs for [`compile_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileOptions {
    /// Run the independent verifier on the compiler's output and fail the
    /// compilation on any hard finding. Defaults to on in debug builds
    /// (and therefore in tests) and off in release builds, where the
    /// translation-validation cost is usually not wanted per compile.
    pub verify: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            verify: cfg!(debug_assertions),
        }
    }
}

/// Everything the compiler emits for one middlebox.
#[derive(Debug, Clone)]
pub struct CompiledMiddlebox {
    /// The partitioned program (assignment, placements, headers).
    pub staged: StagedProgram,
    /// The combined pre+post switch program.
    pub p4: P4Program,
    /// P4 source listing (Table 1's "Output (P4)" artifact).
    pub p4_source: String,
    /// Server program listing (Table 1's "Output (C++)" artifact).
    pub server_source: String,
    /// Per-instruction partition explanation (§4 narrative): where every
    /// statement landed and the first constraint that put it there.
    pub explain: ExplainReport,
    /// The independent verifier's report (translation validation,
    /// resource audit, lints). `None` when compiled with `verify: false`.
    pub verify: Option<VerifyReport>,
}

impl CompiledMiddlebox {
    /// Lines of the P4 listing (Table 1 metric).
    pub fn p4_loc(&self) -> usize {
        self.p4_source
            .lines()
            .filter(|l| !l.trim().is_empty())
            .count()
    }

    /// Lines of the server listing (Table 1 metric).
    pub fn server_loc(&self) -> usize {
        self.server_source
            .lines()
            .filter(|l| !l.trim().is_empty())
            .count()
    }
}

/// Compile `prog` for a switch described by `model`.
///
/// Every stage is timed into the global telemetry registry under
/// `gallium.core.compiler.<stage>_ns` (partitioning additionally records
/// its own decision counters under `gallium.partition.*`).
pub fn compile(prog: &Program, model: &SwitchModel) -> Result<CompiledMiddlebox, CompileError> {
    compile_with(prog, model, CompileOptions::default())
}

/// [`compile`] with explicit [`CompileOptions`].
///
/// With `verify: true`, the independent verifier of `gallium-verify` runs
/// over the staged program and the generated P4 after code generation;
/// any hard finding aborts the compilation with
/// [`CompileError::Verify`]. The full [`VerifyReport`] (including the
/// per-stage resource audit and warning lints) rides along on the
/// successful output.
pub fn compile_with(
    prog: &Program,
    model: &SwitchModel,
    opts: CompileOptions,
) -> Result<CompiledMiddlebox, CompileError> {
    let reg = gallium_telemetry::global();
    let _total = reg.histogram(names::COMPILER_COMPILE_NS).time();
    reg.counter(names::COMPILER_COMPILES).inc();

    let staged = {
        let _t = reg.histogram(names::COMPILER_PARTITION_NS).time();
        partition_program(prog, model)?
    };
    let p4 = {
        let _t = reg.histogram(names::COMPILER_P4_CODEGEN_NS).time();
        generate(&staged)?
    };
    let p4_source = {
        let _t = reg.histogram(names::COMPILER_P4_PRINT_NS).time();
        print_p4(&p4)
    };
    let server_source = {
        let _t = reg.histogram(names::COMPILER_SERVER_CODEGEN_NS).time();
        server_listing(&staged)
    };
    let explain = {
        let _t = reg.histogram(names::COMPILER_EXPLAIN_NS).time();
        staged.explain()
    };
    let verify = if opts.verify {
        let _t = reg.histogram(names::COMPILER_VERIFY_NS).time();
        let report = gallium_verify::verify(&staged, &p4, model);
        if let Some(e) = report.errors.first() {
            return Err(CompileError::Verify(e.clone()));
        }
        Some(report)
    } else {
        None
    };
    reg.counter(names::COMPILER_P4_TABLES_ALLOCATED)
        .add(p4.tables.len() as u64);
    reg.counter(names::COMPILER_P4_REGISTERS_ALLOCATED)
        .add(p4.registers.len() as u64);
    Ok(CompiledMiddlebox {
        staged,
        p4,
        p4_source,
        server_source,
        explain,
        verify,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gallium_mir::{BinOp, FuncBuilder, HeaderField};

    fn minilb() -> Program {
        let mut b = FuncBuilder::new("minilb");
        let map = b.decl_map("map", vec![16], vec![32], Some(65536));
        let backends = b.decl_vector("backends", 32, 16);
        let saddr = b.read_field(HeaderField::IpSaddr);
        let daddr = b.read_field(HeaderField::IpDaddr);
        let hash32 = b.bin(BinOp::Xor, saddr, daddr);
        let mask = b.cnst(0xFFFF, 32);
        let low = b.bin(BinOp::And, hash32, mask);
        let key = b.cast(low, 16);
        let res = b.map_get(map, vec![key]);
        let null = b.is_null(res);
        let hit = b.new_block();
        let miss = b.new_block();
        b.branch(null, miss, hit);
        b.switch_to(hit);
        let bk = b.extract(res, 0);
        b.write_field(HeaderField::IpDaddr, bk);
        b.send();
        b.ret();
        b.switch_to(miss);
        let len = b.vec_len(backends);
        let idx = b.bin(BinOp::Mod, hash32, len);
        let bk2 = b.vec_get(backends, idx);
        b.write_field(HeaderField::IpDaddr, bk2);
        b.map_put(map, vec![key], vec![bk2]);
        b.send();
        b.ret();
        b.finish().unwrap()
    }

    #[test]
    fn compile_produces_all_artifacts() {
        let c = compile(&minilb(), &SwitchModel::tofino_like()).unwrap();
        assert!(c.p4_loc() > 20, "P4 listing has substance");
        assert!(c.server_loc() > 5, "server listing has substance");
        assert!(c.p4_source.contains("table map"));
        assert!(c.server_source.contains("backends"));
        assert_eq!(c.staged.offloaded_count() + c.staged.server_count(), 17);
    }

    #[test]
    fn compile_respects_model() {
        // A switch with almost no memory forces the map off the switch.
        let tiny = SwitchModel::tiny(16, 64, 800, 20);
        let c = compile(&minilb(), &tiny).unwrap();
        assert!(c.p4.tables.is_empty());
    }
}
