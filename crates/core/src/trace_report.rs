//! Rendering for the packet flight recorder: resolve compact
//! [`TraceEvent`]s into named tables, states, blocks, and ports, grouped
//! per sampled packet.
//!
//! The recorder itself ([`gallium_telemetry::trace::Tracer`]) is
//! deliberately domain-agnostic — its events carry raw indices. This
//! module is the deployment-side half that knows the loaded P4 program
//! (table names), the staged MIR program (state names), and renders each
//! sampled packet's switch→server→switch journey either as aligned text
//! for humans or as JSON for tooling, in the style of
//! [`gallium_partition::ExplainReport`].

use gallium_p4::P4Program;
use gallium_partition::StagedProgram;
use gallium_telemetry::json_escape;
use gallium_telemetry::trace::{DropReason, EventKind, Hop, TraceEvent, Tracer};
use std::fmt::Write as _;

/// One resolved flight-recorder record: the raw event plus its
/// human-readable argument (table name, state name, port, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// The raw ring event.
    pub event: TraceEvent,
    /// The event's `arg` resolved against the deployed programs
    /// (e.g. `"table nat_map"`, `"state flows"`, `"port 2"`).
    pub detail: String,
}

/// Every recorded event of one sampled packet, in emission order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketTrace {
    /// The packet's dense sample id (0, 1, 2, … in injection order).
    pub trace_id: u32,
    /// Resolved events, oldest first.
    pub records: Vec<TraceRecord>,
}

impl PacketTrace {
    /// The packet's hop path with consecutive repeats collapsed — e.g. a
    /// slow-path packet yields `switch.pre → transfer → server →
    /// transfer → switch.post`, a fast-path packet just `switch.pre`.
    pub fn hop_path(&self) -> Vec<Hop> {
        let mut path = Vec::new();
        for r in &self.records {
            if path.last() != Some(&r.event.hop) {
                path.push(r.event.hop);
            }
        }
        path
    }

    /// Whether any recorded event is of `kind`.
    pub fn has(&self, kind: EventKind) -> bool {
        self.records.iter().any(|r| r.event.kind == kind)
    }
}

/// The rendered flight-recorder contents: every sampled packet still in
/// the ring, with indices resolved to names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceReport {
    /// Program name (from the loaded P4 program).
    pub program: String,
    /// Sampling period N (one packet in N).
    pub sample_one_in: u64,
    /// Ring capacity in events.
    pub ring_capacity: usize,
    /// Packets sampled over the recorder's lifetime.
    pub sampled: u64,
    /// Events emitted over the recorder's lifetime.
    pub events_total: u64,
    /// Events lost to ring overwrites.
    pub overwritten: u64,
    /// Per-packet traces, ordered by trace id.
    pub traces: Vec<PacketTrace>,
}

impl TraceReport {
    /// Resolve the recorder's current ring against the deployed programs.
    pub fn build(rec: &Tracer, p4: &P4Program, staged: &StagedProgram) -> Self {
        let events = rec.snapshot();
        let mut traces: Vec<PacketTrace> = Vec::new();
        for event in events {
            let detail = resolve_arg(&event, p4, staged);
            match traces.iter_mut().find(|t| t.trace_id == event.trace_id) {
                Some(t) => t.records.push(TraceRecord { event, detail }),
                None => traces.push(PacketTrace {
                    trace_id: event.trace_id,
                    records: vec![TraceRecord { event, detail }],
                }),
            }
        }
        traces.sort_by_key(|t| t.trace_id);
        TraceReport {
            program: p4.name.clone(),
            sample_one_in: rec.sample_one_in(),
            ring_capacity: rec.capacity(),
            sampled: rec.sampled(),
            events_total: rec.events(),
            overwritten: rec.overwritten(),
            traces,
        }
    }

    /// The trace for one sampled packet, if its events are still in the
    /// ring.
    pub fn trace(&self, trace_id: u32) -> Option<&PacketTrace> {
        self.traces.iter().find(|t| t.trace_id == trace_id)
    }

    /// Render as an aligned text table, one section per sampled packet.
    /// Timestamps are shown relative to each trace's first event.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "flight recorder: {} ({} traces in ring; sampled {}, \
             1-in-{}, ring {} events, {} overwritten)",
            self.program,
            self.traces.len(),
            self.sampled,
            self.sample_one_in,
            self.ring_capacity,
            self.overwritten,
        );
        for t in &self.traces {
            let path: Vec<&str> = t.hop_path().into_iter().map(Hop::label).collect();
            let _ = writeln!(out, "trace {}: {}", t.trace_id, path.join(" -> "));
            let t0 = t.records.first().map_or(0, |r| r.event.ts_ns);
            let kind_w = t
                .records
                .iter()
                .map(|r| r.event.kind.label().len())
                .max()
                .unwrap_or(0);
            for r in &t.records {
                let _ = writeln!(
                    out,
                    "  [{:<11}] +{:<8} {:<kind_w$}  {}",
                    r.event.hop.label(),
                    format!("{}ns", r.event.ts_ns.saturating_sub(t0)),
                    r.event.kind.label(),
                    r.detail,
                );
            }
        }
        out
    }

    /// Serialize the report to JSON (hand-rolled; no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"program\": {},\n  \"sample_one_in\": {},\n  \
             \"ring_capacity\": {},\n  \"sampled\": {},\n  \
             \"events\": {},\n  \"overwritten\": {},",
            json_escape(&self.program),
            self.sample_one_in,
            self.ring_capacity,
            self.sampled,
            self.events_total,
            self.overwritten,
        );
        out.push_str("\n  \"traces\": [");
        for (i, t) in self.traces.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {{\"trace_id\": {}, \"events\": [", t.trace_id);
            for (j, r) in t.records.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "\n      {{\"seq\": {}, \"hop\": {}, \"kind\": {}, \
                     \"arg\": {}, \"detail\": {}, \"ts_ns\": {}}}",
                    r.event.seq,
                    json_escape(r.event.hop.label()),
                    json_escape(r.event.kind.label()),
                    r.event.arg,
                    json_escape(&r.detail),
                    r.event.ts_ns,
                );
            }
            out.push_str("\n    ]}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Resolve one event's kind-dependent `arg` to a human-readable string.
fn resolve_arg(e: &TraceEvent, p4: &P4Program, staged: &StagedProgram) -> String {
    let table_name = |idx: u64| -> String {
        p4.tables
            .get(idx as usize)
            .map_or_else(|| format!("table #{idx}"), |t| format!("table {}", t.name))
    };
    match e.kind {
        EventKind::Ingress | EventKind::Emit => format!("port {}", e.arg),
        EventKind::TableHit | EventKind::TableMiss | EventKind::CacheMiss => table_name(e.arg),
        EventKind::TableEvict => format!("{} entries evicted", e.arg),
        EventKind::Drop => match DropReason::from_u64(e.arg) {
            Some(r) => format!("reason {}", r.label()),
            None => format!("reason #{}", e.arg),
        },
        EventKind::ToServer | EventKind::Reinject | EventKind::ServerRx => {
            format!("{} bytes", e.arg)
        }
        EventKind::SyncOps => format!("{} ops", e.arg),
        EventKind::HoldForCommit => format!("{} ns visible", e.arg),
        EventKind::ServerBlock => format!("block b{}", e.arg),
        EventKind::ServerStateOp => staged.prog.states.get(e.arg as usize).map_or_else(
            || format!("state #{}", e.arg),
            |s| format!("state {}", s.name),
        ),
        EventKind::ServerReplay => format!("{} instructions replayed", e.arg),
    }
}
