//! A runnable offloaded middlebox: switch + server + state sync.
//!
//! `Deployment` is the *functional* composition used by the equivalence
//! tests, the examples, and (wrapped in the discrete-event simulator) every
//! benchmark. It executes the full §3.2 pipeline:
//!
//! 1. a packet enters the switch and runs pre-processing;
//! 2. fast-path packets leave immediately; slow-path packets are
//!    encapsulated and handed to the server;
//! 3. the server runs the non-offloaded partition, and — before its packet
//!    is released (**output commit**) — pushes any replicated-state updates
//!    to the switch through the write-back protocol;
//! 4. the packet returns to the switch and runs post-processing.

use crate::compiler::CompiledMiddlebox;
use gallium_mir::StateStore;
use gallium_net::{Packet, PortId};
use gallium_p4::ControlPlaneOp;
use gallium_partition::StatePlacement;
use gallium_server::{CostModel, ExecError, MiddleboxServer};
use gallium_switchsim::{ControlError, ControlPlane, LoadError, Switch, SwitchConfig};
use gallium_telemetry::names;
use gallium_telemetry::trace::{DropReason, EventKind, Hop, Tracer};
use std::sync::Arc;
use std::time::Instant;

/// Why a deployment could not be stood up or provisioned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeployError {
    /// The generated program failed the switch's load-time checks.
    Load(LoadError),
    /// A provisioning control-plane operation was rejected.
    Control(ControlError),
    /// Cache mode was requested for a program whose state cannot be
    /// replayed on the server (e.g. a switch-only register).
    CacheUnavailable {
        /// Name of the offending state.
        state: String,
    },
    /// A cache annotation named a state with no switch table.
    MissingTable {
        /// The state that has no table.
        state: gallium_mir::StateId,
    },
    /// The server half rejected or faulted on a packet.
    Exec(ExecError),
    /// Post-processing forwarded a packet back to the server port — the
    /// traversal dispatch is broken.
    PostLoop,
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeployError::Load(e) => write!(f, "load: {e}"),
            DeployError::Control(e) => write!(f, "control plane: {e}"),
            DeployError::CacheUnavailable { state } => write!(
                f,
                "cache mode unavailable: register `{state}` is switch-only \
                 and cannot be replayed on the server"
            ),
            DeployError::MissingTable { state } => {
                write!(f, "state {state} has no switch table")
            }
            DeployError::Exec(e) => write!(f, "server: {e}"),
            DeployError::PostLoop => {
                write!(f, "post-processing looped back to the server")
            }
        }
    }
}

impl std::error::Error for DeployError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeployError::Load(e) => Some(e),
            DeployError::Control(e) => Some(e),
            DeployError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LoadError> for DeployError {
    fn from(e: LoadError) -> Self {
        DeployError::Load(e)
    }
}

impl From<ControlError> for DeployError {
    fn from(e: ControlError) -> Self {
        DeployError::Control(e)
    }
}

impl From<ExecError> for DeployError {
    fn from(e: ExecError) -> Self {
        DeployError::Exec(e)
    }
}

/// Aggregated counters across both halves of the middlebox.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeploymentStats {
    /// Packets injected from the network.
    pub injected: u64,
    /// Packets that never left the switch data plane.
    pub fast_path: u64,
    /// Packets that visited the server.
    pub slow_path: u64,
    /// Control-plane latency accumulated by state synchronization (ns),
    /// for the complete batches (stage + flip + fold + clear).
    pub sync_latency_ns: u64,
    /// Accumulated *visibility* latency: the prefix of each batch up to
    /// and including the write-back bit flip — the point at which §4.3.3
    /// releases the held packet.
    pub sync_visible_ns: u64,
    /// Server cycles consumed.
    pub server_cycles: u64,
    /// Packets lost because the server slow path returned a typed
    /// execution error ([`DeployError::Exec`]).
    pub drop_server_error: u64,
    /// Packets lost because a state-sync operation was rejected by the
    /// switch control plane ([`DeployError::Control`] during inject).
    pub drop_sync_rejected: u64,
    /// Packets lost to a post-processing traversal loop
    /// ([`DeployError::PostLoop`]).
    pub drop_post_loop: u64,
}

/// Telemetry owned by the deployment itself (the composition layer):
/// write-back acknowledgement counts and the output-commit hold time.
#[derive(Debug, Default)]
pub struct DeploymentTelemetry {
    /// Control-plane sync operations applied (acked) by the switch.
    pub sync_ops_acked: gallium_telemetry::Counter,
    /// Packets held for output commit (§4.3.3).
    pub held_for_commit: gallium_telemetry::Counter,
    /// Distribution of per-packet output-commit hold time: the modeled ns
    /// until the write-back visibility flip released the packet.
    pub hold_for_commit_ns: gallium_telemetry::Histogram,
    /// Bursts drained through [`Deployment::inject_batch_into`].
    pub batches: gallium_telemetry::Counter,
    /// Packets fully processed by those bursts (a burst aborted by an
    /// error counts only the packets that completed before it).
    pub batch_pkts: gallium_telemetry::Counter,
    /// Warm fast-path wall time (ns) of *sampled* switch-only packets.
    /// All `stage_*` histograms record only flight-recorder-sampled
    /// packets: the untraced path takes no timestamps at all.
    pub stage_fast_path_ns: gallium_telemetry::Histogram,
    /// Switch pre-processing wall time (ns) of sampled slow-path packets.
    pub stage_switch_pre_ns: gallium_telemetry::Histogram,
    /// Boundary-crossing wall time (ns): diverting encapsulated frames
    /// out of the emission stream and handing them to the server.
    pub stage_transfer_ns: gallium_telemetry::Histogram,
    /// Server slow-path wall time (ns), including the output-commit sync.
    pub stage_server_ns: gallium_telemetry::Histogram,
    /// Re-injection (switch post-processing) wall time (ns).
    pub stage_reinject_ns: gallium_telemetry::Histogram,
}

/// Reusable buffers threaded through the inject path: allocated once per
/// deployment, recycled across packets and batches so the warm fast path
/// performs no per-packet heap allocation.
#[derive(Debug, Default)]
struct DeployScratch {
    /// Frames the pre traversal diverted to the middlebox server.
    to_server: Vec<Packet>,
}

/// The composed switch+server middlebox.
#[derive(Debug)]
pub struct Deployment {
    /// The switch half.
    pub switch: Switch,
    /// The server half.
    pub server: MiddleboxServer,
    /// Counters.
    pub stats: DeploymentStats,
    /// Composition-layer telemetry (sync acks, commit-hold latency).
    pub telemetry: DeploymentTelemetry,
    server_port: PortId,
    clock_ns: u64,
    scratch: DeployScratch,
    /// Flight recorder shared with both halves; `None` until
    /// [`Deployment::enable_flight_recorder`] installs one.
    recorder: Option<Arc<Tracer>>,
}

impl Deployment {
    /// Stand up a deployment: load the P4 program (compiled-plan data
    /// plane, the default) and start the server.
    pub fn new(
        compiled: &CompiledMiddlebox,
        cfg: SwitchConfig,
        cost: CostModel,
    ) -> Result<Self, LoadError> {
        Self::new_inner(compiled, cfg, cost, true)
    }

    /// Stand up a deployment on the switch's AST-interpreter path — the
    /// reference semantics the compiled plan is differentially tested
    /// against. Production callers should use [`Deployment::new`].
    pub fn new_interpreter(
        compiled: &CompiledMiddlebox,
        cfg: SwitchConfig,
        cost: CostModel,
    ) -> Result<Self, LoadError> {
        Self::new_inner(compiled, cfg, cost, false)
    }

    fn new_inner(
        compiled: &CompiledMiddlebox,
        cfg: SwitchConfig,
        cost: CostModel,
        use_plan: bool,
    ) -> Result<Self, LoadError> {
        let server_port = cfg.server_port;
        let switch = if use_plan {
            Switch::load(compiled.p4.clone(), cfg)?
        } else {
            Switch::load_interpreter(compiled.p4.clone(), cfg)?
        };
        let server = MiddleboxServer::new(compiled.staged.clone(), cost);
        Ok(Deployment {
            switch,
            server,
            stats: DeploymentStats::default(),
            telemetry: DeploymentTelemetry::default(),
            server_port,
            clock_ns: 0,
            scratch: DeployScratch::default(),
            recorder: None,
        })
    }

    /// Stand up a deployment where the listed maps live on the switch as
    /// FIFO **caches** of the server's authoritative copies (the paper's
    /// §7 "reducing memory usage" extension): the switch table is sized to
    /// `entries` instead of the developer annotation, a cache miss replays
    /// the whole program on the server, and hits fill the cache through
    /// the control plane.
    ///
    /// Precondition: every state of the program must be server-accessible
    /// (no switch-only stateful operations such as data-plane
    /// fetch-and-add), since the replay executes the full program on the
    /// server. Violations are reported as a typed [`DeployError`].
    pub fn new_cached(
        compiled: &CompiledMiddlebox,
        cfg: SwitchConfig,
        cost: CostModel,
        caches: &[(gallium_mir::StateId, usize)],
    ) -> Result<Self, DeployError> {
        Self::new_cached_inner(compiled, cfg, cost, caches, true)
    }

    /// Cache-mode deployment on the switch's AST-interpreter path (see
    /// [`Deployment::new_interpreter`]); used by the differential tests.
    pub fn new_cached_interpreter(
        compiled: &CompiledMiddlebox,
        cfg: SwitchConfig,
        cost: CostModel,
        caches: &[(gallium_mir::StateId, usize)],
    ) -> Result<Self, DeployError> {
        Self::new_cached_inner(compiled, cfg, cost, caches, false)
    }

    fn new_cached_inner(
        compiled: &CompiledMiddlebox,
        mut cfg: SwitchConfig,
        cost: CostModel,
        caches: &[(gallium_mir::StateId, usize)],
        use_plan: bool,
    ) -> Result<Self, DeployError> {
        let staged = &compiled.staged;
        // Replay feasibility: switch-only *mutable* state breaks replay.
        for (i, st) in staged.prog.states.iter().enumerate() {
            let sid = gallium_mir::StateId(i as u32);
            if staged.placement_of(sid) == StatePlacement::SwitchOnly
                && matches!(st.kind, gallium_mir::StateKind::Register { .. })
            {
                return Err(DeployError::CacheUnavailable {
                    state: st.name.clone(),
                });
            }
        }
        // Shrink the cached tables in the loaded program so the loader's
        // SRAM accounting reflects the cache, not the annotation.
        let mut p4 = compiled.p4.clone();
        for (state, entries) in caches {
            let Some(idx) = p4.table_for_state(*state) else {
                return Err(DeployError::MissingTable { state: *state });
            };
            p4.tables[idx].size = *entries;
            cfg.cached_tables
                .push((p4.tables[idx].name.clone(), *entries));
        }
        let server_port = cfg.server_port;
        let switch = if use_plan {
            Switch::load(p4, cfg)?
        } else {
            Switch::load_interpreter(p4, cfg)?
        };
        let mut server = MiddleboxServer::new(staged.clone(), cost);
        server.set_cached_states(caches.iter().map(|(s, _)| *s).collect());
        Ok(Deployment {
            switch,
            server,
            stats: DeploymentStats::default(),
            telemetry: DeploymentTelemetry::default(),
            server_port,
            clock_ns: 0,
            scratch: DeployScratch::default(),
            recorder: None,
        })
    }

    /// Install a packet flight recorder: deterministic 1-in-`sample_one_in`
    /// sampling into a preallocated ring of `capacity` events, shared by
    /// the switch, the server, and the deployment's own boundary hooks.
    /// All memory is allocated here; sampled-packet emission on the
    /// dataplane is lock-free and alloc-free, and unsampled packets pay
    /// one shared-counter increment.
    ///
    /// Returns the installed tracer (also reachable via
    /// [`Deployment::recorder`]) so tests and reports can snapshot it.
    pub fn enable_flight_recorder(&mut self, sample_one_in: u64, capacity: usize) -> Arc<Tracer> {
        let rec = Arc::new(Tracer::new(sample_one_in, capacity));
        self.switch.set_tracer(Some(Arc::clone(&rec)));
        self.server.set_tracer(Some(Arc::clone(&rec)));
        self.recorder = Some(Arc::clone(&rec));
        rec
    }

    /// Remove the flight recorder (subsequent packets are untraced).
    pub fn disable_flight_recorder(&mut self) {
        self.switch.set_tracer(None);
        self.server.set_tracer(None);
        self.recorder = None;
    }

    /// The installed flight recorder, if any.
    pub fn recorder(&self) -> Option<&Arc<Tracer>> {
        self.recorder.as_ref()
    }

    /// Configure middlebox state (backend lists, rules, …) on the server's
    /// authoritative store, then push replicated/switch-resident entries to
    /// the switch — the operator's provisioning step.
    pub fn configure<F: FnOnce(&mut StateStore)>(&mut self, f: F) -> Result<(), DeployError> {
        f(self.server.store_mut());
        let ops = self.server.initial_sync();
        for op in &ops {
            self.switch.control(op)?;
        }
        Ok(())
    }

    /// Advance the middlebox clock (the server's `now()` source).
    pub fn set_time_ns(&mut self, t: u64) {
        self.clock_ns = t;
    }

    /// Inject one packet from the network and run it to completion through
    /// switch → (server → switch) as needed. Returns the frames emitted
    /// toward the network as `(egress port, packet)`.
    pub fn inject(&mut self, pkt: Packet) -> Result<Vec<(PortId, Packet)>, DeployError> {
        let mut emissions = Vec::new();
        self.inject_into(pkt, &mut emissions)?;
        Ok(emissions)
    }

    /// [`Deployment::inject`] appending into a caller-owned emissions
    /// buffer (not cleared first) — the allocation-reusing core of the
    /// inject path. On the warm fast path (switch-only, buffer capacity
    /// already grown) this performs no heap allocation.
    ///
    /// On error, emissions the failing packet produced before the fault
    /// remain in `out`; callers that need all-or-nothing behavior should
    /// truncate back to their own mark (as [`Deployment::inject`] does by
    /// handing in a fresh buffer).
    pub fn inject_into(
        &mut self,
        pkt: Packet,
        out: &mut Vec<(PortId, Packet)>,
    ) -> Result<(), DeployError> {
        self.stats.injected += 1;
        // Flight-recorder sampling. With no recorder installed this is a
        // single `None` branch; with one installed but the packet
        // unsampled it is one relaxed counter increment. Only sampled
        // packets arm the per-hop hooks and stage timestamps below.
        let trace = match &self.recorder {
            Some(rec) => rec.try_sample().map(|id| (Arc::clone(rec), id)),
            None => None,
        };
        if let Some((rec, id)) = &trace {
            rec.emit(
                *id,
                Hop::SwitchPre,
                EventKind::Ingress,
                u64::from(pkt.ingress.0),
            );
            self.switch.set_active_trace(Some(*id));
            self.server.set_active_trace(Some(*id));
        }
        let res = self.inject_inner(pkt, out, trace.as_ref().map(|(r, id)| (r.as_ref(), *id)));
        if trace.is_some() {
            self.switch.set_active_trace(None);
            self.server.set_active_trace(None);
        }
        if let Err(e) = &res {
            // Fault attribution is always on (no recorder required):
            // every inject error lands in exactly one typed drop counter.
            let reason = match e {
                DeployError::Exec(_) => Some(DropReason::DeployServerError),
                DeployError::Control(_) => Some(DropReason::DeploySyncRejected),
                DeployError::PostLoop => Some(DropReason::DeployPostLoop),
                _ => None,
            };
            match reason {
                Some(DropReason::DeployServerError) => self.stats.drop_server_error += 1,
                Some(DropReason::DeploySyncRejected) => self.stats.drop_sync_rejected += 1,
                Some(DropReason::DeployPostLoop) => self.stats.drop_post_loop += 1,
                _ => {}
            }
            if let (Some((rec, id)), Some(r)) = (&trace, reason) {
                rec.emit(*id, Hop::Transfer, EventKind::Drop, r as u64);
            }
        }
        res
    }

    /// The traversal core of [`Deployment::inject_into`], with the
    /// flight-recorder bracketing (sampling, active-trace arming, error
    /// attribution) peeled off into the wrapper. `trace` is `Some` only
    /// for sampled packets; every timestamp below is gated on it, so the
    /// untraced path reads no clocks.
    fn inject_inner(
        &mut self,
        pkt: Packet,
        out: &mut Vec<(PortId, Packet)>,
        trace: Option<(&Tracer, u32)>,
    ) -> Result<(), DeployError> {
        let t_in = trace.map(|_| Instant::now());
        let mark = out.len();
        self.switch.process_into(pkt, out);
        let t_pre = trace.map(|_| Instant::now());
        // Divert server-bound frames out of the emissions. The fast path —
        // no server frame — is a pure scan; the slow path pays an O(n)
        // extraction on the handful of packets that leave the data plane.
        let mut i = mark;
        while i < out.len() {
            if out[i].0 == self.server_port {
                let (_, frame) = out.remove(i);
                self.scratch.to_server.push(frame);
            } else {
                i += 1;
            }
        }
        if self.scratch.to_server.is_empty() {
            self.stats.fast_path += 1;
            if let Some(t) = t_in {
                self.telemetry.stage_fast_path_ns.record(elapsed_ns(t));
            }
            return Ok(());
        }
        self.stats.slow_path += 1;
        if let (Some(t0), Some(t1)) = (t_in, t_pre) {
            self.telemetry.stage_switch_pre_ns.record(span_ns(t0, t1));
            self.telemetry.stage_transfer_ns.record(elapsed_ns(t1));
        }

        // Move the scratch out so the loop can borrow `self` freely; it is
        // returned (empty, capacity intact) after the loop. Because it is
        // taken up front, a `?` abort cannot leak stale frames into the
        // next inject — only the warm capacity is lost on that cold path.
        let mut to_server = std::mem::take(&mut self.scratch.to_server);
        for mut frame in to_server.drain(..) {
            frame.ingress = self.server_port;
            let t_srv = trace.map(|_| Instant::now());
            let evictions_before = match trace {
                Some(_) => self.switch.eviction_count(),
                None => 0,
            };
            let srv = self.server.process(frame, self.clock_ns)?;
            self.stats.server_cycles += srv.cycles;

            // Output commit: apply the sync batch *before* the packet is
            // released back into the switch. The packet is released at the
            // visibility flip; the fold into the main tables continues off
            // the packet's critical path.
            let (visible, total) = self.apply_sync(&srv.sync_ops)?;
            self.stats.sync_latency_ns += total;
            self.stats.sync_visible_ns += visible;
            self.telemetry.sync_ops_acked.add(srv.sync_ops.len() as u64);
            if srv.held_for_commit {
                self.telemetry.held_for_commit.inc();
                self.telemetry.hold_for_commit_ns.record(visible);
            }
            if let Some((rec, id)) = trace {
                if srv.held_for_commit {
                    rec.emit(id, Hop::Transfer, EventKind::HoldForCommit, visible);
                }
                let evicted = self.switch.eviction_count() - evictions_before;
                if evicted > 0 {
                    rec.emit(id, Hop::Transfer, EventKind::TableEvict, evicted as u64);
                }
                self.telemetry
                    .stage_server_ns
                    .record(elapsed_ns(t_srv.expect("timestamped with trace")));
            }

            let t_back = trace.map(|_| Instant::now());
            for mut back in srv.to_switch {
                back.ingress = self.server_port;
                if let Some((rec, id)) = trace {
                    rec.emit(id, Hop::Transfer, EventKind::Reinject, back.len() as u64);
                }
                let back_mark = out.len();
                self.switch.process_into(back, out);
                if out[back_mark..].iter().any(|(p, _)| *p == self.server_port) {
                    return Err(DeployError::PostLoop);
                }
            }
            if let Some(t) = t_back {
                self.telemetry.stage_reinject_ns.record(elapsed_ns(t));
            }
        }
        self.scratch.to_server = to_server;
        Ok(())
    }

    /// Inject a burst of packets, concatenating every emission in arrival
    /// order (see [`Deployment::inject`]).
    ///
    /// **Error semantics:** processing stops at the first failing packet
    /// and its error is returned; emissions already produced by earlier
    /// packets of the burst are dropped with the return. Callers that need
    /// the partial output should use [`Deployment::inject_batch_into`],
    /// which leaves it in the caller's buffer.
    pub fn inject_batch(
        &mut self,
        pkts: impl IntoIterator<Item = Packet>,
    ) -> Result<Vec<(PortId, Packet)>, DeployError> {
        let mut out = Vec::new();
        self.inject_batch_into(pkts, &mut out)?;
        Ok(out)
    }

    /// Inject a burst, threading one reusable emissions buffer through
    /// switch → server → switch instead of allocating per packet: every
    /// emission is appended to `out` (not cleared first) in arrival order,
    /// and the per-packet observable behavior — emissions, counters,
    /// state — is identical to calling [`Deployment::inject`] in a loop.
    /// Returns the number of packets fully processed.
    ///
    /// The burst is software-pipelined: before packet *n* is injected,
    /// packet *n+1*'s first table key is built and its match-table line
    /// prefetched (a semantics-free hint on a dedicated scratch — see
    /// `Switch::prefetch_hint`), so the probe's memory latency overlaps
    /// packet *n*'s traversal instead of serializing behind it. When the
    /// plan's prefetch projection is pure, the hint's work is also
    /// *reused*: packet *n+1*'s traversal resumes from the primed state
    /// instead of replaying the key-build prologue.
    ///
    /// **Partial-failure semantics:** on `Err`, `out` retains every
    /// emission produced by the packets that completed before the failure
    /// — they are real transmissions that cannot be recalled — while the
    /// failing packet's own partial emissions are removed; packets after
    /// the failing one are not processed.
    pub fn inject_batch_into(
        &mut self,
        pkts: impl IntoIterator<Item = Packet>,
        out: &mut Vec<(PortId, Packet)>,
    ) -> Result<usize, DeployError> {
        self.telemetry.batches.inc();
        let mut done = 0usize;
        let mut it = pkts.into_iter();
        let mut cur = it.next();
        while let Some(pkt) = cur {
            let next = it.next();
            if let Some(n) = &next {
                self.switch.prefetch_hint(n);
            }
            let mark = out.len();
            match self.inject_into(pkt, out) {
                Ok(()) => done += 1,
                Err(e) => {
                    out.truncate(mark);
                    self.telemetry.batch_pkts.add(done as u64);
                    return Err(e);
                }
            }
            cur = next;
        }
        self.telemetry.batch_pkts.add(done as u64);
        Ok(done)
    }

    /// Apply a sync batch; returns `(visible_ns, total_ns)` where
    /// `visible_ns` covers the operations up to and including the first
    /// `SetWriteBackBit(true)` — the output-commit release point.
    fn apply_sync(&mut self, ops: &[ControlPlaneOp]) -> Result<(u64, u64), DeployError> {
        if ops.is_empty() {
            return Ok((0, 0));
        }
        let flip = ops
            .iter()
            .position(|o| matches!(o, ControlPlaneOp::SetWriteBackBit(true)))
            .map(|i| i + 1)
            .unwrap_or(ops.len());
        let visible = self.switch.control_batch(&ops[..flip])?;
        let rest = self.switch.control_batch(&ops[flip..])?;
        Ok((visible, visible + rest))
    }

    /// Check that every replicated map on the switch mirrors the server's
    /// authoritative copy — the invariant behind run-to-completion. For
    /// **cached** tables the requirement weakens to subset-correctness:
    /// every cached entry must match the authoritative value (no staleness),
    /// but the cache may hold fewer entries.
    pub fn replicated_consistent(&self) -> bool {
        let staged = self.server.staged();
        for (i, st) in staged.prog.states.iter().enumerate() {
            let sid = gallium_mir::StateId(i as u32);
            let cached = self.server.cached_states().contains(&sid);
            if staged.placement_of(sid) != StatePlacement::Replicated && !cached {
                continue;
            }
            if let gallium_mir::StateKind::Map { .. } = st.kind {
                let Some(table) = self.switch.table(&st.name) else {
                    return false;
                };
                let server_entries = self.server.store.map_entries(sid).expect("declared state");
                if cached {
                    // Subset: every cached entry exists authoritatively
                    // with the same value (no staleness, no ghosts).
                    let authoritative: std::collections::HashMap<_, _> =
                        server_entries.into_iter().collect();
                    for (k, cached_v) in table.entries() {
                        if authoritative.get(&k) != Some(&cached_v) {
                            return false;
                        }
                    }
                } else {
                    if table.len() != server_entries.len() {
                        return false;
                    }
                    for (k, v) in &server_entries {
                        if table.lookup_ref(k, self.switch.write_back_active())
                            != Some(v.as_slice())
                        {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// Fraction of injected packets that took the fast path.
    pub fn fast_path_fraction(&self) -> f64 {
        if self.stats.injected == 0 {
            return 0.0;
        }
        self.stats.fast_path as f64 / self.stats.injected as f64
    }

    /// Export one merged snapshot for the whole deployment: switch-side
    /// counters (`gallium.switchsim.*`), server-side counters
    /// (`gallium.server.*`), composition-layer counters and the
    /// output-commit hold histogram (`gallium.core.deployment.*`), plus
    /// everything in the process-wide registry (compiler/partition
    /// metrics).
    pub fn telemetry_snapshot(&self) -> gallium_telemetry::TelemetrySnapshot {
        let mut snap = gallium_telemetry::global().snapshot();
        snap.merge(&self.switch.telemetry_snapshot());
        snap.merge(&self.server.telemetry_snapshot());
        let s = &self.stats;
        snap.set_counter(names::DEPLOY_INJECTED, s.injected);
        snap.set_counter(names::DEPLOY_FAST_PATH, s.fast_path);
        snap.set_counter(names::DEPLOY_SLOW_PATH, s.slow_path);
        snap.set_counter(names::DEPLOY_SYNC_LATENCY_NS, s.sync_latency_ns);
        snap.set_counter(names::DEPLOY_SYNC_VISIBLE_NS, s.sync_visible_ns);
        snap.set_counter(names::DEPLOY_SERVER_CYCLES, s.server_cycles);
        snap.set_counter(names::DROP_DEPLOY_SERVER_ERROR, s.drop_server_error);
        snap.set_counter(names::DROP_DEPLOY_SYNC_REJECTED, s.drop_sync_rejected);
        snap.set_counter(names::DROP_DEPLOY_POST_LOOP, s.drop_post_loop);
        let t = &self.telemetry;
        snap.set_counter(names::DEPLOY_SYNC_OPS_ACKED, t.sync_ops_acked.get());
        snap.set_counter(names::DEPLOY_HELD_FOR_COMMIT, t.held_for_commit.get());
        snap.record_histogram(names::DEPLOY_HOLD_FOR_COMMIT_NS, &t.hold_for_commit_ns);
        snap.set_counter(names::DEPLOY_BATCHES, t.batches.get());
        snap.set_counter(names::DEPLOY_BATCH_PKTS, t.batch_pkts.get());
        snap.record_histogram(names::STAGE_FAST_PATH_NS, &t.stage_fast_path_ns);
        snap.record_histogram(names::STAGE_SWITCH_PRE_NS, &t.stage_switch_pre_ns);
        snap.record_histogram(names::STAGE_TRANSFER_NS, &t.stage_transfer_ns);
        snap.record_histogram(names::STAGE_SERVER_NS, &t.stage_server_ns);
        snap.record_histogram(names::STAGE_REINJECT_NS, &t.stage_reinject_ns);
        if let Some(rec) = &self.recorder {
            snap.set_counter(names::TRACE_SAMPLED, rec.sampled());
            snap.set_counter(names::TRACE_EVENTS, rec.events());
            snap.set_counter(names::TRACE_OVERWRITTEN, rec.overwritten());
            snap.set_counter(names::TRACE_RING_CAPACITY, rec.capacity() as u64);
        }
        snap
    }

    /// Resolve the flight recorder's ring against the deployed programs:
    /// per-sampled-packet hop journeys with table, state, and block names
    /// filled in. `None` until [`Deployment::enable_flight_recorder`].
    pub fn trace_report(&self) -> Option<crate::trace_report::TraceReport> {
        self.recorder.as_ref().map(|rec| {
            crate::trace_report::TraceReport::build(
                rec,
                self.switch.program(),
                self.server.staged(),
            )
        })
    }
}

/// Nanoseconds elapsed since `t`, saturating into `u64`.
fn elapsed_ns(t: Instant) -> u64 {
    u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Nanoseconds between two ordered instants, saturating into `u64`.
fn span_ns(from: Instant, to: Instant) -> u64 {
    u64::try_from(to.saturating_duration_since(from).as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile;
    use gallium_mir::interp::read_header_field;
    use gallium_mir::{BinOp, FuncBuilder, HeaderField, Interpreter, PacketAction, Program};
    use gallium_net::{FiveTuple, IpProtocol, PacketBuilder, TcpFlags};
    use gallium_partition::SwitchModel;

    fn minilb() -> Program {
        minilb_cap(Some(65536))
    }

    fn minilb_cap(cap: Option<usize>) -> Program {
        let mut b = FuncBuilder::new("minilb");
        let map = b.decl_map("map", vec![16], vec![32], cap);
        let backends = b.decl_vector("backends", 32, 16);
        let saddr = b.read_field(HeaderField::IpSaddr);
        let daddr = b.read_field(HeaderField::IpDaddr);
        let hash32 = b.bin(BinOp::Xor, saddr, daddr);
        let mask = b.cnst(0xFFFF, 32);
        let low = b.bin(BinOp::And, hash32, mask);
        let key = b.cast(low, 16);
        let res = b.map_get(map, vec![key]);
        let null = b.is_null(res);
        let hit = b.new_block();
        let miss = b.new_block();
        b.branch(null, miss, hit);
        b.switch_to(hit);
        let bk = b.extract(res, 0);
        b.write_field(HeaderField::IpDaddr, bk);
        b.send();
        b.ret();
        b.switch_to(miss);
        let len = b.vec_len(backends);
        let idx = b.bin(BinOp::Mod, hash32, len);
        let bk2 = b.vec_get(backends, idx);
        b.write_field(HeaderField::IpDaddr, bk2);
        b.map_put(map, vec![key], vec![bk2]);
        b.send();
        b.ret();
        b.finish().unwrap()
    }

    fn deployment() -> Deployment {
        let compiled = compile(&minilb(), &SwitchModel::tofino_like()).unwrap();
        let mut d =
            Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated()).unwrap();
        d.configure(|store| {
            let backends = compiled.staged.prog.state_by_name("backends").unwrap();
            store
                .vec_set_all(backends, vec![0xC0A80001, 0xC0A80002, 0xC0A80003])
                .unwrap();
        })
        .unwrap();
        d
    }

    fn pkt(saddr: u32, daddr: u32, flags: u8) -> Packet {
        PacketBuilder::tcp(
            FiveTuple {
                saddr,
                daddr,
                sport: 40000,
                dport: 80,
                proto: IpProtocol::Tcp,
            },
            TcpFlags(flags),
            200,
        )
        .build(PortId(1))
    }

    #[test]
    fn first_packet_slow_then_fast() {
        let mut d = deployment();
        let out1 = d
            .inject(pkt(0x0A000001, 0x0A0000FE, TcpFlags::SYN))
            .unwrap();
        assert_eq!(out1.len(), 1);
        let d1 = read_header_field(out1[0].1.bytes(), HeaderField::IpDaddr) as u32;
        assert!((0xC0A80001..=0xC0A80003).contains(&d1));
        assert_eq!(d.stats.slow_path, 1);
        assert!(d.stats.sync_latency_ns > 0, "insert required a sync batch");
        assert!(d.replicated_consistent());

        // Second packet of the same flow: pure fast path, same backend.
        let out2 = d
            .inject(pkt(0x0A000001, 0x0A0000FE, TcpFlags::ACK))
            .unwrap();
        assert_eq!(out2.len(), 1);
        let d2 = read_header_field(out2[0].1.bytes(), HeaderField::IpDaddr) as u32;
        assert_eq!(d1, d2);
        assert_eq!(d.stats.fast_path, 1);
        // No transfer header on the emitted packet.
        assert_eq!(out2[0].1.len(), 200);
    }

    #[test]
    fn matches_reference_interpreter_over_many_flows() {
        let prog = minilb();
        let mut d = deployment();
        let mut ref_store = StateStore::new(&prog.states);
        ref_store
            .vec_set_all(
                prog.state_by_name("backends").unwrap(),
                vec![0xC0A80001, 0xC0A80002, 0xC0A80003],
            )
            .unwrap();
        let interp = Interpreter::new(&prog);

        for i in 0..40u32 {
            // A mix of new flows and repeats.
            let saddr = 0x0A000000 + (i % 13);
            let daddr = 0x0A0000F0 + (i % 7);
            let p = pkt(saddr, daddr, TcpFlags::ACK);

            let mut ref_pkt = p.clone();
            let ref_out = interp.run(&mut ref_pkt, &mut ref_store, 0).unwrap();
            let expected: Vec<&Packet> = ref_out
                .actions
                .iter()
                .filter_map(|a| match a {
                    PacketAction::Send(s) => Some(s),
                    PacketAction::Drop => None,
                })
                .collect();

            let got = d.inject(p).unwrap();
            assert_eq!(got.len(), expected.len(), "packet {i}: emission count");
            for ((_, g), e) in got.iter().zip(expected) {
                assert_eq!(g.bytes(), e.bytes(), "packet {i}: bytes diverge");
            }
        }
        // Global state converged identically.
        let map = prog.state_by_name("map").unwrap();
        assert_eq!(
            d.server.store.map_entries(map).unwrap(),
            ref_store.map_entries(map).unwrap()
        );
        assert!(d.replicated_consistent());
        // Fast-path dominance: 13*7=91 > 40 distinct pairs... most flows are
        // new here, so just assert both paths were exercised.
        assert!(d.stats.fast_path + d.stats.slow_path == 40);
    }

    #[test]
    fn stats_fraction() {
        let mut d = deployment();
        for _ in 0..3 {
            d.inject(pkt(1, 2, TcpFlags::ACK)).unwrap();
        }
        // First slow, then two fast.
        assert_eq!(d.stats.slow_path, 1);
        assert_eq!(d.stats.fast_path, 2);
        assert!((d.fast_path_fraction() - 2.0 / 3.0).abs() < 1e-9);
    }

    fn burst(n: u32) -> Vec<Packet> {
        (0..n)
            .map(|i| {
                pkt(
                    0x0A000001 + (i % 5),
                    0x0A0000F0 + (i % 3),
                    if i % 2 == 0 {
                        TcpFlags::SYN
                    } else {
                        TcpFlags::ACK
                    },
                )
            })
            .collect()
    }

    #[test]
    fn batch_equals_per_packet_inject() {
        let mut seq = deployment();
        let mut expected = Vec::new();
        for p in burst(24) {
            expected.extend(seq.inject(p).unwrap());
        }

        let mut bat = deployment();
        let mut out = Vec::new();
        let done = bat.inject_batch_into(burst(24), &mut out).unwrap();
        assert_eq!(done, 24);
        assert_eq!(out.len(), expected.len());
        for ((pa, a), (pb, b)) in out.iter().zip(&expected) {
            assert_eq!(pa, pb);
            assert_eq!(a.bytes(), b.bytes());
        }
        assert_eq!(seq.stats, bat.stats);
        assert!(bat.replicated_consistent());
    }

    #[test]
    fn batch_error_retains_completed_packets_emissions() {
        // A 2-entry replicated map: the third distinct flow's sync-fold
        // insert is rejected by the control plane with `TableFull`.
        let compiled = compile(&minilb_cap(Some(2)), &SwitchModel::tofino_like()).unwrap();
        let mut d =
            Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated()).unwrap();
        d.configure(|store| {
            let backends = compiled.staged.prog.state_by_name("backends").unwrap();
            store
                .vec_set_all(backends, vec![0xC0A80001, 0xC0A80002, 0xC0A80003])
                .unwrap();
        })
        .unwrap();

        let flows: Vec<Packet> = (0..4)
            .map(|i| pkt(0x0A000001 + i, 0x0A0000FE, TcpFlags::SYN))
            .collect();
        let mut out = Vec::new();
        // Seed the buffer to check the batch appends rather than clears.
        out.push((PortId(9), pkt(1, 2, TcpFlags::ACK)));
        let err = d.inject_batch_into(flows, &mut out).unwrap_err();
        assert!(matches!(err, DeployError::Control(_)), "got {err:?}");
        // The sentinel plus one emission per completed packet survive; the
        // failing third flow's partial emissions were truncated away and
        // the fourth flow was never attempted.
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].0, PortId(9));
        assert_eq!(d.stats.injected, 3, "fourth packet never injected");

        // The Vec-returning wrapper drops partial output with the error.
        let mut d2 =
            Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated()).unwrap();
        d2.configure(|store| {
            let backends = compiled.staged.prog.state_by_name("backends").unwrap();
            store
                .vec_set_all(backends, vec![0xC0A80001, 0xC0A80002, 0xC0A80003])
                .unwrap();
        })
        .unwrap();
        let flows: Vec<Packet> = (0..4)
            .map(|i| pkt(0x0A000001 + i, 0x0A0000FE, TcpFlags::SYN))
            .collect();
        assert!(d2.inject_batch(flows).is_err());
    }
}
