//! # gallium-core — the Gallium compiler driver and deployment harness
//!
//! The public entry point of the reproduction. [`compile`] runs the whole
//! pipeline of Figure 2:
//!
//! ```text
//! middlebox source (MIR, from the Click frontend)
//!        │  dependency extraction      (gallium-analysis)
//!        ▼
//! dependency graph + hardware constraints
//!        │  partitioning               (gallium-partition)
//!        ▼
//! pre-processing / non-offloaded / post-processing
//!        │  code generation            (gallium-p4 + server listing)
//!        ▼
//! device code (P4)  +  server code (C++-equivalent)
//! ```
//!
//! [`Deployment`] wires the generated P4 program into the switch simulator
//! and the residual program into the server runtime, implements the
//! output-commit hand-off between them, and is the object every test,
//! example, and benchmark drives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compiler;
pub mod deployment;
pub mod server_codegen;
pub mod trace_report;

pub use compiler::{compile, compile_with, CompileError, CompileOptions, CompiledMiddlebox};
pub use deployment::{DeployError, Deployment, DeploymentStats, DeploymentTelemetry};
pub use server_codegen::server_listing;
pub use trace_report::{PacketTrace, TraceRecord, TraceReport};
