//! The iperf-style TCP microbenchmark of §6.3.

use crate::flows::{unique_tuple, FlowDesc};

/// The packet sizes swept by Figure 7.
pub const PACKET_SIZES: [usize; 3] = [100, 500, 1500];

/// Build the microbenchmark flow set: `conns` parallel long-running TCP
/// connections (the paper uses ten) at the given frame length. `bytes`
/// bounds each connection (large enough to saturate for the measurement
/// window).
pub fn microbench_flows(conns: usize, frame_len: usize, bytes: u64) -> Vec<FlowDesc> {
    (0..conns)
        .map(|i| FlowDesc {
            id: i as u64,
            bytes,
            frame_len,
            tuple: unique_tuple(1_000_000 + i as u64),
            worker: i, // each connection is its own worker: all run in parallel
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_parallel_connections() {
        let flows = microbench_flows(10, 1500, 1 << 20);
        assert_eq!(flows.len(), 10);
        let tuples: std::collections::HashSet<_> = flows.iter().map(|f| f.tuple).collect();
        assert_eq!(tuples.len(), 10, "distinct five-tuples");
        let workers: std::collections::HashSet<_> = flows.iter().map(|f| f.worker).collect();
        assert_eq!(workers.len(), 10, "fully parallel");
    }

    #[test]
    fn sizes_cover_figure7() {
        assert_eq!(PACKET_SIZES, [100, 500, 1500]);
    }
}
