//! Flow-size distributions after the CONGA datacenter workloads (§6.3).
//!
//! The paper draws flow sizes "from the CONGA work on datacenter traffic
//! load balancing. These workloads have both short flows and long flows.
//! The majority of flows in both … are small; 90% of the flows in both
//! workloads contain less than ten packets" and the evaluation notes "the
//! long flows [in data-mining] are longer than that in the enterprise
//! workload." The piecewise log-linear CDFs below encode exactly those
//! published properties.

use rand::Rng;

/// Which of the two CONGA-derived workloads to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CongaWorkload {
    /// The enterprise workload.
    Enterprise,
    /// The data-mining workload (heavier tail).
    DataMining,
}

impl CongaWorkload {
    /// Display name used in figure output.
    pub fn name(self) -> &'static str {
        match self {
            CongaWorkload::Enterprise => "Enterprise",
            CongaWorkload::DataMining => "DataMining",
        }
    }
}

/// An inverse-transform sampler over a piecewise log-linear CDF of flow
/// sizes in bytes.
#[derive(Debug, Clone)]
pub struct FlowSizeDistribution {
    /// `(size_bytes, cumulative_probability)`, strictly increasing in both.
    points: Vec<(f64, f64)>,
}

impl FlowSizeDistribution {
    /// The distribution for `workload`.
    pub fn conga(workload: CongaWorkload) -> Self {
        // Anchors: ~10 packets ≈ 14.5 KB at the 90th percentile for both;
        // data-mining is smaller at the low end and much heavier at the
        // tail (flows up to 1 GB vs 100 MB).
        let points = match workload {
            CongaWorkload::Enterprise => vec![
                (100.0, 0.0),
                (500.0, 0.25),
                (2_000.0, 0.55),
                (6_000.0, 0.78),
                (14_500.0, 0.90),
                (100_000.0, 0.945),
                (1_000_000.0, 0.975),
                (10_000_000.0, 0.99),
                (200_000_000.0, 1.0),
            ],
            CongaWorkload::DataMining => vec![
                (80.0, 0.0),
                (300.0, 0.45),
                (1_200.0, 0.70),
                (5_000.0, 0.83),
                (14_500.0, 0.90),
                (100_000.0, 0.93),
                (1_000_000.0, 0.95),
                (10_000_000.0, 0.97),
                (100_000_000.0, 0.99),
                (1_000_000_000.0, 1.0),
            ],
        };
        FlowSizeDistribution { points }
    }

    /// Sample one flow size in bytes.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.quantile(u)
    }

    /// The `u`-quantile (inverse CDF), log-interpolated between anchors.
    pub fn quantile(&self, u: f64) -> u64 {
        let u = u.clamp(0.0, 1.0);
        for w in self.points.windows(2) {
            let (s0, p0) = w[0];
            let (s1, p1) = w[1];
            if u <= p1 {
                let t = if p1 > p0 { (u - p0) / (p1 - p0) } else { 0.0 };
                let log_size = s0.ln() + t * (s1.ln() - s0.ln());
                return log_size.exp().round() as u64;
            }
        }
        self.points.last().map(|(s, _)| *s as u64).unwrap_or(1)
    }

    /// Draw `n` sizes.
    pub fn sample_n<R: Rng>(&self, rng: &mut R, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fraction_below(sizes: &[u64], threshold: u64) -> f64 {
        sizes.iter().filter(|s| **s < threshold).count() as f64 / sizes.len() as f64
    }

    #[test]
    fn ninety_percent_below_ten_packets() {
        // The paper's load-bearing property: 90% of flows < 10 packets
        // (≈ 14.5 KB at 1500-byte frames) in *both* workloads.
        let mut rng = StdRng::seed_from_u64(7);
        for wl in [CongaWorkload::Enterprise, CongaWorkload::DataMining] {
            let sizes = FlowSizeDistribution::conga(wl).sample_n(&mut rng, 20_000);
            let frac = fraction_below(&sizes, 14_500);
            assert!(
                (0.86..=0.93).contains(&frac),
                "{}: {frac} of flows below 10 packets",
                wl.name()
            );
        }
    }

    #[test]
    fn datamining_tail_is_heavier() {
        let mut rng = StdRng::seed_from_u64(11);
        let ent = FlowSizeDistribution::conga(CongaWorkload::Enterprise).sample_n(&mut rng, 50_000);
        let dm = FlowSizeDistribution::conga(CongaWorkload::DataMining).sample_n(&mut rng, 50_000);
        let ent_max = *ent.iter().max().unwrap();
        let dm_max = *dm.iter().max().unwrap();
        assert!(dm_max > ent_max, "dm tail {dm_max} vs ent {ent_max}");
        // Bytes concentrate in the tail far more for data-mining.
        let tail_share = |v: &[u64]| {
            let total: u128 = v.iter().map(|s| u128::from(*s)).sum();
            let tail: u128 = v
                .iter()
                .filter(|s| **s > 10_000_000)
                .map(|s| u128::from(*s))
                .sum();
            tail as f64 / total as f64
        };
        assert!(tail_share(&dm) > tail_share(&ent));
    }

    #[test]
    fn quantile_is_monotone() {
        let d = FlowSizeDistribution::conga(CongaWorkload::Enterprise);
        let mut last = 0u64;
        for i in 0..=100 {
            let q = d.quantile(i as f64 / 100.0);
            assert!(q >= last, "quantile not monotone at {i}");
            last = q;
        }
        assert_eq!(d.quantile(1.0), 200_000_000);
    }

    #[test]
    fn deterministic_with_seed() {
        let d = FlowSizeDistribution::conga(CongaWorkload::DataMining);
        let a = d.sample_n(&mut StdRng::seed_from_u64(3), 100);
        let b = d.sample_n(&mut StdRng::seed_from_u64(3), 100);
        assert_eq!(a, b);
    }
}
