//! # gallium-workloads — traffic generation for the evaluation
//!
//! Three workload families, matching §6.3:
//!
//! * [`microbench`] — the iperf-style TCP microbenchmark: "ten parallel
//!   TCP connections … different packet sizes (e.g., 100, 500, and 1500
//!   bytes)" (Figure 7, Table 2);
//! * [`conga`] — flow-size distributions "drawn from the CONGA work on
//!   datacenter traffic load balancing": an **enterprise** and a
//!   **data-mining** workload where "90% of the flows in both workloads
//!   contain less than ten packets" and the data-mining tail is heavier
//!   (Figures 8 and 9);
//! * [`flows`] — the 100-worker closed-loop driver: "100 threads … a
//!   thread sends a single connection at a time and starts a new
//!   connection when the current connection finishes."

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conga;
pub mod flows;
pub mod microbench;

pub use conga::{CongaWorkload, FlowSizeDistribution};
pub use flows::{FlowDesc, WorkerSchedule};
pub use microbench::{microbench_flows, PACKET_SIZES};
