//! Flow descriptors and the closed-loop worker schedule.

use gallium_net::{FiveTuple, IpProtocol};

/// One TCP connection to be replayed through the middlebox.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowDesc {
    /// Stable flow id.
    pub id: u64,
    /// Application bytes to transfer.
    pub bytes: u64,
    /// Frame length used for full-size data packets.
    pub frame_len: usize,
    /// The five-tuple (unique per flow).
    pub tuple: FiveTuple,
    /// The closed-loop worker this flow belongs to.
    pub worker: usize,
}

impl FlowDesc {
    /// Data packets needed: MSS = frame minus Ethernet/IP/TCP headers.
    pub fn data_packets(&self) -> u64 {
        let mss = (self.frame_len.saturating_sub(54)).max(1) as u64;
        self.bytes.div_ceil(mss).max(1)
    }

    /// Total packets on the forward path including SYN and FIN.
    pub fn total_packets(&self) -> u64 {
        self.data_packets() + 2
    }
}

/// Flows grouped into per-worker queues: worker `w` runs its flows
/// back-to-back, starting the next when the previous completes.
#[derive(Debug, Clone, Default)]
pub struct WorkerSchedule {
    /// `queues[w]` holds worker w's flows in start order.
    pub queues: Vec<Vec<FlowDesc>>,
}

impl WorkerSchedule {
    /// Distribute `sizes` (bytes per flow) round-robin over `workers`
    /// closed-loop workers, assigning unique five-tuples.
    pub fn build(sizes: &[u64], workers: usize, frame_len: usize) -> Self {
        assert!(workers > 0);
        let mut queues = vec![Vec::new(); workers];
        for (i, &bytes) in sizes.iter().enumerate() {
            let worker = i % workers;
            let tuple = unique_tuple(i as u64);
            queues[worker].push(FlowDesc {
                id: i as u64,
                bytes,
                frame_len,
                tuple,
                worker,
            });
        }
        WorkerSchedule { queues }
    }

    /// Total number of flows.
    pub fn total_flows(&self) -> usize {
        self.queues.iter().map(Vec::len).sum()
    }

    /// Total application bytes.
    pub fn total_bytes(&self) -> u64 {
        self.queues
            .iter()
            .flat_map(|q| q.iter())
            .map(|f| f.bytes)
            .sum()
    }
}

/// Deterministic unique five-tuple for flow `i` (clients in 10.1.0.0/16,
/// servers in 10.2.0.0/16).
pub fn unique_tuple(i: u64) -> FiveTuple {
    FiveTuple {
        saddr: 0x0A01_0000 | ((i % 251) as u32 + 1),
        daddr: 0x0A02_0000 | ((i % 13) as u32 + 1),
        sport: 1024 + ((i / 251) % 60_000) as u16,
        dport: 80,
        proto: IpProtocol::Tcp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_counts() {
        let f = FlowDesc {
            id: 0,
            bytes: 14_600,
            frame_len: 1500,
            tuple: unique_tuple(0),
            worker: 0,
        };
        assert_eq!(f.data_packets(), 11); // 14600 / 1446 = 10.09 → 11
        assert_eq!(f.total_packets(), 13);
        let tiny = FlowDesc { bytes: 1, ..f };
        assert_eq!(tiny.data_packets(), 1);
    }

    #[test]
    fn schedule_round_robins() {
        let sizes = vec![100, 200, 300, 400, 500];
        let s = WorkerSchedule::build(&sizes, 2, 1500);
        assert_eq!(s.queues[0].len(), 3);
        assert_eq!(s.queues[1].len(), 2);
        assert_eq!(s.total_flows(), 5);
        assert_eq!(s.total_bytes(), 1500);
        assert_eq!(s.queues[0][1].bytes, 300);
    }

    #[test]
    fn tuples_unique_within_window() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            assert!(seen.insert(unique_tuple(i)), "tuple collision at {i}");
        }
    }
}
