//! The statement dependency graph of §4.1.

use crate::bitset::BitSet;
use gallium_mir::cfg::Cfg;
use gallium_mir::{BlockId, Loc, Program, Terminator, ValueId};
use std::collections::HashMap;

/// Why one statement must run after another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// S1 modifies state S2 reads or writes (RAW/WAW), or S2 consumes S1's
    /// SSA result.
    Data,
    /// S1 reads state S2 modifies (WAR).
    ReverseData,
    /// S1 computes a branch condition deciding whether S2 executes.
    Control,
}

/// The dependency graph over a program's instructions, plus the derived
/// artifacts the partitioner needs (`⇝*`, loop membership, distances).
#[derive(Debug)]
pub struct DepGraph {
    n: usize,
    /// Forward edges: `edges[from]` lists `(to, kind)`.
    edges: Vec<Vec<(ValueId, DepKind)>>,
    /// Reverse adjacency for convenience.
    redges: Vec<Vec<(ValueId, DepKind)>>,
    /// `closure[s]` = set of t with s ⇝* t (non-reflexive unless cyclic).
    closure: Vec<BitSet>,
    /// Instructions in a CFG cycle (loop body) or a dependency cycle —
    /// label rule 5 forces these onto the server.
    in_loop: Vec<bool>,
    /// Position (block, index) of each instruction.
    position: Vec<(BlockId, usize)>,
}

impl DepGraph {
    /// Extract the dependency graph of `prog` (§4.1).
    pub fn build(prog: &Program) -> Self {
        let f = &prog.func;
        let n = f.insts.len();
        let cfg = Cfg::new(f);

        // Instruction positions.
        let mut position = vec![(BlockId(0), 0usize); n];
        for (b, i, v) in f.iter_insts() {
            position[v.0 as usize] = (b, i);
        }

        // "Can happen after": S2 can happen after S1.
        let block_reach: HashMap<BlockId, std::collections::HashSet<BlockId>> = f
            .blocks
            .iter()
            .map(|b| (b.id, cfg.reachable_from(b.id)))
            .collect();
        let can_happen_after = |s2: ValueId, s1: ValueId| -> bool {
            let (b1, i1) = position[s1.0 as usize];
            let (b2, i2) = position[s2.0 as usize];
            if b1 == b2 {
                if i2 > i1 {
                    return true;
                }
                // Same block, earlier or same index: only via a loop.
                return cfg.reaches_nonempty(b1, b2);
            }
            block_reach[&b1].contains(&b2)
        };

        let mut edges: Vec<Vec<(ValueId, DepKind)>> = vec![Vec::new(); n];
        let add = |edges: &mut Vec<Vec<(ValueId, DepKind)>>,
                   from: ValueId,
                   to: ValueId,
                   kind: DepKind| {
            if !edges[from.0 as usize].contains(&(to, kind)) {
                edges[from.0 as usize].push((to, kind));
            }
        };

        // SSA use-def edges are data dependencies (the definition must run
        // before any use).
        for v in 0..n {
            let vid = ValueId(v as u32);
            for u in f.insts[v].op.uses() {
                add(&mut edges, u, vid, DepKind::Data);
            }
        }

        // Location-conflict dependencies.
        let reads: Vec<Vec<Loc>> = f.insts.iter().map(|i| i.op.reads()).collect();
        let writes: Vec<Vec<Loc>> = f.insts.iter().map(|i| i.op.writes()).collect();
        let overlaps =
            |a: &[Loc], b: &[Loc]| -> bool { a.iter().any(|la| b.iter().any(|lb| la == lb)) };
        for s1 in 0..n {
            for s2 in 0..n {
                if s1 == s2 {
                    // A self-conflicting statement (e.g. a map insert in a
                    // loop) depends on itself when it can re-execute.
                    let v = ValueId(s1 as u32);
                    let self_conflict = overlaps(&writes[s1], &writes[s1])
                        && !writes[s1].is_empty()
                        || overlaps(&writes[s1], &reads[s1]);
                    if self_conflict && can_happen_after(v, v) {
                        add(&mut edges, v, v, DepKind::Data);
                    }
                    continue;
                }
                let v1 = ValueId(s1 as u32);
                let v2 = ValueId(s2 as u32);
                if !can_happen_after(v2, v1) {
                    continue;
                }
                // Data: S1 writes what S2 reads or writes.
                if overlaps(&writes[s1], &reads[s2]) || overlaps(&writes[s1], &writes[s2]) {
                    add(&mut edges, v1, v2, DepKind::Data);
                }
                // Reverse data: S1 reads what S2 writes.
                if overlaps(&reads[s1], &writes[s2]) {
                    add(&mut edges, v1, v2, DepKind::ReverseData);
                }
            }
        }

        // Control dependencies: block-level control dependence, with the
        // edge sourced at the instruction computing the branch condition.
        let block_cd = cfg.control_deps(f);
        for b in &f.blocks {
            for &br_block in &block_cd[b.id.0 as usize] {
                let Terminator::Branch { cond, .. } = &f.block(br_block).term else {
                    continue;
                };
                for &inst in &b.insts {
                    if inst != *cond {
                        add(&mut edges, *cond, inst, DepKind::Control);
                    }
                }
            }
        }

        // Output-commit dependencies: a packet emission must observe every
        // global-state update the packet performed (§4.3.3 — "the packet
        // causing the updates is buffered … until the updates are
        // reflected"). Statically: `Send`/`Drop` depends on every
        // state-writing statement that can happen before it.
        for s in 0..n {
            if !matches!(f.insts[s].op, gallium_mir::Op::Send | gallium_mir::Op::Drop) {
                continue;
            }
            let send = ValueId(s as u32);
            for w in 0..n {
                if w == s {
                    continue;
                }
                let writes_state = f.insts[w]
                    .op
                    .writes()
                    .iter()
                    .any(|l| matches!(l, Loc::State(_)));
                if writes_state && can_happen_after(send, ValueId(w as u32)) {
                    add(&mut edges, ValueId(w as u32), send, DepKind::Data);
                }
            }
        }

        // φ-nodes additionally depend on every branch that can steer which
        // incoming edge is taken: a φ cannot be evaluated without knowing
        // the branch outcome, even though its own block is not
        // control-dependent on the branch. Conservative rule: if a branch
        // block B reaches the φ's block M through two or more *different*
        // immediate predecessors of M, the φ depends on B's condition.
        for b in &f.blocks {
            for &v in &b.insts {
                let gallium_mir::Op::Phi { .. } = &f.inst(v).op else {
                    continue;
                };
                for br in &f.blocks {
                    let Terminator::Branch { cond, .. } = &br.term else {
                        continue;
                    };
                    let preds_reached = cfg
                        .preds(b.id)
                        .iter()
                        .filter(|p| **p == br.id || block_reach[&br.id].contains(p))
                        .count();
                    if preds_reached >= 2 {
                        add(&mut edges, *cond, v, DepKind::Control);
                    }
                }
            }
        }

        // Reverse edges.
        let mut redges: Vec<Vec<(ValueId, DepKind)>> = vec![Vec::new(); n];
        for (from, outs) in edges.iter().enumerate() {
            for (to, kind) in outs {
                redges[to.0 as usize].push((ValueId(from as u32), *kind));
            }
        }

        // Transitive closure by iterating union of successor closures.
        let mut closure: Vec<BitSet> = vec![BitSet::new(n); n];
        for (from, outs) in edges.iter().enumerate() {
            for (to, _) in outs {
                closure[from].insert(to.0 as usize);
            }
        }
        let mut changed = true;
        while changed {
            changed = false;
            for s in 0..n {
                let succs: Vec<usize> = closure[s].iter().collect();
                for t in succs {
                    if t != s {
                        let (a, b) = split_two(&mut closure, s, t);
                        changed |= a.union_with(b);
                    }
                }
            }
        }

        // Loop membership: in a CFG cycle or a dependency cycle.
        let mut in_loop = vec![false; n];
        for v in 0..n {
            let (b, _) = position[v];
            if cfg.reaches_nonempty(b, b) || closure[v].contains(v) {
                in_loop[v] = true;
            }
        }

        DepGraph {
            n,
            edges,
            redges,
            closure,
            in_loop,
            position,
        }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for an empty program.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Direct dependencies: edges `from ⇝ to`.
    pub fn deps_out(&self, from: ValueId) -> &[(ValueId, DepKind)] {
        &self.edges[from.0 as usize]
    }

    /// Direct reverse dependencies: statements `to` depends on.
    pub fn deps_in(&self, to: ValueId) -> &[(ValueId, DepKind)] {
        &self.redges[to.0 as usize]
    }

    /// Does `to` transitively depend on `from` (`from ⇝* to`, non-reflexive
    /// unless there is a cycle)?
    pub fn depends_transitively(&self, from: ValueId, to: ValueId) -> bool {
        self.closure[from.0 as usize].contains(to.0 as usize)
    }

    /// Whether the statement sits in a loop body or a dependency cycle
    /// (label-removing rule 5).
    pub fn in_loop(&self, v: ValueId) -> bool {
        self.in_loop[v.0 as usize]
    }

    /// `(block, index)` of a statement.
    pub fn position(&self, v: ValueId) -> (BlockId, usize) {
        self.position[v.0 as usize]
    }

    /// Longest dependency chain ending at each statement, counting the
    /// statement itself (entry distance, Constraint 2). Statements in
    /// cycles get `usize::MAX`.
    pub fn entry_distances(&self) -> Vec<usize> {
        self.distances(false)
    }

    /// Longest dependency chain starting at each statement (exit distance).
    pub fn exit_distances(&self) -> Vec<usize> {
        self.distances(true)
    }

    fn distances(&self, forward: bool) -> Vec<usize> {
        // Longest path in the dependency DAG via memoized DFS; cycle members
        // are saturated to MAX (they can never be offloaded anyway).
        let mut memo: Vec<Option<usize>> = vec![None; self.n];
        (0..self.n)
            .map(|v| self.longest(v, forward, &mut memo))
            .collect()
    }

    fn longest(&self, v: usize, forward: bool, memo: &mut Vec<Option<usize>>) -> usize {
        if self.in_loop[v] {
            return usize::MAX;
        }
        if let Some(d) = memo[v] {
            return d;
        }
        // Mark to guard against (impossible, given in_loop) recursion.
        memo[v] = Some(usize::MAX);
        let nbrs = if forward {
            &self.edges[v]
        } else {
            &self.redges[v]
        };
        let mut best = 0usize;
        for (u, _) in nbrs {
            let d = self.longest(u.0 as usize, forward, memo);
            best = best.max(d.saturating_add(0));
        }
        let d = if best == usize::MAX {
            usize::MAX
        } else {
            best + 1
        };
        memo[v] = Some(d);
        d
    }
}

/// Borrow two distinct elements of a slice mutably/immutably.
fn split_two(v: &mut [BitSet], a: usize, b: usize) -> (&mut BitSet, &BitSet) {
    debug_assert_ne!(a, b);
    if a < b {
        let (lo, hi) = v.split_at_mut(b);
        (&mut lo[a], &hi[0])
    } else {
        let (lo, hi) = v.split_at_mut(a);
        (&mut hi[0], &lo[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gallium_mir::{BinOp, FuncBuilder, HeaderField};

    /// MiniLB from §4 — the canonical example; Figure 3 is its dependency
    /// graph.
    fn minilb() -> Program {
        let mut b = FuncBuilder::new("minilb");
        let map = b.decl_map("map", vec![16], vec![32], Some(65536));
        let backends = b.decl_vector("backends", 32, 16);
        let saddr = b.read_field(HeaderField::IpSaddr); // v0
        let daddr = b.read_field(HeaderField::IpDaddr); // v1
        let hash32 = b.bin(BinOp::Xor, saddr, daddr); // v2
        let mask = b.cnst(0xFFFF, 32); // v3
        let low = b.bin(BinOp::And, hash32, mask); // v4
        let key = b.cast(low, 16); // v5
        let res = b.map_get(map, vec![key]); // v6
        let null = b.is_null(res); // v7
        let hit = b.new_block();
        let miss = b.new_block();
        b.branch(null, miss, hit);
        b.switch_to(hit);
        let bk = b.extract(res, 0); // v8
        b.write_field(HeaderField::IpDaddr, bk); // v9
        b.send(); // v10
        b.ret();
        b.switch_to(miss);
        let len = b.vec_len(backends); // v11
        let idx = b.bin(BinOp::Mod, hash32, len); // v12
        let bk2 = b.vec_get(backends, idx); // v13
        b.write_field(HeaderField::IpDaddr, bk2); // v14
        b.map_put(map, vec![key], vec![bk2]); // v15
        b.send(); // v16
        b.ret();
        b.finish().unwrap()
    }

    #[test]
    fn ssa_data_edges() {
        let p = minilb();
        let g = DepGraph::build(&p);
        // hash32 = xor(saddr, daddr): v2 depends on v0 and v1.
        assert!(g.deps_in(ValueId(2)).contains(&(ValueId(0), DepKind::Data)));
        assert!(g.deps_in(ValueId(2)).contains(&(ValueId(1), DepKind::Data)));
    }

    #[test]
    fn reverse_data_dependency_read_then_write() {
        let p = minilb();
        let g = DepGraph::build(&p);
        // v1 reads ip.daddr; v9/v14 write it later: WAR edges v1 -> v9, v1 -> v14.
        assert!(g
            .deps_out(ValueId(1))
            .contains(&(ValueId(9), DepKind::ReverseData)));
        assert!(g
            .deps_out(ValueId(1))
            .contains(&(ValueId(14), DepKind::ReverseData)));
    }

    #[test]
    fn state_data_dependency_mapget_then_mapput() {
        let p = minilb();
        let g = DepGraph::build(&p);
        // v6 (map.find) reads map, v15 (map.insert) writes it: WAR edge.
        assert!(g
            .deps_out(ValueId(6))
            .contains(&(ValueId(15), DepKind::ReverseData)));
    }

    #[test]
    fn control_dependencies_from_branch_condition() {
        let p = minilb();
        let g = DepGraph::build(&p);
        // v7 = isnull decides both branches: everything in hit/miss blocks
        // control-depends on v7.
        for target in [8u32, 9, 10, 11, 12, 13, 14, 15, 16] {
            assert!(
                g.deps_out(ValueId(7))
                    .contains(&(ValueId(target), DepKind::Control)),
                "v{target} should control-depend on v7"
            );
        }
        // Entry-block statements do not.
        assert!(!g
            .deps_out(ValueId(7))
            .iter()
            .any(|(t, k)| *t == ValueId(2) && *k == DepKind::Control));
    }

    #[test]
    fn transitive_closure() {
        let p = minilb();
        let g = DepGraph::build(&p);
        // saddr (v0) ⇝* send in hit branch (v10): v0 -> v2 -> ... -> v7 -> v10.
        assert!(g.depends_transitively(ValueId(0), ValueId(10)));
        // send (v10) depends on nothing downstream.
        assert!(!g.depends_transitively(ValueId(10), ValueId(0)));
    }

    #[test]
    fn no_loops_in_minilb() {
        let p = minilb();
        let g = DepGraph::build(&p);
        for v in 0..g.len() {
            assert!(!g.in_loop(ValueId(v as u32)), "v{v} wrongly in loop");
        }
    }

    #[test]
    fn loop_body_marked() {
        let mut b = FuncBuilder::new("loopy");
        let reg = b.decl_register("acc", 32);
        let hdr = b.new_block();
        let body = b.new_block();
        let done = b.new_block();
        b.jump(hdr);
        b.switch_to(hdr);
        let cur = b.reg_read(reg); // v0
        let limit = b.cnst(10, 32); // v1
        let c = b.bin(BinOp::Lt, cur, limit); // v2
        b.branch(c, body, done);
        b.switch_to(body);
        let one = b.cnst(1, 32); // v3
        let next = b.bin(BinOp::Add, cur, one); // v4
        b.reg_write(reg, next); // v5
        b.jump(hdr);
        b.switch_to(done);
        b.send(); // v6
        b.ret();
        let p = b.finish().unwrap();
        let g = DepGraph::build(&p);
        // Everything in hdr/body blocks is loop-resident.
        for v in [0u32, 1, 2, 3, 4, 5] {
            assert!(g.in_loop(ValueId(v)), "v{v} should be in loop");
        }
        // The send after the loop is not.
        assert!(!g.in_loop(ValueId(6)));
    }

    #[test]
    fn entry_distances_grow_along_chains() {
        let p = minilb();
        let g = DepGraph::build(&p);
        let d = g.entry_distances();
        // v0 has no deps; v2 depends on v0/v1; v7 is deeper still.
        assert_eq!(d[0], 1);
        assert_eq!(d[2], 2);
        assert!(d[7] > d[6]);
        assert!(d[10] > d[7]);
    }

    #[test]
    fn exit_distances_mirror_entry() {
        let p = minilb();
        let g = DepGraph::build(&p);
        let d = g.exit_distances();
        // The sends are chain-terminal (nothing depends on them).
        assert_eq!(d[10], 1);
        assert_eq!(d[16], 1);
        // The hash feeds long chains.
        assert!(d[2] > 3);
    }

    #[test]
    fn loop_distance_saturates() {
        let mut b = FuncBuilder::new("spin");
        let l = b.new_block();
        b.jump(l);
        b.switch_to(l);
        let one = b.cnst(1, 1);
        let _ = one;
        b.jump(l);
        let p = b.finish().unwrap();
        let g = DepGraph::build(&p);
        assert_eq!(g.entry_distances()[0], usize::MAX);
    }
}
