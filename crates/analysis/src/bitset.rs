//! A small fixed-capacity bit set used for transitive closures.

/// Fixed-capacity bit set over `0..len`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Empty set with capacity for `len` elements.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Capacity of the set.
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Insert `i`; returns true when newly inserted.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of capacity {}", self.len);
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let fresh = *w & mask == 0;
        *w |= mask;
        fresh
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Union `other` into `self`; returns true when anything changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let before = *a;
            *a |= b;
            changed |= *a != before;
        }
        changed
    }

    /// Number of elements present.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterate over members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |i| self.contains(*i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(0));
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn union() {
        let mut a = BitSet::new(10);
        let mut b = BitSet::new(10);
        a.insert(1);
        b.insert(2);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn out_of_range_insert_panics() {
        BitSet::new(4).insert(4);
    }

    #[test]
    fn contains_out_of_range_is_false() {
        assert!(!BitSet::new(4).contains(100));
    }
}
