//! SSA-value liveness.
//!
//! Used in two places of the compilation pipeline:
//!
//! * **Constraint 4** (§4.2.2): the per-packet metadata budget. Gallium
//!   "records when temporary variables are first and last used" and reuses
//!   scratchpad memory, so the metric is the maximum number of *live* bits
//!   at any program point — not the total number of temporaries.
//! * **Constraint 5 / transfer-header synthesis** (§4.3.2): "Gallium does a
//!   variable liveness test on the partition boundary to decide what
//!   variables need to be transferred across partition boundaries."

use gallium_mir::cfg::Cfg;
use gallium_mir::{Function, Op, Terminator, ValueId};
use std::collections::HashSet;

/// Per-block live-in/live-out sets of SSA values.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Values live on entry to each block.
    pub live_in: Vec<HashSet<ValueId>>,
    /// Values live on exit from each block.
    pub live_out: Vec<HashSet<ValueId>>,
}

impl Liveness {
    /// Backward dataflow over the CFG. φ-node operands are treated as used
    /// at the *end of the corresponding predecessor*, per standard SSA
    /// liveness.
    pub fn compute(f: &Function) -> Self {
        let n = f.blocks.len();
        let cfg = Cfg::new(f);
        let mut live_in: Vec<HashSet<ValueId>> = vec![HashSet::new(); n];
        let mut live_out: Vec<HashSet<ValueId>> = vec![HashSet::new(); n];

        // Per-block gen (upward-exposed uses) and kill (defs).
        let mut changed = true;
        while changed {
            changed = false;
            for b in f.blocks.iter().rev() {
                let bi = b.id.0 as usize;
                // live_out = union of successors' live_in (φ-adjusted).
                let mut out: HashSet<ValueId> = HashSet::new();
                for &s in cfg.succs(b.id) {
                    let sb = f.block(s);
                    for &v in &live_in[s.0 as usize] {
                        // φ results are not live-in from predecessors.
                        if !sb.insts.contains(&v) || !matches!(f.inst(v).op, Op::Phi { .. }) {
                            out.insert(v);
                        }
                    }
                    // φ operands flowing along this edge are live at our exit.
                    for &pv in &sb.insts {
                        if let Op::Phi { incoming } = &f.inst(pv).op {
                            for (pred, val) in incoming {
                                if *pred == b.id {
                                    out.insert(*val);
                                }
                            }
                        }
                    }
                }
                // live_in = (live_out - defs) + uses, walked backward.
                let mut live = out.clone();
                if let Terminator::Branch { cond, .. } = &b.term {
                    live.insert(*cond);
                }
                for &v in b.insts.iter().rev() {
                    live.remove(&v);
                    match &f.inst(v).op {
                        Op::Phi { .. } => {} // operands handled at pred exits
                        op => live.extend(op.uses()),
                    }
                }
                if live != live_in[bi] {
                    live_in[bi] = live;
                    changed = true;
                }
                if out != live_out[bi] {
                    live_out[bi] = out;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Maximum concurrently-live metadata bits at any instruction boundary,
    /// counting only values for which `counts` returns true (e.g. values
    /// materialized on the switch). This is the scratchpad-footprint metric
    /// of Constraint 4.
    pub fn max_live_bits(&self, f: &Function, counts: &dyn Fn(ValueId) -> bool) -> usize {
        let mut max = 0usize;
        for b in &f.blocks {
            let mut live = self.live_out[b.id.0 as usize].clone();
            if let Terminator::Branch { cond, .. } = &b.term {
                live.insert(*cond);
            }
            let bits = |set: &HashSet<ValueId>| -> usize {
                set.iter()
                    .filter(|v| counts(**v))
                    .map(|v| f.inst(*v).ty.meta_bits())
                    .sum()
            };
            max = max.max(bits(&live));
            for &v in b.insts.iter().rev() {
                live.remove(&v);
                match &f.inst(v).op {
                    Op::Phi { .. } => {}
                    op => live.extend(op.uses()),
                }
                max = max.max(bits(&live));
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gallium_mir::{BinOp, FuncBuilder, HeaderField};

    #[test]
    fn straight_line_liveness() {
        let mut b = FuncBuilder::new("t");
        let a = b.read_field(HeaderField::IpSaddr); // v0
        let c = b.read_field(HeaderField::IpDaddr); // v1
        let x = b.bin(BinOp::Xor, a, c); // v2
        b.write_field(HeaderField::IpDaddr, x); // v3
        b.ret();
        let p = b.finish().unwrap();
        let lv = Liveness::compute(&p.func);
        assert!(lv.live_in[0].is_empty());
        assert!(lv.live_out[0].is_empty());
        // At peak, v0+v1 (32+32) live simultaneously.
        let bits = lv.max_live_bits(&p.func, &|_| true);
        assert_eq!(bits, 64);
    }

    #[test]
    fn value_live_across_branch() {
        let mut b = FuncBuilder::new("t");
        let a = b.read_field(HeaderField::IpSaddr); // v0 (32 bits)
        let z = b.cnst(0, 32); // v1
        let c = b.bin(BinOp::Eq, a, z); // v2
        let t = b.new_block();
        let e = b.new_block();
        b.branch(c, t, e);
        b.switch_to(t);
        b.write_field(HeaderField::IpDaddr, a); // uses v0 in branch
        b.send();
        b.ret();
        b.switch_to(e);
        b.drop_pkt();
        b.ret();
        let p = b.finish().unwrap();
        let lv = Liveness::compute(&p.func);
        // v0 is live into the then-block but not the else-block.
        assert!(lv.live_in[1].contains(&ValueId(0)));
        assert!(!lv.live_in[2].contains(&ValueId(0)));
        assert!(lv.live_out[0].contains(&ValueId(0)));
    }

    #[test]
    fn phi_operand_live_at_pred_exit_only() {
        let mut b = FuncBuilder::new("t");
        let s = b.read_field(HeaderField::IpSaddr); // v0
        let z = b.cnst(0, 32); // v1
        let c = b.bin(BinOp::Eq, s, z); // v2
        let t = b.new_block();
        let e = b.new_block();
        let m = b.new_block();
        b.branch(c, t, e);
        b.switch_to(t);
        let x = b.cnst(1, 32); // v3
        b.jump(m);
        b.switch_to(e);
        let y = b.cnst(2, 32); // v4
        b.jump(m);
        b.switch_to(m);
        let ph = b.phi(vec![(t, x), (e, y)]); // v5
        b.write_field(HeaderField::IpDaddr, ph);
        b.send();
        b.ret();
        let p = b.finish().unwrap();
        let lv = Liveness::compute(&p.func);
        // v3 live out of t, v4 live out of e, neither live-in to m.
        assert!(lv.live_out[1].contains(&ValueId(3)));
        assert!(lv.live_out[2].contains(&ValueId(4)));
        assert!(!lv.live_in[3].contains(&ValueId(3)));
        assert!(!lv.live_in[3].contains(&ValueId(4)));
        // φ result is defined in m, so not live-in either.
        assert!(!lv.live_in[3].contains(&ValueId(5)));
    }

    #[test]
    fn loop_carried_value_live_around_backedge() {
        // φ forward references need the textual parser (the builder numbers
        // values by construction order).
        let text = r#"
program loopy {
  b0:
    v0 = const 0 : u32
    jmp b1
  b1:
    v1 = phi [b0: v0, b2: v4]
    v2 = const 10 : u32
    v3 = lt v1, v2
    br v3, b2, b3
  b2:
    v4 = add v1, v2
    jmp b1
  b3:
    ret
}
"#;
        let p = gallium_mir::parser::parse_program(text).unwrap();
        let lv = Liveness::compute(&p.func);
        // v1 (the φ) is live out of b1 into b2 and back around.
        assert!(lv.live_in[2].contains(&ValueId(1)));
        assert!(lv.live_out[2].contains(&ValueId(4)));
    }
}
