//! # gallium-analysis — dependency extraction (paper §4.1)
//!
//! Implements the static analyses the partitioner consumes:
//!
//! * **"can happen after"** — reachability over the control-flow graph, at
//!   instruction granularity (same-block ordering plus block reachability,
//!   including non-empty self-paths for loops);
//! * **read/write sets** — from each instruction's [`gallium_mir::Loc`]
//!   footprint, the IR-level equivalent of the paper's Click API
//!   annotations;
//! * the **three dependency kinds** of the program dependence graph: data
//!   (read-after-write / write-after-write, plus SSA use-def edges),
//!   reverse data (write-after-read), and control (an instruction depends
//!   on the statement computing the condition of every branch it is
//!   control-dependent on);
//! * the **transitive closure** `⇝*` used by the label-removing rules;
//! * **dependency distance** from program entry/exit (Constraint 2,
//!   §4.2.2);
//! * **liveness** of SSA values, used to size per-packet metadata
//!   (Constraint 4) and the transfer header (Constraint 5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod depgraph;
pub mod liveness;

pub use bitset::BitSet;
pub use depgraph::{DepGraph, DepKind};
pub use liveness::Liveness;
