//! Symbolic validation of the compiled dataplane: translation validation
//! plus abstract-interpretation lints over the `ExecPlan` micro-op IR.
//!
//! [`verify_plan`] is the load-time story told offline, for both
//! compiler configurations at once: it compiles the P4 program to a
//! **fused** and an **unfused** plan, runs the symbolic translation
//! validator ([`gallium_switchsim::symcheck`]) on each — proving the
//! committed micro-op streams equal to the AST node by node, or
//! returning the first diverging term as a typed error — and then runs
//! the interval + known-bits abstract interpreter ([`crate::absint`])
//! over the fused plan to produce structured lints:
//!
//! * [`LintKind::UnreachablePlanOp`] — a committed opcode no path from
//!   the traversal entry reaches;
//! * [`LintKind::ConstantGuard`] — a branch guard proven always-true or
//!   always-false by the abstraction (the compiler folds guards it can
//!   prove *syntactically*; the abstraction also sees slot ranges);
//! * [`LintKind::DeadBranch`] — the untaken side of such a guard;
//! * [`LintKind::ConstantKeyWord`] — a fused table-key word whose
//!   register is proven constant (the key column is degenerate);
//! * [`LintKind::UnobservableMetaStore`] — a written metadata slot
//!   nothing in the plan (or the transfer header) ever observes.
//!
//! Everything here is build/CI-time tooling; the warm path never runs it.

use crate::absint::{self, AbsState, AbsVal, PlanAbs};
use crate::lints::{Lint, LintKind, Severity, Span};
use gallium_p4::P4Program;
use gallium_switchsim::{check_plan, ExecPlan, OpView, PlanOptions, PlanView, SymCheckError};
use gallium_telemetry::names;
use std::collections::HashSet;
use std::fmt;

/// A hard plan-verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanVerifyError {
    /// The plan compiler itself rejected the program.
    Build {
        /// Whether the fused configuration failed.
        fused: bool,
        /// The compiler's reason.
        reason: String,
    },
    /// The compiled plan is not provably equal to the AST.
    Equivalence {
        /// Whether the fused configuration diverged.
        fused: bool,
        /// The first diverging term, typed.
        error: SymCheckError,
    },
}

impl fmt::Display for PlanVerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanVerifyError::Build { fused, reason } => {
                write!(
                    f,
                    "{} plan failed to build: {reason}",
                    if *fused { "fused" } else { "unfused" }
                )
            }
            PlanVerifyError::Equivalence { fused, error } => {
                write!(
                    f,
                    "{} plan ≢ AST: {error}",
                    if *fused { "fused" } else { "unfused" }
                )
            }
        }
    }
}

impl std::error::Error for PlanVerifyError {}

/// The outcome of symbolic plan validation for one program.
#[derive(Debug, Clone)]
pub struct PlanReport {
    /// Program name.
    pub program: String,
    /// Hard failures (empty when both plans are proven).
    pub errors: Vec<PlanVerifyError>,
    /// Abstract-interpretation lints over the fused plan.
    pub lints: Vec<Lint>,
    /// Nodes proven equivalent across both configurations.
    pub proved_nodes: usize,
    /// Symbolic terms materialized by the proofs.
    pub terms: usize,
}

impl PlanReport {
    /// Both configurations proven (lints may still be present).
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }

    /// Render the outcome as text.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "plan-verify: {} — {} ({} nodes proved, {} terms, {} errors, {} lints)",
            self.program,
            if self.is_clean() { "ok" } else { "FAILED" },
            self.proved_nodes,
            self.terms,
            self.errors.len(),
            self.lints.len()
        );
        for e in &self.errors {
            let _ = writeln!(out, "  error: {e}");
        }
        for l in &self.lints {
            let _ = writeln!(out, "  {l}");
        }
        out
    }
}

/// Symbolically validate the compiled plan(s) for `prog`: prove fused
/// and unfused plans ≡ AST, then lint the fused plan with the abstract
/// interpreter. Timed under `gallium.verify.plan.*`.
pub fn verify_plan(prog: &P4Program) -> PlanReport {
    let reg = gallium_telemetry::global();
    let _whole = reg.histogram(names::VERIFY_PLAN_NS).time();
    reg.counter(names::VERIFY_PLAN_RUNS).inc();

    let mut errors = Vec::new();
    let mut lints = Vec::new();
    let mut proved_nodes = 0usize;
    let mut terms = 0usize;
    let mut fused_plan = None;
    {
        let _t = reg.histogram(names::VERIFY_PLAN_SYMCHECK_NS).time();
        for fuse in [true, false] {
            match ExecPlan::build_with(prog, PlanOptions { fuse }) {
                Ok(plan) => {
                    match check_plan(prog, &plan) {
                        Ok(proof) => {
                            proved_nodes += proof.nodes;
                            terms += proof.terms;
                        }
                        Err(error) => {
                            errors.push(PlanVerifyError::Equivalence { fused: fuse, error })
                        }
                    }
                    if fuse {
                        fused_plan = Some(plan);
                    }
                }
                Err(e) => errors.push(PlanVerifyError::Build {
                    fused: fuse,
                    reason: e.to_string(),
                }),
            }
        }
    }
    if let Some(plan) = &fused_plan {
        let _t = reg.histogram(names::VERIFY_PLAN_ABSINT_NS).time();
        lints.extend(lint_plan(&plan.view(), prog));
    }

    reg.counter(names::VERIFY_PLAN_ERRORS)
        .add(errors.len() as u64);
    reg.counter(names::VERIFY_PLAN_LINTS)
        .add(lints.len() as u64);
    if errors.is_empty() {
        reg.counter(names::VERIFY_PLAN_PROVED).inc();
    }
    PlanReport {
        program: prog.name.clone(),
        errors,
        lints,
        proved_nodes,
        terms,
    }
}

/// Run the abstract-interpretation lints over a compiled plan view.
pub fn lint_plan(view: &PlanView, prog: &P4Program) -> Vec<Lint> {
    let mut out = Vec::new();
    let slot_bits = |slot: u16| -> u16 {
        view.slot_names
            .get(usize::from(slot))
            .and_then(|n| prog.metadata.iter().find(|m| &m.name == n))
            .map(|m| m.bits.min(64))
            .unwrap_or(64)
    };
    for (tv, traversal, entry_slots) in [
        (
            &view.pre,
            "pre",
            // The metadata scratch is zeroed per packet; every slot
            // enters the pre traversal as the constant 0.
            vec![AbsVal::cnst(0); view.n_slots],
        ),
        (&view.post, "post", {
            // Post entry: transfer-carried slots hold anything their
            // declared width admits; the rest of the scratch is zeroed.
            let mut slots = vec![AbsVal::cnst(0); view.n_slots];
            for s in &view.from_server_slots {
                if let Some(v) = slots.get_mut(usize::from(*s)) {
                    *v = AbsVal::of_width(slot_bits(*s));
                }
            }
            slots
        }),
    ] {
        let analysis = PlanAbs::new(tv, view.n_slots, view.n_regs, entry_slots);
        let sol = absint::analyze(&analysis);
        lint_traversal(view, tv, traversal, &sol.input, &mut out);
    }
    lint_prefetch(view, &mut out);
    out
}

/// Structural soundness check over the plan's prefetch section, run
/// independently of the switch's own re-derivation validator: every
/// prologue ip must resolve to a pure opcode (`Eval` / `RegRead`) and the
/// probe ip to a `BuildKeyProbe`, since the batch pipeliner executes
/// these off the packet path where any other effect would be observable.
fn lint_prefetch(view: &PlanView, out: &mut Vec<Lint>) {
    let Some(pf) = &view.prefetch else { return };
    let op_at = |ip: u32| view.pre.ops.get(ip as usize);
    for &ip in &pf.prologue {
        let pure = matches!(
            op_at(ip),
            Some(OpView::Eval { .. } | OpView::RegRead { .. })
        );
        if !pure {
            out.push(Lint {
                kind: LintKind::ImpurePrefetchOp,
                severity: Severity::Error,
                span: Span::PlanOp {
                    traversal: "pre",
                    ip,
                },
                message: format!(
                    "prefetch prologue ip #{ip} is not a pure Eval/RegRead opcode; \
                     executing it off the packet path would be observable"
                ),
            });
        }
    }
    if !matches!(op_at(pf.probe_ip), Some(OpView::BuildKeyProbe { .. })) {
        out.push(Lint {
            kind: LintKind::ImpurePrefetchOp,
            severity: Severity::Error,
            span: Span::PlanOp {
                traversal: "pre",
                ip: pf.probe_ip,
            },
            message: format!(
                "prefetch probe ip #{} does not resolve to a table probe",
                pf.probe_ip
            ),
        });
    }
}

fn lint_traversal(
    view: &PlanView,
    tv: &gallium_switchsim::TraversalView,
    traversal: &'static str,
    inputs: &[AbsState],
    out: &mut Vec<Lint>,
) {
    let slot_name = |slot: u16| -> String {
        view.slot_names
            .get(usize::from(slot))
            .filter(|n| !n.is_empty())
            .cloned()
            .unwrap_or_else(|| format!("slot#{slot}"))
    };
    // Flow-insensitive observability: a slot is observable if any opcode
    // loads it, branches on it, or it rides the transfer header.
    let mut observed: HashSet<u16> = view.to_server_slots.iter().copied().collect();
    let mut written: HashSet<u16> = HashSet::new();
    for op in &tv.ops {
        let (run, stores) = match op {
            OpView::Eval { run, stores }
            | OpView::SetHeader { run, stores, .. }
            | OpView::RegWrite { run, stores, .. }
            | OpView::BuildKeyProbe { run, stores, .. }
            | OpView::RegFetchAdd { run, stores, .. }
            | OpView::Branch { run, stores, .. } => (run.as_slice(), stores.as_slice()),
            _ => (&[][..], &[][..]),
        };
        for m in run {
            if let gallium_switchsim::MicroOp::LoadMeta { slot, .. } = m {
                observed.insert(*slot);
            }
        }
        for st in stores {
            written.insert(st.slot);
        }
        match op {
            OpView::Branch {
                src: gallium_switchsim::CondSrc::Slot(s),
                ..
            } => {
                observed.insert(*s);
            }
            OpView::BuildKeyProbe { hit_slot, vals, .. } => {
                written.insert(*hit_slot);
                written.extend(vals.iter().copied());
            }
            OpView::RegRead { dst, .. } | OpView::RegFetchAdd { dst, .. } => {
                written.insert(*dst);
            }
            _ => {}
        }
    }
    for (ip, op) in tv.ops.iter().enumerate() {
        let input = &inputs[ip];
        if !input.is_reachable() {
            out.push(Lint {
                kind: LintKind::UnreachablePlanOp,
                severity: Severity::Warning,
                span: Span::PlanOp {
                    traversal,
                    ip: ip as u32,
                },
                message: format!("{traversal} opcode #{ip} is unreachable from the entry"),
            });
            continue;
        }
        if let OpView::Branch {
            then_ip, else_ip, ..
        } = op
        {
            if let Some(cond) = absint::branch_cond(tv, ip, input) {
                let (verdict, dead) = if cond.is_nonzero() {
                    (Some("always true"), *else_ip)
                } else if cond.is_zero() {
                    (Some("always false"), *then_ip)
                } else {
                    (None, 0)
                };
                if let Some(v) = verdict {
                    out.push(Lint {
                        kind: LintKind::ConstantGuard,
                        severity: Severity::Warning,
                        span: Span::PlanOp {
                            traversal,
                            ip: ip as u32,
                        },
                        message: format!(
                            "branch guard at {traversal} opcode #{ip} is {v} \
                             (range [{}, {}])",
                            cond.lo, cond.hi
                        ),
                    });
                    out.push(Lint {
                        kind: LintKind::DeadBranch,
                        severity: Severity::Warning,
                        span: Span::PlanOp {
                            traversal,
                            ip: dead,
                        },
                        message: format!(
                            "{traversal} branch target #{dead} is dead: its guard at \
                             opcode #{ip} is {v}"
                        ),
                    });
                }
            }
        }
        if let OpView::BuildKeyProbe { keys, table, .. } = op {
            if let Some(abs) = absint::probe_keys(tv, ip, input) {
                for (k, (kv, ka)) in keys.iter().zip(abs.iter()).enumerate() {
                    if matches!(kv, gallium_switchsim::ValRef::Reg(_)) {
                        if let Some(c) = ka.as_const() {
                            out.push(Lint {
                                kind: LintKind::ConstantKeyWord,
                                severity: Severity::Warning,
                                span: Span::PlanOp {
                                    traversal,
                                    ip: ip as u32,
                                },
                                message: format!(
                                    "key word {k} of table #{table} probe at {traversal} \
                                     opcode #{ip} is provably the constant {c:#x}; the \
                                     key column is degenerate"
                                ),
                            });
                        }
                    }
                }
            }
        }
    }
    let mut written: Vec<u16> = written.into_iter().collect();
    written.sort_unstable();
    for slot in written {
        if !observed.contains(&slot) {
            out.push(Lint {
                kind: LintKind::UnobservableMetaStore,
                severity: Severity::Warning,
                span: Span::PlanOp { traversal, ip: 0 },
                message: format!(
                    "metadata slot `{}` is written in the {traversal} traversal but \
                     never loaded, branched on, or transferred",
                    slot_name(slot)
                ),
            });
        }
    }
}
