//! MIR lints: structured findings about the *source* program that are not
//! compiler bugs — dead computation, unreachable control flow, unused
//! state, header writes nothing observes, and replicated-state write
//! hazards (§4.3.3). All are [`Severity::Warning`]; the hard errors live
//! in [`crate::soundness`] and [`crate::resources`].

use crate::dataflow::{self, ReachingHeaderWrites};
use gallium_mir::{BlockId, Loc, Op, Program, StateId, Terminator, Ty, ValueId};
use gallium_partition::StagedProgram;
use std::collections::HashSet;
use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not unsound; compilation proceeds.
    Warning,
    /// Unsound or unloadable; compilation must fail.
    Error,
}

impl Severity {
    /// Stable lowercase key.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// The specific pattern a lint fires on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintKind {
    /// A pure value no instruction or branch ever consumes.
    DeadInstruction,
    /// A basic block control flow can never reach.
    UnreachableBlock,
    /// A declared state object no instruction touches.
    UnusedState,
    /// A header-field write no later read, send, or checksum observes.
    WriteNeverRead,
    /// A replicated state object written from both the switch and the
    /// server — updates race unless write-back serializes them (§4.3.3).
    SharedStateWrite,
    /// One pipeline stage wants more SRAM than its equal share.
    StagePressure,
    /// Declared metadata exceeds the budget even though peak liveness
    /// fits (the allocator may still pack it).
    DeclaredMetadataPressure,
    /// A committed plan opcode no path from the traversal entry reaches.
    UnreachablePlanOp,
    /// A plan branch guard the abstract interpreter proves always-true
    /// or always-false.
    ConstantGuard,
    /// A plan branch target only reachable through a guard proven
    /// constant — the edge can never be taken.
    DeadBranch,
    /// A fused table-key word whose register is proven constant by
    /// known-bits/interval analysis (the key column is degenerate).
    ConstantKeyWord,
    /// A metadata slot the plan writes but nothing — no load, branch, or
    /// transfer header — ever observes.
    UnobservableMetaStore,
    /// The plan's prefetch section references an opcode whose execution
    /// off the packet path would be observable (not `Eval`/`RegRead`),
    /// or its probe ip does not resolve to a table probe — an unsound
    /// pipelining projection.
    ImpurePrefetchOp,
}

impl LintKind {
    /// Stable snake_case key (used in JSON output).
    pub fn key(self) -> &'static str {
        match self {
            LintKind::DeadInstruction => "dead_instruction",
            LintKind::UnreachableBlock => "unreachable_block",
            LintKind::UnusedState => "unused_state",
            LintKind::WriteNeverRead => "write_never_read",
            LintKind::SharedStateWrite => "shared_state_write",
            LintKind::StagePressure => "stage_pressure",
            LintKind::DeclaredMetadataPressure => "declared_metadata_pressure",
            LintKind::UnreachablePlanOp => "unreachable_plan_op",
            LintKind::ConstantGuard => "constant_guard",
            LintKind::DeadBranch => "dead_branch",
            LintKind::ConstantKeyWord => "constant_key_word",
            LintKind::UnobservableMetaStore => "unobservable_meta_store",
            LintKind::ImpurePrefetchOp => "impure_prefetch_op",
        }
    }
}

/// Where in the program a lint points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Span {
    /// A specific instruction.
    Inst(ValueId),
    /// A basic block.
    Block(BlockId),
    /// A declared state object, by name.
    State(String),
    /// The program as a whole.
    Program,
    /// One opcode of a compiled execution plan.
    PlanOp {
        /// Which traversal ("pre" or "post").
        traversal: &'static str,
        /// Opcode index in that traversal's stream.
        ip: u32,
    },
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Span::Inst(v) => write!(f, "v{}", v.0),
            Span::Block(b) => write!(f, "b{}", b.0),
            Span::State(s) => write!(f, "state {s}"),
            Span::Program => write!(f, "program"),
            Span::PlanOp { traversal, ip } => write!(f, "{traversal} op #{ip}"),
        }
    }
}

/// One structured finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lint {
    /// Which pattern fired.
    pub kind: LintKind,
    /// How bad it is.
    pub severity: Severity,
    /// Where it points.
    pub span: Span,
    /// Human-readable detail.
    pub message: String,
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} at {}: {}",
            self.severity.label(),
            self.kind.key(),
            self.span,
            self.message
        )
    }
}

fn dead_instructions(prog: &Program, out: &mut Vec<Lint>) {
    let f = &prog.func;
    let mut used: HashSet<ValueId> = HashSet::new();
    for inst in &f.insts {
        used.extend(inst.op.uses());
    }
    for b in &f.blocks {
        if let Terminator::Branch { cond, .. } = &b.term {
            used.insert(*cond);
        }
    }
    for (i, inst) in f.insts.iter().enumerate() {
        let v = ValueId(i as u32);
        if inst.op.is_pure() && inst.ty != Ty::Unit && !used.contains(&v) {
            out.push(Lint {
                kind: LintKind::DeadInstruction,
                severity: Severity::Warning,
                span: Span::Inst(v),
                message: format!(
                    "pure value {} is never used by any instruction or branch",
                    gallium_mir::printer::print_inst(prog, v)
                ),
            });
        }
    }
}

fn unreachable_blocks(prog: &Program, out: &mut Vec<Lint>) {
    let f = &prog.func;
    let mut seen: HashSet<BlockId> = HashSet::new();
    let mut stack = vec![f.entry];
    while let Some(b) = stack.pop() {
        if seen.insert(b) {
            stack.extend(f.block(b).term.successors());
        }
    }
    for b in &f.blocks {
        if !seen.contains(&b.id) {
            out.push(Lint {
                kind: LintKind::UnreachableBlock,
                severity: Severity::Warning,
                span: Span::Block(b.id),
                message: format!("block b{} is unreachable from the entry", b.id.0),
            });
        }
    }
}

fn unused_states(prog: &Program, out: &mut Vec<Lint>) {
    for (s, st) in prog.states.iter().enumerate() {
        let sid = StateId(s as u32);
        let touched = prog
            .func
            .insts
            .iter()
            .any(|i| i.op.states_touched().contains(&sid));
        if !touched {
            out.push(Lint {
                kind: LintKind::UnusedState,
                severity: Severity::Warning,
                span: Span::State(st.name.clone()),
                message: format!("state object '{}' is declared but never accessed", st.name),
            });
        }
    }
}

/// Header writes nothing downstream observes: run reaching-definitions
/// over header fields, then replay each block marking every reaching
/// writer observed at each header read (`send` and `update_checksum` read
/// all fields).
fn writes_never_read(prog: &Program, out: &mut Vec<Lint>) {
    let f = &prog.func;
    let solution = dataflow::solve(f, &ReachingHeaderWrites);
    let mut observed: HashSet<ValueId> = HashSet::new();
    for b in &f.blocks {
        let mut fact = solution.entry[b.id.0 as usize].clone();
        for &v in &b.insts {
            let op = &f.inst(v).op;
            for loc in op.reads() {
                if let Loc::Header(field) = loc {
                    if let Some(writers) = fact.get(&field) {
                        observed.extend(writers.iter().copied());
                    }
                }
            }
            if let Op::WriteField { field, .. } = op {
                fact.insert(*field, HashSet::from([v]));
            }
        }
    }
    for (i, inst) in f.insts.iter().enumerate() {
        let v = ValueId(i as u32);
        if let Op::WriteField { field, .. } = &inst.op {
            if !observed.contains(&v) {
                out.push(Lint {
                    kind: LintKind::WriteNeverRead,
                    severity: Severity::Warning,
                    span: Span::Inst(v),
                    message: format!(
                        "write to header field {field:?} is never observed by a read, send, or checksum"
                    ),
                });
            }
        }
    }
}

fn shared_state_writes(staged: &StagedProgram, out: &mut Vec<Lint>) {
    let prog = &staged.prog;
    for (s, st) in prog.states.iter().enumerate() {
        let sid = StateId(s as u32);
        let mut switch_writer = false;
        let mut server_writer = false;
        for (v, part) in staged.assignment.iter().enumerate() {
            if prog.func.insts[v].op.writes().contains(&Loc::State(sid)) {
                if part.on_switch() {
                    switch_writer = true;
                } else {
                    server_writer = true;
                }
            }
        }
        if switch_writer && server_writer {
            out.push(Lint {
                kind: LintKind::SharedStateWrite,
                severity: Severity::Warning,
                span: Span::State(st.name.clone()),
                message: format!(
                    "state object '{}' is written from both the switch and the server; \
                     updates only serialize through write-back (§4.3.3)",
                    st.name
                ),
            });
        }
    }
}

/// Run every MIR lint over a staged program.
pub(crate) fn run(staged: &StagedProgram) -> Vec<Lint> {
    let mut out = Vec::new();
    dead_instructions(&staged.prog, &mut out);
    unreachable_blocks(&staged.prog, &mut out);
    unused_states(&staged.prog, &mut out);
    writes_never_read(&staged.prog, &mut out);
    shared_state_writes(staged, &mut out);
    out
}
