//! Translation validation of the partitioner (§4.2).
//!
//! Every check here re-derives a fact the partitioner also computed —
//! phase-1 labels, dependency direction, boundary sets, state placements,
//! the single-access discipline — from the MIR program and the re-derived
//! dependency graph of [`crate::deps`], then diffs it against what the
//! compiler actually emitted. Agreement is required; any delta is a
//! [`VerifyError`], not a warning.

use crate::dataflow;
use crate::deps::{DepEdgeKind, VDeps};
use crate::{Boundary, Traversal, VerifyError};
use gallium_mir::{printer, Program, Terminator, Ty, ValueId};
use gallium_partition::{Partition, StagedProgram};
use std::collections::HashSet;

/// Independently re-derived label set (deliberately not
/// `gallium_partition::LabelSet`, so a bug there cannot leak in here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DerivedLabels {
    /// May still run in the pre-processing partition.
    pub pre: bool,
    /// May still run in the post-processing partition.
    pub post: bool,
}

/// Re-run the §4.2.1 label-removing algorithm from first principles:
/// initial labels from P4 expressibility, then rules 1–5 to a fixpoint
/// over the re-derived dependency graph.
pub fn derive_phase1_labels(prog: &Program, dep: &VDeps) -> Vec<DerivedLabels> {
    let n = prog.func.insts.len();
    let mut labels: Vec<DerivedLabels> = prog
        .func
        .insts
        .iter()
        .map(|i| {
            let ok = i.op.p4_supported(&prog.states);
            DerivedLabels { pre: ok, post: ok }
        })
        .collect();

    // Rule 5 first: loop-resident statements lose both labels outright.
    for (v, label) in labels.iter_mut().enumerate() {
        if dep.in_loop(ValueId(v as u32)) {
            label.pre = false;
            label.post = false;
        }
    }

    let touches: Vec<Vec<gallium_mir::StateId>> = prog
        .func
        .insts
        .iter()
        .map(|i| {
            let mut s = i.op.states_touched();
            s.sort();
            s.dedup();
            s
        })
        .collect();
    let share_state =
        |a: usize, b: usize| -> bool { touches[a].iter().any(|s| touches[b].contains(s)) };

    let mut changed = true;
    while changed {
        changed = false;
        for s1 in 0..n {
            for s2 in 0..n {
                if s1 == s2 {
                    continue;
                }
                if !dep.depends_transitively(ValueId(s1 as u32), ValueId(s2 as u32)) {
                    continue;
                }
                // Rule 1: a dependency-later statement barred from post
                // bars its dependency from post too.
                if !labels[s2].post && labels[s1].post {
                    labels[s1].post = false;
                    changed = true;
                }
                // Rule 2: a dependency-earlier statement barred from pre
                // bars its dependents from pre.
                if !labels[s1].pre && labels[s2].pre {
                    labels[s2].pre = false;
                    changed = true;
                }
                if share_state(s1, s2) {
                    // Rule 3: at most one pre access per state on a chain.
                    if labels[s1].pre && labels[s2].pre {
                        labels[s2].pre = false;
                        changed = true;
                    }
                    // Rule 4: at most one post access per state on a chain.
                    if labels[s2].post && labels[s1].post {
                        labels[s1].post = false;
                        changed = true;
                    }
                }
            }
        }
    }
    labels
}

/// Mirror of the boundary-liveness test: is `v` needed by partition `x` —
/// as data, as a recorded control dependence, or to navigate the CFG to an
/// `x`-instruction?
fn needed_by(
    prog: &Program,
    dep: &VDeps,
    assignment: &[Partition],
    v: ValueId,
    x: Partition,
) -> bool {
    let f = &prog.func;
    for (_, _, wid) in f.iter_insts() {
        if assignment[wid.0 as usize] == x && f.inst(wid).op.uses().contains(&v) {
            return true;
        }
    }
    if dep
        .edges_out(v)
        .iter()
        .any(|(t, k)| *k == DepEdgeKind::Control && assignment[t.0 as usize] == x)
    {
        return true;
    }
    let my_branches: Vec<gallium_mir::BlockId> = f
        .blocks
        .iter()
        .filter(|b| matches!(&b.term, Terminator::Branch { cond, .. } if *cond == v))
        .map(|b| b.id)
        .collect();
    if my_branches.is_empty() {
        return false;
    }
    for b in &f.blocks {
        if !b.insts.iter().any(|w| assignment[w.0 as usize] == x) {
            continue;
        }
        let mut stack = vec![b.id];
        let mut seen = HashSet::new();
        while let Some(blk) = stack.pop() {
            if !seen.insert(blk) {
                continue;
            }
            for dep_block in &dep.flow.control_deps[blk.0 as usize] {
                if my_branches.contains(dep_block) {
                    return true;
                }
                stack.push(*dep_block);
            }
        }
    }
    false
}

/// Re-derive both boundary value sets from the final assignment.
fn derive_boundaries(
    prog: &Program,
    dep: &VDeps,
    assignment: &[Partition],
) -> (Vec<ValueId>, Vec<ValueId>) {
    let mut to_server = Vec::new();
    let mut to_switch = Vec::new();
    for i in 0..prog.func.insts.len() {
        let v = ValueId(i as u32);
        if prog.func.inst(v).ty == Ty::Unit {
            continue;
        }
        match assignment[i] {
            Partition::Pre => {
                let need_server = needed_by(prog, dep, assignment, v, Partition::NonOffloaded);
                let need_post = needed_by(prog, dep, assignment, v, Partition::Post);
                if need_server || need_post {
                    to_server.push(v);
                }
                if need_post {
                    to_switch.push(v);
                }
            }
            Partition::NonOffloaded => {
                if needed_by(prog, dep, assignment, v, Partition::Post) {
                    to_switch.push(v);
                }
            }
            Partition::Post => {}
        }
    }
    (to_server, to_switch)
}

/// Bits one SSA value occupies in a transfer header (presence bit plus
/// components for map results, the plain width for scalars).
fn value_header_bits(prog: &Program, v: ValueId) -> usize {
    match &prog.func.inst(v).ty {
        Ty::Int(w) => usize::from(*w),
        Ty::MapResult(ws) => 1 + ws.iter().map(|w| usize::from(*w)).sum::<usize>(),
        Ty::Unit => 0,
    }
}

/// Run every soundness check, appending findings to `errors`.
pub(crate) fn check(staged: &StagedProgram, errors: &mut Vec<VerifyError>) {
    let prog = &staged.prog;
    let n = prog.func.insts.len();
    let dep = VDeps::build(prog);
    let derived = derive_phase1_labels(prog, &dep);

    // Translation validation of phase 1: diff the re-derived labels
    // against the driver's snapshot (absent when the program was staged by
    // hand in tests — nothing to diff then).
    if staged.phase1_labels.len() == n {
        for (v, d) in derived.iter().enumerate() {
            let c = staged.phase1_labels[v];
            if c.pre != d.pre || c.post != d.post {
                errors.push(VerifyError::LabelDisagreement {
                    value: ValueId(v as u32),
                    inst: printer::print_inst(prog, ValueId(v as u32)),
                    compiler_pre: c.pre,
                    compiler_post: c.post,
                    derived_pre: d.pre,
                    derived_post: d.post,
                });
            }
        }
    }

    // Refinement only removes labels, so every offloaded assignment must
    // still be justified by the phase-1 labels we derived ourselves.
    for (v, d) in derived.iter().enumerate() {
        let bad = match staged.assignment[v] {
            Partition::Pre => !d.pre,
            Partition::Post => !d.post,
            Partition::NonOffloaded => false,
        };
        if bad {
            errors.push(VerifyError::AssignmentNotDerivable {
                value: ValueId(v as u32),
                inst: printer::print_inst(prog, ValueId(v as u32)),
                assigned: staged.assignment[v],
            });
        }
    }

    // Every dependency edge must flow forward through the pipeline:
    // Pre ≤ NonOffloaded ≤ Post.
    for v in 0..n {
        let vid = ValueId(v as u32);
        for (t, _) in dep.edges_out(vid) {
            if staged.assignment[v] > staged.assignment[t.0 as usize] {
                errors.push(VerifyError::BackwardDependency {
                    from: vid,
                    to: *t,
                    from_partition: staged.assignment[v],
                    to_partition: staged.assignment[t.0 as usize],
                });
            }
        }
    }

    // Taint: anything transitively computed from a P4-inexpressible value
    // cannot run in pre (the pre traversal executes before the server
    // ever sees the packet).
    let tainted = dataflow::tainted_values(&prog.func, &prog.states);
    for v in 0..n {
        let vid = ValueId(v as u32);
        if staged.assignment[v] == Partition::Pre && tainted.contains(&vid) {
            errors.push(VerifyError::NonExpressibleOnSwitch {
                value: vid,
                inst: printer::print_inst(prog, vid),
            });
        }
    }

    // Boundary liveness: every value our analysis says must cross a
    // boundary has to appear in the compiler's transfer set, and the
    // synthesized headers must carry exactly the derived payload.
    let (to_server, to_switch) = derive_boundaries(prog, &dep, &staged.assignment);
    for (derived_set, staged_set, layout, boundary) in [
        (
            &to_server,
            &staged.to_server_values,
            &staged.header_to_server,
            Boundary::ToServer,
        ),
        (
            &to_switch,
            &staged.to_switch_values,
            &staged.header_to_switch,
            Boundary::ToSwitch,
        ),
    ] {
        for v in derived_set {
            if !staged_set.contains(v) {
                errors.push(VerifyError::MissingTransfer {
                    value: *v,
                    boundary,
                });
            }
        }
        let expected_bits: usize = derived_set
            .iter()
            .map(|v| value_header_bits(prog, *v))
            .sum();
        if layout.bits() != expected_bits {
            errors.push(VerifyError::LayoutMismatch {
                boundary,
                expected_bits,
                actual_bits: layout.bits(),
            });
        }
    }

    // Placements (§4.3.1) from the final assignment.
    for (s, st) in prog.states.iter().enumerate() {
        let sid = gallium_mir::StateId(s as u32);
        let mut on_switch = false;
        let mut on_server = false;
        for (v, part) in staged.assignment.iter().enumerate() {
            if prog.func.insts[v].op.states_touched().contains(&sid) {
                if part.on_switch() {
                    on_switch = true;
                } else {
                    on_server = true;
                }
            }
        }
        let derived_placement = match (on_switch, on_server) {
            (true, true) => gallium_partition::StatePlacement::Replicated,
            (true, false) => gallium_partition::StatePlacement::SwitchOnly,
            (false, true) => gallium_partition::StatePlacement::ServerOnly,
            (false, false) => gallium_partition::StatePlacement::Unused,
        };
        if staged.placements[s] != derived_placement {
            errors.push(VerifyError::PlacementMismatch {
                state: st.name.clone(),
                compiler: staged.placements[s],
                derived: derived_placement,
            });
        }
    }

    // Constraint 3 as an invariant of the *output*: each traversal may
    // touch each state object at most once.
    for (s, st) in prog.states.iter().enumerate() {
        let sid = gallium_mir::StateId(s as u32);
        for (part, traversal) in [
            (Partition::Pre, Traversal::Pre),
            (Partition::Post, Traversal::Post),
        ] {
            let accesses = staged
                .assignment
                .iter()
                .enumerate()
                .filter(|(v, p)| {
                    **p == part && prog.func.insts[*v].op.states_touched().contains(&sid)
                })
                .count();
            if accesses > 1 {
                errors.push(VerifyError::MultipleStateAccess {
                    state: st.name.clone(),
                    traversal,
                    accesses,
                });
            }
        }
    }
}
