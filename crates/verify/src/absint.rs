//! Interval + known-bits abstract interpretation over the compiled plan.
//!
//! Runs on the graph-generic worklist core ([`crate::dataflow`]) with one
//! node per committed plan opcode, walking the read-only
//! [`gallium_switchsim::PlanView`]. The domain is a reduced product of an
//! unsigned interval `[lo, hi]` and known-bits masks (`zeros` = bits
//! provably 0, `ones` = bits provably 1), the classic pairing for
//! bit-manipulating dataplane code: intervals decide comparisons and
//! dead branches, known-bits survive masking/shifting/hashing where
//! intervals collapse. The transfer functions mirror the runtime's exact
//! width-64 semantics (`BinOp::eval`: div/mod-by-zero → 0, shift ≥ 64 →
//! 0, masking to declared widths).
//!
//! The results feed the plan lint pass in [`crate::plan`]: unreachable
//! opcodes, branch guards proven constant, fused key words proven
//! constant, and the per-slot ranges behind them.

use crate::dataflow::{solve_graph, Direction, GraphAnalysis, GraphSolution};
use gallium_mir::BinOp;
use gallium_switchsim::{CondSrc, MicroOp, OpView, TraversalView, ValRef};

/// An abstract 64-bit unsigned value: interval plus known bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbsVal {
    /// Least possible value.
    pub lo: u64,
    /// Greatest possible value.
    pub hi: u64,
    /// Bits provably zero.
    pub zeros: u64,
    /// Bits provably one.
    pub ones: u64,
}

/// All-ones up to and including the leading set bit of `h` (0 for 0).
fn below(h: u64) -> u64 {
    if h == 0 {
        0
    } else {
        u64::MAX >> h.leading_zeros()
    }
}

impl AbsVal {
    /// The unconstrained value.
    pub const TOP: AbsVal = AbsVal {
        lo: 0,
        hi: u64::MAX,
        zeros: 0,
        ones: 0,
    };

    /// An exactly-known constant.
    pub fn cnst(c: u64) -> AbsVal {
        AbsVal {
            lo: c,
            hi: c,
            zeros: !c,
            ones: c,
        }
    }

    /// Any value expressible in `w` bits.
    pub fn of_width(w: u16) -> AbsVal {
        if w >= 64 {
            AbsVal::TOP
        } else {
            let m = (1u64 << w) - 1;
            AbsVal {
                lo: 0,
                hi: m,
                zeros: !m,
                ones: 0,
            }
        }
    }

    /// Exchange information between the interval and the bits until
    /// consistent (one round suffices for the precision we need).
    fn canon(mut self) -> AbsVal {
        // Bits above the interval's leading bit are provably zero, and
        // the known bits bound the interval from both sides.
        self.zeros |= !below(self.hi);
        self.lo = self.lo.max(self.ones);
        self.hi = self.hi.min(!self.zeros);
        if self.lo > self.hi {
            // Transfers are sound, so this means the state is actually
            // unreachable; collapse rather than report nonsense.
            self.lo = self.ones;
            self.hi = !self.zeros;
        }
        if self.lo == self.hi {
            self.zeros = !self.lo;
            self.ones = self.lo;
        }
        self
    }

    /// The exactly-known value, if the abstraction pins one.
    pub fn as_const(&self) -> Option<u64> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// Provably nonzero (a guard on this value always takes `then`).
    pub fn is_nonzero(&self) -> bool {
        self.lo >= 1 || self.ones != 0
    }

    /// Provably zero (a guard on this value always takes `else`).
    pub fn is_zero(&self) -> bool {
        self.hi == 0
    }

    /// Least upper bound: interval hull + known-bit intersection.
    pub fn join(self, o: AbsVal) -> AbsVal {
        AbsVal {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
            zeros: self.zeros & o.zeros,
            ones: self.ones & o.ones,
        }
    }

    /// Abstract `a op b` at width 64, mirroring [`BinOp::eval`].
    pub fn bin(op: BinOp, a: AbsVal, b: AbsVal) -> AbsVal {
        let bool_top = AbsVal::of_width(1);
        let v = match op {
            BinOp::Add => match a.hi.checked_add(b.hi) {
                Some(h) => AbsVal {
                    lo: a.lo + b.lo,
                    hi: h,
                    zeros: 0,
                    ones: 0,
                },
                None => AbsVal::TOP,
            },
            BinOp::Sub => {
                if a.lo >= b.hi {
                    AbsVal {
                        lo: a.lo - b.hi,
                        hi: a.hi - b.lo,
                        zeros: 0,
                        ones: 0,
                    }
                } else {
                    AbsVal::TOP // may wrap
                }
            }
            BinOp::Mul => match a.hi.checked_mul(b.hi) {
                Some(h) => AbsVal {
                    lo: a.lo.saturating_mul(b.lo),
                    hi: h,
                    zeros: 0,
                    ones: 0,
                },
                None => AbsVal::TOP,
            },
            BinOp::Div => match a.lo.checked_div(b.hi) {
                // b is provably zero: div-by-zero → 0.
                None => AbsVal::cnst(0),
                Some(q) => AbsVal {
                    lo: if b.lo >= 1 { q } else { 0 },
                    hi: a.hi,
                    zeros: 0,
                    ones: 0,
                },
            },
            BinOp::Mod => {
                if b.hi == 0 {
                    AbsVal::cnst(0) // mod-by-zero → 0
                } else {
                    AbsVal {
                        lo: 0,
                        hi: a.hi.min(b.hi - 1),
                        zeros: 0,
                        ones: 0,
                    }
                }
            }
            BinOp::And => AbsVal {
                lo: a.ones & b.ones,
                hi: a.hi.min(b.hi),
                zeros: a.zeros | b.zeros,
                ones: a.ones & b.ones,
            },
            BinOp::Or => AbsVal {
                lo: a.lo.max(b.lo),
                hi: u64::MAX,
                zeros: a.zeros & b.zeros,
                ones: a.ones | b.ones,
            },
            BinOp::Xor => AbsVal {
                lo: 0,
                hi: u64::MAX,
                zeros: (a.zeros & b.zeros) | (a.ones & b.ones),
                ones: (a.ones & b.zeros) | (a.zeros & b.ones),
            },
            BinOp::Shl => match b.as_const() {
                Some(c) if c >= 64 => AbsVal::cnst(0),
                Some(c) if a.hi.leading_zeros() as u64 >= c => AbsVal {
                    lo: a.lo << c,
                    hi: a.hi << c,
                    zeros: (a.zeros << c) | !(u64::MAX << c),
                    ones: a.ones << c,
                },
                _ => AbsVal::TOP,
            },
            BinOp::Shr => match b.as_const() {
                Some(c) if c >= 64 => AbsVal::cnst(0),
                Some(c) => AbsVal {
                    lo: a.lo >> c,
                    hi: a.hi >> c,
                    zeros: a.zeros >> c,
                    ones: a.ones >> c,
                },
                None => AbsVal {
                    lo: 0,
                    hi: a.hi,
                    zeros: 0,
                    ones: 0,
                },
            },
            BinOp::Eq => match (a.hi < b.lo || b.hi < a.lo, a.as_const().zip(b.as_const())) {
                (true, _) => AbsVal::cnst(0),
                (_, Some((x, y))) if x == y => AbsVal::cnst(1),
                _ => bool_top,
            },
            BinOp::Ne => match (a.hi < b.lo || b.hi < a.lo, a.as_const().zip(b.as_const())) {
                (true, _) => AbsVal::cnst(1),
                (_, Some((x, y))) if x == y => AbsVal::cnst(0),
                _ => bool_top,
            },
            BinOp::Lt => cmp_abs(a.hi < b.lo, a.lo >= b.hi),
            BinOp::Le => cmp_abs(a.hi <= b.lo, a.lo > b.hi),
            BinOp::Gt => cmp_abs(a.lo > b.hi, a.hi <= b.lo),
            BinOp::Ge => cmp_abs(a.lo >= b.hi, a.hi < b.lo),
        };
        v.canon()
    }

    /// Abstract bitwise not.
    pub fn bit_not(self) -> AbsVal {
        AbsVal {
            lo: 0,
            hi: u64::MAX,
            zeros: self.ones,
            ones: self.zeros,
        }
        .canon()
    }

    /// Abstract masking to `width` bits (`mask_to_width`).
    pub fn mask(self, width: u8) -> AbsVal {
        if width >= 64 {
            return self;
        }
        let m = (1u64 << width) - 1;
        if self.hi <= m {
            AbsVal {
                zeros: self.zeros | !m,
                ..self
            }
            .canon()
        } else {
            AbsVal {
                lo: 0,
                hi: m,
                zeros: (self.zeros & m) | !m,
                ones: self.ones & m,
            }
            .canon()
        }
    }
}

fn cmp_abs(proven_true: bool, proven_false: bool) -> AbsVal {
    if proven_true {
        AbsVal::cnst(1)
    } else if proven_false {
        AbsVal::cnst(0)
    } else {
        AbsVal::of_width(1)
    }
}

/// The per-opcode fact: unreachable, or abstract values for every
/// metadata slot and virtual register.
#[derive(Debug, Clone, PartialEq)]
pub enum AbsState {
    /// No path from the entry reaches this opcode.
    Unreachable,
    /// Reachable with the given abstractions.
    Reached {
        /// Per-metadata-slot abstract values.
        slots: Vec<AbsVal>,
        /// Per-virtual-register abstract values.
        regs: Vec<AbsVal>,
    },
}

impl AbsState {
    /// Whether any path reaches this point.
    pub fn is_reachable(&self) -> bool {
        matches!(self, AbsState::Reached { .. })
    }
}

fn eval_val(v: ValRef, regs: &[AbsVal]) -> AbsVal {
    match v {
        ValRef::Const(c) => AbsVal::cnst(c),
        ValRef::Reg(r) => regs.get(usize::from(r)).copied().unwrap_or(AbsVal::TOP),
    }
}

/// Execute a micro-op run abstractly, updating `regs` in place.
pub fn eval_run(run: &[MicroOp], slots: &[AbsVal], regs: &mut [AbsVal]) {
    for m in run {
        let reg = |r: u16, regs: &[AbsVal]| -> AbsVal {
            regs.get(usize::from(r)).copied().unwrap_or(AbsVal::TOP)
        };
        let val = match m {
            MicroOp::LoadMeta { slot, .. } => slots
                .get(usize::from(*slot))
                .copied()
                .unwrap_or(AbsVal::TOP),
            MicroOp::LoadHeader { field, .. } => AbsVal::of_width(u16::from(field.bits())),
            MicroOp::LoadIngress { .. } => AbsVal::of_width(16),
            MicroOp::BinRR { op, a, b, .. } => AbsVal::bin(*op, reg(*a, regs), reg(*b, regs)),
            MicroOp::BinRI { op, a, imm, .. } => {
                AbsVal::bin(*op, reg(*a, regs), AbsVal::cnst(*imm))
            }
            MicroOp::BinIR { op, imm, b, .. } => {
                AbsVal::bin(*op, AbsVal::cnst(*imm), reg(*b, regs))
            }
            MicroOp::NotR { a, .. } => reg(*a, regs).bit_not(),
            MicroOp::MaskR { a, width, .. } => reg(*a, regs).mask(*width),
            MicroOp::Hash { width, .. } => AbsVal::of_width(u16::from(*width)),
        };
        if let Some(slot) = regs.get_mut(usize::from(m.dst())) {
            *slot = val;
        }
    }
}

fn apply_stores(stores: &[gallium_switchsim::StoreView], slots: &mut [AbsVal], regs: &[AbsVal]) {
    for st in stores {
        if let Some(s) = slots.get_mut(usize::from(st.slot)) {
            *s = eval_val(st.src, regs);
        }
    }
}

/// The abstract interpretation of one traversal, one graph node per
/// committed opcode.
pub struct PlanAbs<'a> {
    view: &'a TraversalView,
    n_slots: usize,
    n_regs: usize,
    entry_slots: Vec<AbsVal>,
}

impl<'a> PlanAbs<'a> {
    /// Analyze `view` with the given abstract values for the metadata
    /// slots at traversal entry (`entry_slots[slot]`; missing → top).
    pub fn new(
        view: &'a TraversalView,
        n_slots: usize,
        n_regs: usize,
        entry_slots: Vec<AbsVal>,
    ) -> Self {
        PlanAbs {
            view,
            n_slots,
            n_regs,
            entry_slots,
        }
    }
}

impl GraphAnalysis for PlanAbs<'_> {
    type Fact = AbsState;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn node_count(&self) -> usize {
        self.view.ops.len()
    }

    fn successors(&self, n: usize) -> Vec<usize> {
        match &self.view.ops[n] {
            OpView::Jump(t) => vec![*t as usize],
            OpView::Branch {
                then_ip, else_ip, ..
            } => vec![*then_ip as usize, *else_ip as usize],
            OpView::Halt => vec![],
            _ => {
                if n + 1 < self.view.ops.len() {
                    vec![n + 1]
                } else {
                    vec![]
                }
            }
        }
    }

    fn bottom(&self) -> AbsState {
        AbsState::Unreachable
    }

    fn is_boundary(&self, n: usize) -> bool {
        n == self.view.entry_ip as usize
    }

    fn boundary_fact(&self) -> AbsState {
        let mut slots = vec![AbsVal::TOP; self.n_slots];
        for (i, v) in self.entry_slots.iter().enumerate().take(self.n_slots) {
            slots[i] = *v;
        }
        AbsState::Reached {
            slots,
            // Registers are proven def-before-use at build time, so the
            // entry abstraction is never observed; top is sound.
            regs: vec![AbsVal::TOP; self.n_regs],
        }
    }

    fn join(&self, into: &mut AbsState, from: &AbsState) {
        match (&mut *into, from) {
            (_, AbsState::Unreachable) => {}
            (AbsState::Unreachable, r) => *into = r.clone(),
            (
                AbsState::Reached { slots, regs },
                AbsState::Reached {
                    slots: os,
                    regs: or,
                },
            ) => {
                for (a, b) in slots.iter_mut().zip(os) {
                    *a = a.join(*b);
                }
                for (a, b) in regs.iter_mut().zip(or) {
                    *a = a.join(*b);
                }
            }
        }
    }

    fn transfer(&self, n: usize, fact: &mut AbsState) {
        let AbsState::Reached { slots, regs } = fact else {
            return;
        };
        match &self.view.ops[n] {
            OpView::Eval { run, stores }
            | OpView::SetHeader { run, stores, .. }
            | OpView::RegWrite { run, stores, .. }
            | OpView::Branch { run, stores, .. } => {
                eval_run(run, slots, regs);
                apply_stores(stores, slots, regs);
            }
            OpView::BuildKeyProbe {
                run,
                stores,
                hit_slot,
                vals,
                ..
            } => {
                eval_run(run, slots, regs);
                apply_stores(stores, slots, regs);
                if let Some(s) = slots.get_mut(usize::from(*hit_slot)) {
                    *s = AbsVal::of_width(1);
                }
                for v in vals {
                    if let Some(s) = slots.get_mut(usize::from(*v)) {
                        // Table values on hit; zeroed on miss.
                        *s = AbsVal::TOP;
                    }
                }
            }
            OpView::RegFetchAdd {
                run, stores, dst, ..
            } => {
                eval_run(run, slots, regs);
                apply_stores(stores, slots, regs);
                if let Some(s) = slots.get_mut(usize::from(*dst)) {
                    *s = AbsVal::TOP;
                }
            }
            OpView::RegRead { dst, .. } => {
                if let Some(s) = slots.get_mut(usize::from(*dst)) {
                    *s = AbsVal::TOP;
                }
            }
            OpView::UpdateChecksum
            | OpView::EmitCopy
            | OpView::MarkDrop
            | OpView::Foreign
            | OpView::Jump(_)
            | OpView::Halt => {}
        }
    }
}

/// Solve the traversal to its fixpoint.
pub fn analyze(a: &PlanAbs<'_>) -> GraphSolution<AbsState> {
    solve_graph(a)
}

/// The abstract branch condition at opcode `n`, given its input state:
/// replays the branch's own run first (the guard register is usually
/// defined there).
pub fn branch_cond(view: &TraversalView, n: usize, input: &AbsState) -> Option<AbsVal> {
    let AbsState::Reached { slots, regs } = input else {
        return None;
    };
    let OpView::Branch {
        run, stores, src, ..
    } = &view.ops[n]
    else {
        return None;
    };
    let mut slots = slots.clone();
    let mut regs = regs.clone();
    eval_run(run, &slots, &mut regs);
    apply_stores(stores, &mut slots, &regs);
    Some(match src {
        CondSrc::Reg(r) => regs.get(usize::from(*r)).copied().unwrap_or(AbsVal::TOP),
        CondSrc::Slot(s) => slots.get(usize::from(*s)).copied().unwrap_or(AbsVal::TOP),
    })
}

/// The abstract key words of a `BuildKeyProbe` at opcode `n`, given its
/// input state.
pub fn probe_keys(view: &TraversalView, n: usize, input: &AbsState) -> Option<Vec<AbsVal>> {
    let AbsState::Reached { slots, regs } = input else {
        return None;
    };
    let OpView::BuildKeyProbe {
        run, stores, keys, ..
    } = &view.ops[n]
    else {
        return None;
    };
    let mut slots = slots.clone();
    let mut regs = regs.clone();
    eval_run(run, &slots, &mut regs);
    apply_stores(stores, &mut slots, &regs);
    Some(keys.iter().map(|k| eval_val(*k, &regs)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_arithmetic_stays_const() {
        let a = AbsVal::cnst(7);
        let b = AbsVal::cnst(5);
        assert_eq!(AbsVal::bin(BinOp::Add, a, b).as_const(), Some(12));
        assert_eq!(AbsVal::bin(BinOp::Sub, a, b).as_const(), Some(2));
        assert_eq!(AbsVal::bin(BinOp::Mul, a, b).as_const(), Some(35));
        assert_eq!(AbsVal::bin(BinOp::And, a, b).as_const(), Some(5));
        assert_eq!(AbsVal::bin(BinOp::Or, a, b).as_const(), Some(7));
        assert_eq!(AbsVal::bin(BinOp::Xor, a, b).as_const(), Some(2));
        assert_eq!(AbsVal::bin(BinOp::Eq, a, b).as_const(), Some(0));
        assert_eq!(AbsVal::bin(BinOp::Lt, b, a).as_const(), Some(1));
    }

    #[test]
    fn eval_semantics_mirrored() {
        // div/mod-by-zero → 0, shift ≥ 64 → 0.
        let a = AbsVal::cnst(9);
        let z = AbsVal::cnst(0);
        assert_eq!(AbsVal::bin(BinOp::Div, a, z).as_const(), Some(0));
        assert_eq!(AbsVal::bin(BinOp::Mod, a, z).as_const(), Some(0));
        assert_eq!(
            AbsVal::bin(BinOp::Shl, a, AbsVal::cnst(64)).as_const(),
            Some(0)
        );
        assert_eq!(
            AbsVal::bin(BinOp::Shr, a, AbsVal::cnst(100)).as_const(),
            Some(0)
        );
    }

    #[test]
    fn masking_bounds_the_interval() {
        let v = AbsVal::TOP.mask(8);
        assert_eq!(v.lo, 0);
        assert_eq!(v.hi, 255);
        assert_eq!(v.zeros, !0xFFu64);
        let w = AbsVal::cnst(0x1FF).mask(8);
        assert_eq!(w.as_const(), Some(0xFF));
    }

    #[test]
    fn join_is_hull_plus_bit_intersection() {
        let a = AbsVal::cnst(4);
        let b = AbsVal::cnst(6);
        let j = a.join(b);
        assert_eq!((j.lo, j.hi), (4, 6));
        // Bit 2 (value 4) set in both ⇒ known one; bit 0 known zero.
        assert_ne!(j.ones & 4, 0);
        assert_ne!(j.zeros & 1, 0);
        assert!(j.is_nonzero());
    }

    #[test]
    fn comparisons_decide_from_intervals() {
        let small = AbsVal::of_width(4); // [0, 15]
        let big = AbsVal {
            lo: 100,
            hi: 200,
            zeros: 0,
            ones: 0,
        }
        .canon();
        assert_eq!(AbsVal::bin(BinOp::Lt, small, big).as_const(), Some(1));
        assert_eq!(AbsVal::bin(BinOp::Ge, small, big).as_const(), Some(0));
        assert_eq!(AbsVal::bin(BinOp::Eq, small, big).as_const(), Some(0));
    }
}
