//! A reusable worklist dataflow framework over MIR.
//!
//! The verifier must not trust the analyses in `gallium-analysis` — its
//! whole point is to re-derive every fact independently and diff. This
//! module is the re-derivation substrate: a direction-parametric worklist
//! solver plus the three instances the checkers need (liveness, taint from
//! non-offloadable sources, reaching header writes).
//!
//! Facts form a join-semilattice; `solve` iterates block transfer functions
//! to the least fixpoint. Because every instance here uses set-union joins
//! with monotone transfers, the least fixpoint is unique — which is what
//! lets the property tests demand *equality* (not mere soundness) against
//! the compiler's own analyses.

use gallium_mir::{BlockId, Function, GlobalState, Op, Terminator, ValueId};
use std::collections::{HashMap, HashSet, VecDeque};

/// Which way facts propagate through the CFG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from the entry block toward the exits.
    Forward,
    /// Facts flow from the exits toward the entry block.
    Backward,
}

/// A dataflow analysis: a fact lattice plus transfer functions.
pub trait Analysis {
    /// The per-program-point fact.
    type Fact: Clone + PartialEq;

    /// Propagation direction.
    fn direction(&self) -> Direction;

    /// The lattice bottom (the neutral element of [`Analysis::join`]).
    fn bottom(&self, f: &Function) -> Self::Fact;

    /// The fact at the boundary (entry block for forward analyses, every
    /// exit for backward ones). Defaults to bottom.
    fn boundary_fact(&self, f: &Function) -> Self::Fact {
        self.bottom(f)
    }

    /// Merge `from` into `into`.
    fn join(&self, into: &mut Self::Fact, from: &Self::Fact);

    /// Push the fact through one instruction (in the analysis direction).
    fn transfer_inst(&self, f: &Function, v: ValueId, fact: &mut Self::Fact);

    /// Push the fact through a block terminator. For backward analyses this
    /// runs *before* the instructions (the terminator executes last).
    fn transfer_term(&self, _f: &Function, _b: BlockId, _fact: &mut Self::Fact) {}

    /// Adjust a fact as it crosses the CFG edge `from → to` (e.g. SSA
    /// φ-edge adjustments). Defaults to the identity.
    fn edge_fact(
        &self,
        _f: &Function,
        _from: BlockId,
        _to: BlockId,
        fact: &Self::Fact,
    ) -> Self::Fact {
        fact.clone()
    }
}

/// The fixpoint: one fact pair per block.
#[derive(Debug, Clone)]
pub struct Solution<F> {
    /// Fact at block entry (before the first instruction).
    pub entry: Vec<F>,
    /// Fact at block exit (after the terminator).
    pub exit: Vec<F>,
}

/// Run `a` to its least fixpoint with a worklist.
pub fn solve<A: Analysis>(f: &Function, a: &A) -> Solution<A::Fact> {
    let n = f.blocks.len();
    let mut entry: Vec<A::Fact> = (0..n).map(|_| a.bottom(f)).collect();
    let mut exit: Vec<A::Fact> = (0..n).map(|_| a.bottom(f)).collect();

    // Successor / predecessor maps from the terminators alone.
    let mut succs: Vec<Vec<BlockId>> = vec![Vec::new(); n];
    let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); n];
    for b in &f.blocks {
        for s in b.term.successors() {
            succs[b.id.0 as usize].push(s);
            preds[s.0 as usize].push(b.id);
        }
    }

    let mut work: VecDeque<usize> = (0..n).collect();
    let mut queued = vec![true; n];
    while let Some(bi) = work.pop_front() {
        queued[bi] = false;
        let b = &f.blocks[bi];
        match a.direction() {
            Direction::Forward => {
                let mut inb = if b.id == f.entry {
                    a.boundary_fact(f)
                } else {
                    a.bottom(f)
                };
                for p in &preds[bi] {
                    let along = a.edge_fact(f, *p, b.id, &exit[p.0 as usize]);
                    a.join(&mut inb, &along);
                }
                let mut fact = inb.clone();
                for &v in &b.insts {
                    a.transfer_inst(f, v, &mut fact);
                }
                a.transfer_term(f, b.id, &mut fact);
                let changed = entry[bi] != inb || exit[bi] != fact;
                entry[bi] = inb;
                exit[bi] = fact;
                if changed {
                    for s in &succs[bi] {
                        let si = s.0 as usize;
                        if !queued[si] {
                            queued[si] = true;
                            work.push_back(si);
                        }
                    }
                }
            }
            Direction::Backward => {
                let mut out = if succs[bi].is_empty() {
                    a.boundary_fact(f)
                } else {
                    a.bottom(f)
                };
                for s in &succs[bi] {
                    let along = a.edge_fact(f, b.id, *s, &entry[s.0 as usize]);
                    a.join(&mut out, &along);
                }
                let mut fact = out.clone();
                a.transfer_term(f, b.id, &mut fact);
                for &v in b.insts.iter().rev() {
                    a.transfer_inst(f, v, &mut fact);
                }
                let changed = exit[bi] != out || entry[bi] != fact;
                exit[bi] = out;
                entry[bi] = fact;
                if changed {
                    for p in &preds[bi] {
                        let pi = p.0 as usize;
                        if !queued[pi] {
                            queued[pi] = true;
                            work.push_back(pi);
                        }
                    }
                }
            }
        }
    }
    Solution { entry, exit }
}

// ---------------------------------------------------------------------
// Instance 1: SSA-value liveness (backward, union join).
// ---------------------------------------------------------------------

/// Live SSA values, with φ operands counted live at the tail of the
/// corresponding predecessor (standard SSA liveness). The `exit` facts of
/// the solution are the live-out sets, `entry` the live-in sets.
pub struct LiveValues;

impl Analysis for LiveValues {
    type Fact = HashSet<ValueId>;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn bottom(&self, _f: &Function) -> Self::Fact {
        HashSet::new()
    }

    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) {
        into.extend(from.iter().copied());
    }

    fn transfer_inst(&self, f: &Function, v: ValueId, fact: &mut Self::Fact) {
        fact.remove(&v);
        match &f.inst(v).op {
            Op::Phi { .. } => {} // operands are handled on the edges
            op => fact.extend(op.uses()),
        }
    }

    fn transfer_term(&self, f: &Function, b: BlockId, fact: &mut Self::Fact) {
        if let Terminator::Branch { cond, .. } = &f.block(b).term {
            fact.insert(*cond);
        }
    }

    fn edge_fact(&self, f: &Function, from: BlockId, to: BlockId, fact: &Self::Fact) -> Self::Fact {
        let tb = f.block(to);
        // φ results defined in `to` are not live into the predecessor…
        let mut out: HashSet<ValueId> = fact
            .iter()
            .copied()
            .filter(|v| !tb.insts.contains(v) || !matches!(f.inst(*v).op, Op::Phi { .. }))
            .collect();
        // …but the φ operand arriving along this edge is.
        for &pv in &tb.insts {
            if let Op::Phi { incoming } = &f.inst(pv).op {
                for (pred, val) in incoming {
                    if *pred == from {
                        out.insert(*val);
                    }
                }
            }
        }
        out
    }
}

/// The maximum number of concurrently-live metadata bits in `f`, counting
/// only values `counts` accepts (the verifier's Constraint-4 metric).
pub fn max_live_bits(
    f: &Function,
    live: &Solution<HashSet<ValueId>>,
    counts: &dyn Fn(ValueId) -> bool,
) -> usize {
    let bits = |set: &HashSet<ValueId>| -> usize {
        set.iter()
            .filter(|v| counts(**v))
            .map(|v| f.inst(*v).ty.meta_bits())
            .sum()
    };
    let mut max = 0usize;
    for b in &f.blocks {
        let mut cur = live.exit[b.id.0 as usize].clone();
        if let Terminator::Branch { cond, .. } = &b.term {
            cur.insert(*cond);
        }
        max = max.max(bits(&cur));
        for &v in b.insts.iter().rev() {
            cur.remove(&v);
            match &f.inst(v).op {
                Op::Phi { .. } => {}
                op => cur.extend(op.uses()),
            }
            max = max.max(bits(&cur));
        }
    }
    max
}

// ---------------------------------------------------------------------
// Instance 2: taint from non-offloadable sources (forward, union join).
// ---------------------------------------------------------------------

/// Marks every value that is, or transitively consumes, an operation P4
/// cannot express. A `Pre`-assigned instruction must never be tainted: its
/// inputs would not exist on the switch yet.
pub struct Taint<'a> {
    /// State declarations (P4 support of a map lookup depends on the size
    /// annotation).
    pub states: &'a [GlobalState],
}

impl Analysis for Taint<'_> {
    type Fact = HashSet<ValueId>;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self, _f: &Function) -> Self::Fact {
        HashSet::new()
    }

    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) {
        into.extend(from.iter().copied());
    }

    fn transfer_inst(&self, f: &Function, v: ValueId, fact: &mut Self::Fact) {
        let op = &f.inst(v).op;
        if !op.p4_supported(self.states) || op.uses().iter().any(|u| fact.contains(u)) {
            fact.insert(v);
        }
    }
}

/// All values tainted anywhere in the (reachable part of the) function.
/// Taint only ever grows along flow, so the union of block-exit facts
/// covers every tainted definition.
pub fn tainted_values(f: &Function, states: &[GlobalState]) -> HashSet<ValueId> {
    let sol = solve(f, &Taint { states });
    let mut all = HashSet::new();
    for fact in &sol.exit {
        all.extend(fact.iter().copied());
    }
    all
}

// ---------------------------------------------------------------------
// Instance 3: reaching header writes (forward, per-key union join).
// ---------------------------------------------------------------------

/// For each header field, the set of `WriteField` instructions whose value
/// may still be the field's current content. Drives the writes-never-read
/// lint.
pub struct ReachingHeaderWrites;

impl Analysis for ReachingHeaderWrites {
    type Fact = HashMap<gallium_mir::HeaderField, HashSet<ValueId>>;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self, _f: &Function) -> Self::Fact {
        HashMap::new()
    }

    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) {
        for (field, writers) in from {
            into.entry(*field)
                .or_default()
                .extend(writers.iter().copied());
        }
    }

    fn transfer_inst(&self, f: &Function, v: ValueId, fact: &mut Self::Fact) {
        if let Op::WriteField { field, .. } = &f.inst(v).op {
            let mut only = HashSet::new();
            only.insert(v);
            fact.insert(*field, only);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gallium_mir::{BinOp, FuncBuilder, HeaderField};

    #[test]
    fn liveness_peak_on_straight_line() {
        let mut b = FuncBuilder::new("t");
        let a = b.read_field(HeaderField::IpSaddr);
        let c = b.read_field(HeaderField::IpDaddr);
        let x = b.bin(BinOp::Xor, a, c);
        b.write_field(HeaderField::IpDaddr, x);
        b.ret();
        let p = b.finish().unwrap();
        let sol = solve(&p.func, &LiveValues);
        assert!(sol.entry[0].is_empty());
        assert!(sol.exit[0].is_empty());
        assert_eq!(max_live_bits(&p.func, &sol, &|_| true), 64);
    }

    #[test]
    fn liveness_respects_branches() {
        let mut b = FuncBuilder::new("t");
        let a = b.read_field(HeaderField::IpSaddr); // v0
        let z = b.cnst(0, 32); // v1
        let c = b.bin(BinOp::Eq, a, z); // v2
        let t = b.new_block();
        let e = b.new_block();
        b.branch(c, t, e);
        b.switch_to(t);
        b.write_field(HeaderField::IpDaddr, a);
        b.send();
        b.ret();
        b.switch_to(e);
        b.drop_pkt();
        b.ret();
        let p = b.finish().unwrap();
        let sol = solve(&p.func, &LiveValues);
        assert!(sol.entry[1].contains(&ValueId(0)));
        assert!(!sol.entry[2].contains(&ValueId(0)));
        assert!(sol.exit[0].contains(&ValueId(0)));
    }

    #[test]
    fn taint_propagates_through_uses() {
        let mut b = FuncBuilder::new("t");
        let x = b.read_field(HeaderField::IpSaddr); // v0 clean
        let m = b.payload_match(b"X"); // v1 tainted (payload access)
        let x1 = b.cast(x, 1); // v2 clean
        let both = b.bin(BinOp::And, x1, m); // v3 tainted via v1
        let both8 = b.cast(both, 8); // v4 tainted via v3
        b.write_field(HeaderField::IpTtl, both8); // v5 tainted via v4
        b.ret();
        let p = b.finish().unwrap();
        let tainted = tainted_values(&p.func, &p.states);
        assert!(!tainted.contains(&ValueId(0)));
        assert!(!tainted.contains(&ValueId(2)));
        for v in [1u32, 3, 4, 5] {
            assert!(tainted.contains(&ValueId(v)), "v{v} should be tainted");
        }
    }

    #[test]
    fn reaching_writes_are_killed_by_overwrites() {
        let mut b = FuncBuilder::new("t");
        let one = b.cnst(1, 8); // v0
        let two = b.cnst(2, 8); // v1
        b.write_field(HeaderField::IpTtl, one); // v2 (overwritten below)
        b.write_field(HeaderField::IpTtl, two); // v3
        b.send();
        b.ret();
        let p = b.finish().unwrap();
        let sol = solve(&p.func, &ReachingHeaderWrites);
        let at_exit = &sol.exit[0][&HeaderField::IpTtl];
        assert!(at_exit.contains(&ValueId(3)));
        assert!(!at_exit.contains(&ValueId(2)));
    }
}
