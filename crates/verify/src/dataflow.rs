//! A reusable worklist dataflow framework.
//!
//! The verifier must not trust the analyses in `gallium-analysis` — its
//! whole point is to re-derive every fact independently and diff. This
//! module is the re-derivation substrate, in two layers:
//!
//! * a **graph-generic worklist core** ([`GraphAnalysis`] /
//!   [`solve_graph`]): nodes are opaque indices, edges come from a
//!   successor callback, and facts form a join-semilattice. The plan
//!   abstract interpreter ([`crate::absint`]) runs on this directly, with
//!   one node per committed plan opcode;
//! * the **MIR instances** the partition checkers need (liveness, taint
//!   from non-offloadable sources, reaching header writes), expressed
//!   through the original per-instruction [`Analysis`] trait, which is
//!   now a thin adapter over the graph core (one graph node per basic
//!   block).
//!
//! `solve`/`solve_graph` iterate transfer functions to the least
//! fixpoint. Because every instance here uses monotone transfers over a
//! join-semilattice, the least fixpoint is unique — which is what lets
//! the property tests demand *equality* (not mere soundness) against the
//! compiler's own analyses.

use gallium_mir::{BlockId, Function, GlobalState, Op, Terminator, ValueId};
use std::collections::{HashMap, HashSet, VecDeque};

// ---------------------------------------------------------------------
// Graph-generic worklist core.
// ---------------------------------------------------------------------

/// A dataflow analysis over an arbitrary directed graph. Nodes are dense
/// indices `0..node_count()`; edges are given in *CFG* orientation (the
/// direction execution flows) regardless of [`GraphAnalysis::direction`]
/// — the solver reverses them internally for backward analyses.
pub trait GraphAnalysis {
    /// The per-node fact.
    type Fact: Clone + PartialEq;

    /// Propagation direction.
    fn direction(&self) -> Direction;

    /// Number of graph nodes.
    fn node_count(&self) -> usize;

    /// CFG successors of `n`.
    fn successors(&self, n: usize) -> Vec<usize>;

    /// The lattice bottom (the neutral element of [`GraphAnalysis::join`]).
    fn bottom(&self) -> Self::Fact;

    /// Whether `n` is a boundary node (entry for forward analyses, exit
    /// for backward ones); boundary nodes seed from
    /// [`GraphAnalysis::boundary_fact`] instead of bottom.
    fn is_boundary(&self, n: usize) -> bool;

    /// The fact injected at boundary nodes. Defaults to bottom.
    fn boundary_fact(&self) -> Self::Fact {
        self.bottom()
    }

    /// Merge `from` into `into`.
    fn join(&self, into: &mut Self::Fact, from: &Self::Fact);

    /// Push a fact through node `n` (in the analysis direction).
    fn transfer(&self, n: usize, fact: &mut Self::Fact);

    /// Adjust a fact crossing the CFG edge `from → to`. Defaults to the
    /// identity.
    fn edge_fact(&self, _from: usize, _to: usize, fact: &Self::Fact) -> Self::Fact {
        fact.clone()
    }
}

/// The graph fixpoint, in *flow* orientation: `input[n]` is the joined
/// fact entering node `n` along the analysis direction, `output[n]` the
/// fact after `n`'s transfer.
#[derive(Debug, Clone)]
pub struct GraphSolution<F> {
    /// Fact flowing into each node (before its transfer).
    pub input: Vec<F>,
    /// Fact flowing out of each node (after its transfer).
    pub output: Vec<F>,
}

/// Run `a` to its least fixpoint with a worklist.
pub fn solve_graph<A: GraphAnalysis>(a: &A) -> GraphSolution<A::Fact> {
    let n = a.node_count();
    let mut succs: Vec<Vec<usize>> = Vec::with_capacity(n);
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        let s = a.successors(i);
        for &t in &s {
            if t < n {
                preds[t].push(i);
            }
        }
        succs.push(s);
    }
    // Flow orientation: forward analyses consume CFG predecessors and
    // feed successors; backward analyses the reverse.
    let backward = a.direction() == Direction::Backward;
    let mut input: Vec<A::Fact> = (0..n).map(|_| a.bottom()).collect();
    let mut output: Vec<A::Fact> = (0..n).map(|_| a.bottom()).collect();
    let mut work: VecDeque<usize> = (0..n).collect();
    let mut queued = vec![true; n];
    while let Some(i) = work.pop_front() {
        queued[i] = false;
        let mut inb = if a.is_boundary(i) {
            a.boundary_fact()
        } else {
            a.bottom()
        };
        let flow_preds = if backward { &succs[i] } else { &preds[i] };
        for &p in flow_preds {
            let along = if backward {
                a.edge_fact(i, p, &output[p])
            } else {
                a.edge_fact(p, i, &output[p])
            };
            a.join(&mut inb, &along);
        }
        let mut fact = inb.clone();
        a.transfer(i, &mut fact);
        let changed = input[i] != inb || output[i] != fact;
        input[i] = inb;
        output[i] = fact;
        if changed {
            let flow_succs = if backward { &preds[i] } else { &succs[i] };
            for &s in flow_succs {
                if !queued[s] {
                    queued[s] = true;
                    work.push_back(s);
                }
            }
        }
    }
    GraphSolution { input, output }
}

/// Which way facts propagate through the CFG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from the entry block toward the exits.
    Forward,
    /// Facts flow from the exits toward the entry block.
    Backward,
}

/// A dataflow analysis: a fact lattice plus transfer functions.
pub trait Analysis {
    /// The per-program-point fact.
    type Fact: Clone + PartialEq;

    /// Propagation direction.
    fn direction(&self) -> Direction;

    /// The lattice bottom (the neutral element of [`Analysis::join`]).
    fn bottom(&self, f: &Function) -> Self::Fact;

    /// The fact at the boundary (entry block for forward analyses, every
    /// exit for backward ones). Defaults to bottom.
    fn boundary_fact(&self, f: &Function) -> Self::Fact {
        self.bottom(f)
    }

    /// Merge `from` into `into`.
    fn join(&self, into: &mut Self::Fact, from: &Self::Fact);

    /// Push the fact through one instruction (in the analysis direction).
    fn transfer_inst(&self, f: &Function, v: ValueId, fact: &mut Self::Fact);

    /// Push the fact through a block terminator. For backward analyses this
    /// runs *before* the instructions (the terminator executes last).
    fn transfer_term(&self, _f: &Function, _b: BlockId, _fact: &mut Self::Fact) {}

    /// Adjust a fact as it crosses the CFG edge `from → to` (e.g. SSA
    /// φ-edge adjustments). Defaults to the identity.
    fn edge_fact(
        &self,
        _f: &Function,
        _from: BlockId,
        _to: BlockId,
        fact: &Self::Fact,
    ) -> Self::Fact {
        fact.clone()
    }
}

/// The fixpoint: one fact pair per block.
#[derive(Debug, Clone)]
pub struct Solution<F> {
    /// Fact at block entry (before the first instruction).
    pub entry: Vec<F>,
    /// Fact at block exit (after the terminator).
    pub exit: Vec<F>,
}

/// Adapter running a per-instruction MIR [`Analysis`] on the graph core:
/// one graph node per basic block, edges from the terminators.
struct MirGraph<'x, A: Analysis> {
    f: &'x Function,
    a: &'x A,
    succs: Vec<Vec<usize>>,
}

impl<A: Analysis> GraphAnalysis for MirGraph<'_, A> {
    type Fact = A::Fact;

    fn direction(&self) -> Direction {
        self.a.direction()
    }

    fn node_count(&self) -> usize {
        self.f.blocks.len()
    }

    fn successors(&self, n: usize) -> Vec<usize> {
        self.succs[n].clone()
    }

    fn bottom(&self) -> Self::Fact {
        self.a.bottom(self.f)
    }

    fn is_boundary(&self, n: usize) -> bool {
        match self.a.direction() {
            Direction::Forward => BlockId(n as u32) == self.f.entry,
            Direction::Backward => self.succs[n].is_empty(),
        }
    }

    fn boundary_fact(&self) -> Self::Fact {
        self.a.boundary_fact(self.f)
    }

    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) {
        self.a.join(into, from);
    }

    fn transfer(&self, n: usize, fact: &mut Self::Fact) {
        let b = &self.f.blocks[n];
        match self.a.direction() {
            Direction::Forward => {
                for &v in &b.insts {
                    self.a.transfer_inst(self.f, v, fact);
                }
                self.a.transfer_term(self.f, b.id, fact);
            }
            Direction::Backward => {
                // The terminator executes last, so it transfers first.
                self.a.transfer_term(self.f, b.id, fact);
                for &v in b.insts.iter().rev() {
                    self.a.transfer_inst(self.f, v, fact);
                }
            }
        }
    }

    fn edge_fact(&self, from: usize, to: usize, fact: &Self::Fact) -> Self::Fact {
        self.a
            .edge_fact(self.f, BlockId(from as u32), BlockId(to as u32), fact)
    }
}

/// Run `a` to its least fixpoint with a worklist.
pub fn solve<A: Analysis>(f: &Function, a: &A) -> Solution<A::Fact> {
    let succs: Vec<Vec<usize>> = f
        .blocks
        .iter()
        .map(|b| b.term.successors().iter().map(|s| s.0 as usize).collect())
        .collect();
    let sol = solve_graph(&MirGraph { f, a, succs });
    // Map flow orientation back to program order: a backward analysis
    // flows exit → entry.
    match a.direction() {
        Direction::Forward => Solution {
            entry: sol.input,
            exit: sol.output,
        },
        Direction::Backward => Solution {
            entry: sol.output,
            exit: sol.input,
        },
    }
}

// ---------------------------------------------------------------------
// Instance 1: SSA-value liveness (backward, union join).
// ---------------------------------------------------------------------

/// Live SSA values, with φ operands counted live at the tail of the
/// corresponding predecessor (standard SSA liveness). The `exit` facts of
/// the solution are the live-out sets, `entry` the live-in sets.
pub struct LiveValues;

impl Analysis for LiveValues {
    type Fact = HashSet<ValueId>;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn bottom(&self, _f: &Function) -> Self::Fact {
        HashSet::new()
    }

    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) {
        into.extend(from.iter().copied());
    }

    fn transfer_inst(&self, f: &Function, v: ValueId, fact: &mut Self::Fact) {
        fact.remove(&v);
        match &f.inst(v).op {
            Op::Phi { .. } => {} // operands are handled on the edges
            op => fact.extend(op.uses()),
        }
    }

    fn transfer_term(&self, f: &Function, b: BlockId, fact: &mut Self::Fact) {
        if let Terminator::Branch { cond, .. } = &f.block(b).term {
            fact.insert(*cond);
        }
    }

    fn edge_fact(&self, f: &Function, from: BlockId, to: BlockId, fact: &Self::Fact) -> Self::Fact {
        let tb = f.block(to);
        // φ results defined in `to` are not live into the predecessor…
        let mut out: HashSet<ValueId> = fact
            .iter()
            .copied()
            .filter(|v| !tb.insts.contains(v) || !matches!(f.inst(*v).op, Op::Phi { .. }))
            .collect();
        // …but the φ operand arriving along this edge is.
        for &pv in &tb.insts {
            if let Op::Phi { incoming } = &f.inst(pv).op {
                for (pred, val) in incoming {
                    if *pred == from {
                        out.insert(*val);
                    }
                }
            }
        }
        out
    }
}

/// The maximum number of concurrently-live metadata bits in `f`, counting
/// only values `counts` accepts (the verifier's Constraint-4 metric).
pub fn max_live_bits(
    f: &Function,
    live: &Solution<HashSet<ValueId>>,
    counts: &dyn Fn(ValueId) -> bool,
) -> usize {
    let bits = |set: &HashSet<ValueId>| -> usize {
        set.iter()
            .filter(|v| counts(**v))
            .map(|v| f.inst(*v).ty.meta_bits())
            .sum()
    };
    let mut max = 0usize;
    for b in &f.blocks {
        let mut cur = live.exit[b.id.0 as usize].clone();
        if let Terminator::Branch { cond, .. } = &b.term {
            cur.insert(*cond);
        }
        max = max.max(bits(&cur));
        for &v in b.insts.iter().rev() {
            cur.remove(&v);
            match &f.inst(v).op {
                Op::Phi { .. } => {}
                op => cur.extend(op.uses()),
            }
            max = max.max(bits(&cur));
        }
    }
    max
}

// ---------------------------------------------------------------------
// Instance 2: taint from non-offloadable sources (forward, union join).
// ---------------------------------------------------------------------

/// Marks every value that is, or transitively consumes, an operation P4
/// cannot express. A `Pre`-assigned instruction must never be tainted: its
/// inputs would not exist on the switch yet.
pub struct Taint<'a> {
    /// State declarations (P4 support of a map lookup depends on the size
    /// annotation).
    pub states: &'a [GlobalState],
}

impl Analysis for Taint<'_> {
    type Fact = HashSet<ValueId>;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self, _f: &Function) -> Self::Fact {
        HashSet::new()
    }

    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) {
        into.extend(from.iter().copied());
    }

    fn transfer_inst(&self, f: &Function, v: ValueId, fact: &mut Self::Fact) {
        let op = &f.inst(v).op;
        if !op.p4_supported(self.states) || op.uses().iter().any(|u| fact.contains(u)) {
            fact.insert(v);
        }
    }
}

/// All values tainted anywhere in the (reachable part of the) function.
/// Taint only ever grows along flow, so the union of block-exit facts
/// covers every tainted definition.
pub fn tainted_values(f: &Function, states: &[GlobalState]) -> HashSet<ValueId> {
    let sol = solve(f, &Taint { states });
    let mut all = HashSet::new();
    for fact in &sol.exit {
        all.extend(fact.iter().copied());
    }
    all
}

// ---------------------------------------------------------------------
// Instance 3: reaching header writes (forward, per-key union join).
// ---------------------------------------------------------------------

/// For each header field, the set of `WriteField` instructions whose value
/// may still be the field's current content. Drives the writes-never-read
/// lint.
pub struct ReachingHeaderWrites;

impl Analysis for ReachingHeaderWrites {
    type Fact = HashMap<gallium_mir::HeaderField, HashSet<ValueId>>;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self, _f: &Function) -> Self::Fact {
        HashMap::new()
    }

    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) {
        for (field, writers) in from {
            into.entry(*field)
                .or_default()
                .extend(writers.iter().copied());
        }
    }

    fn transfer_inst(&self, f: &Function, v: ValueId, fact: &mut Self::Fact) {
        if let Op::WriteField { field, .. } = &f.inst(v).op {
            let mut only = HashSet::new();
            only.insert(v);
            fact.insert(*field, only);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gallium_mir::{BinOp, FuncBuilder, HeaderField};

    #[test]
    fn liveness_peak_on_straight_line() {
        let mut b = FuncBuilder::new("t");
        let a = b.read_field(HeaderField::IpSaddr);
        let c = b.read_field(HeaderField::IpDaddr);
        let x = b.bin(BinOp::Xor, a, c);
        b.write_field(HeaderField::IpDaddr, x);
        b.ret();
        let p = b.finish().unwrap();
        let sol = solve(&p.func, &LiveValues);
        assert!(sol.entry[0].is_empty());
        assert!(sol.exit[0].is_empty());
        assert_eq!(max_live_bits(&p.func, &sol, &|_| true), 64);
    }

    #[test]
    fn liveness_respects_branches() {
        let mut b = FuncBuilder::new("t");
        let a = b.read_field(HeaderField::IpSaddr); // v0
        let z = b.cnst(0, 32); // v1
        let c = b.bin(BinOp::Eq, a, z); // v2
        let t = b.new_block();
        let e = b.new_block();
        b.branch(c, t, e);
        b.switch_to(t);
        b.write_field(HeaderField::IpDaddr, a);
        b.send();
        b.ret();
        b.switch_to(e);
        b.drop_pkt();
        b.ret();
        let p = b.finish().unwrap();
        let sol = solve(&p.func, &LiveValues);
        assert!(sol.entry[1].contains(&ValueId(0)));
        assert!(!sol.entry[2].contains(&ValueId(0)));
        assert!(sol.exit[0].contains(&ValueId(0)));
    }

    #[test]
    fn taint_propagates_through_uses() {
        let mut b = FuncBuilder::new("t");
        let x = b.read_field(HeaderField::IpSaddr); // v0 clean
        let m = b.payload_match(b"X"); // v1 tainted (payload access)
        let x1 = b.cast(x, 1); // v2 clean
        let both = b.bin(BinOp::And, x1, m); // v3 tainted via v1
        let both8 = b.cast(both, 8); // v4 tainted via v3
        b.write_field(HeaderField::IpTtl, both8); // v5 tainted via v4
        b.ret();
        let p = b.finish().unwrap();
        let tainted = tainted_values(&p.func, &p.states);
        assert!(!tainted.contains(&ValueId(0)));
        assert!(!tainted.contains(&ValueId(2)));
        for v in [1u32, 3, 4, 5] {
            assert!(tainted.contains(&ValueId(v)), "v{v} should be tainted");
        }
    }

    #[test]
    fn reaching_writes_are_killed_by_overwrites() {
        let mut b = FuncBuilder::new("t");
        let one = b.cnst(1, 8); // v0
        let two = b.cnst(2, 8); // v1
        b.write_field(HeaderField::IpTtl, one); // v2 (overwritten below)
        b.write_field(HeaderField::IpTtl, two); // v3
        b.send();
        b.ret();
        let p = b.finish().unwrap();
        let sol = solve(&p.func, &ReachingHeaderWrites);
        let at_exit = &sol.exit[0][&HeaderField::IpTtl];
        assert!(at_exit.contains(&ValueId(3)));
        assert!(!at_exit.contains(&ValueId(2)));
    }
}
