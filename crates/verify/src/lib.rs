//! # gallium-verify — independent partition verifier
//!
//! A second, deliberately redundant implementation of the facts the
//! Gallium compiler relies on, used as a *translation validator*: after
//! `compile()` produces a [`StagedProgram`] and a P4 program, this crate
//! re-derives the §4 analysis results from scratch — its own dataflow
//! framework ([`dataflow`]), its own dependency graph ([`deps`]) — and
//! diffs them against the compiler's output:
//!
//! * **Partition soundness** ([`soundness`]) — phase-1 labels re-derived
//!   and diffed, every offloaded assignment justified, dependency edges
//!   flowing forward, boundary transfer sets and header layouts
//!   reproduced, state placements and the one-access-per-traversal
//!   discipline checked.
//! * **Resource audit** ([`resources`]) — the generated P4 program laid
//!   into match-action stages and checked against the [`SwitchModel`]
//!   budgets, with a per-stage utilization report.
//! * **MIR lints** ([`lints`]) — dead instructions, unreachable blocks,
//!   unused state, unobserved header writes, replicated-write hazards.
//!
//! Any disagreement between the verifier and the compiler is a hard
//! [`VerifyError`]; the lints are structured warnings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod absint;
pub mod dataflow;
pub mod deps;
pub mod lints;
pub mod plan;
pub mod resources;
pub mod soundness;

pub use absint::{AbsState, AbsVal, PlanAbs};
pub use dataflow::{
    max_live_bits, solve, solve_graph, tainted_values, Analysis, Direction, GraphAnalysis,
    GraphSolution, LiveValues, ReachingHeaderWrites, Solution, Taint,
};
pub use deps::{DepEdgeKind, FlowGraph, VDeps};
pub use lints::{Lint, LintKind, Severity, Span};
pub use plan::{lint_plan, verify_plan, PlanReport, PlanVerifyError};
pub use resources::{ResourceReport, StageRow};
pub use soundness::{derive_phase1_labels, DerivedLabels};

use gallium_p4::P4Program;
use gallium_partition::{ModelError, Partition, StagedProgram, StatePlacement, SwitchModel};
use gallium_telemetry::json_escape;
use gallium_telemetry::names;
use std::fmt;

use gallium_mir::ValueId;

/// The two partition boundaries a value can cross.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Boundary {
    /// Switch → server (end of the pre traversal).
    ToServer,
    /// Server → switch (start of the post traversal).
    ToSwitch,
}

impl Boundary {
    /// Stable lowercase key.
    pub fn label(self) -> &'static str {
        match self {
            Boundary::ToServer => "to-server",
            Boundary::ToSwitch => "to-switch",
        }
    }
}

/// The two switch traversals of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Traversal {
    /// Pre-processing traversal.
    Pre,
    /// Post-processing traversal.
    Post,
}

impl Traversal {
    /// Stable lowercase key.
    pub fn label(self) -> &'static str {
        match self {
            Traversal::Pre => "pre",
            Traversal::Post => "post",
        }
    }
}

/// A hard verification failure: either the compiler's output disagrees
/// with the verifier's independent re-derivation (a compiler bug), or the
/// generated program does not fit the switch model (unloadable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The switch model itself is degenerate.
    Model(ModelError),
    /// The re-derived phase-1 labels differ from the driver's snapshot.
    LabelDisagreement {
        /// Instruction in disagreement.
        value: ValueId,
        /// Pretty-printed instruction text.
        inst: String,
        /// Compiler's `pre` label after phase 1.
        compiler_pre: bool,
        /// Compiler's `post` label after phase 1.
        compiler_post: bool,
        /// Verifier's re-derived `pre` label.
        derived_pre: bool,
        /// Verifier's re-derived `post` label.
        derived_post: bool,
    },
    /// An offloaded assignment the re-derived labels cannot justify.
    AssignmentNotDerivable {
        /// Instruction in question.
        value: ValueId,
        /// Pretty-printed instruction text.
        inst: String,
        /// The partition the compiler assigned.
        assigned: Partition,
    },
    /// A dependency edge that flows backwards through the pipeline.
    BackwardDependency {
        /// Dependency (earlier) endpoint.
        from: ValueId,
        /// Dependent (later) endpoint.
        to: ValueId,
        /// Partition of `from`.
        from_partition: Partition,
        /// Partition of `to`.
        to_partition: Partition,
    },
    /// A pre-partition value transitively computed from something P4
    /// cannot express.
    NonExpressibleOnSwitch {
        /// Instruction in question.
        value: ValueId,
        /// Pretty-printed instruction text.
        inst: String,
    },
    /// A value the verifier proves must cross a boundary but the
    /// compiler's transfer set omits.
    MissingTransfer {
        /// The value that must cross.
        value: ValueId,
        /// Which boundary it must cross.
        boundary: Boundary,
    },
    /// A synthesized transfer header whose payload width differs from the
    /// re-derived boundary set's.
    LayoutMismatch {
        /// Which boundary.
        boundary: Boundary,
        /// Payload bits the verifier derived.
        expected_bits: usize,
        /// Payload bits the compiler's header carries.
        actual_bits: usize,
    },
    /// A transfer header over the Constraint-5 wire budget.
    TransferBudgetExceeded {
        /// Which boundary.
        boundary: Boundary,
        /// Wire bytes of the synthesized header.
        wire_bytes: usize,
        /// The model's budget in bytes.
        budget_bytes: usize,
    },
    /// A state placement differing from the §4.3.1 rule.
    PlacementMismatch {
        /// State name.
        state: String,
        /// The compiler's placement.
        compiler: StatePlacement,
        /// The verifier's re-derived placement.
        derived: StatePlacement,
    },
    /// More than one access to a state object in one traversal
    /// (Constraint 3).
    MultipleStateAccess {
        /// State name.
        state: String,
        /// Which traversal.
        traversal: Traversal,
        /// How many accesses the traversal makes.
        accesses: usize,
    },
    /// A traversal needing more stages than the pipeline has
    /// (Constraint 2).
    StageOverflow {
        /// Which traversal.
        traversal: Traversal,
        /// Stages the traversal needs.
        depth: usize,
        /// Stages the model provides.
        budget: usize,
    },
    /// A cycle in the generated pipeline DAG (must never happen).
    PipelineCycle {
        /// Which traversal.
        traversal: Traversal,
    },
    /// Tables plus registers over the SRAM budget (Constraint 1).
    TableMemoryExceeded {
        /// SRAM bits the program needs.
        used_bits: usize,
        /// SRAM bits the model provides.
        budget_bits: usize,
    },
    /// Peak live metadata over the per-packet budget (Constraint 4).
    MetadataOverflow {
        /// Which traversal.
        traversal: Traversal,
        /// Peak concurrently-live bits.
        live_bits: usize,
        /// The model's budget in bits.
        budget_bits: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Model(e) => write!(f, "invalid switch model: {e}"),
            VerifyError::LabelDisagreement {
                value,
                inst,
                compiler_pre,
                compiler_post,
                derived_pre,
                derived_post,
            } => write!(
                f,
                "label disagreement on v{} ({inst}): compiler derived pre={compiler_pre} \
                 post={compiler_post}, verifier derived pre={derived_pre} post={derived_post}",
                value.0
            ),
            VerifyError::AssignmentNotDerivable {
                value,
                inst,
                assigned,
            } => write!(
                f,
                "v{} ({inst}) is assigned to {} but the re-derived labels forbid it",
                value.0,
                assigned.label()
            ),
            VerifyError::BackwardDependency {
                from,
                to,
                from_partition,
                to_partition,
            } => write!(
                f,
                "dependency v{} -> v{} flows backwards through the pipeline ({} -> {})",
                from.0,
                to.0,
                from_partition.label(),
                to_partition.label()
            ),
            VerifyError::NonExpressibleOnSwitch { value, inst } => write!(
                f,
                "v{} ({inst}) runs in pre but transitively depends on a value P4 cannot express",
                value.0
            ),
            VerifyError::MissingTransfer { value, boundary } => write!(
                f,
                "v{} must cross the {} boundary but is missing from the transfer set",
                value.0,
                boundary.label()
            ),
            VerifyError::LayoutMismatch {
                boundary,
                expected_bits,
                actual_bits,
            } => write!(
                f,
                "{} header carries {actual_bits} payload bits; the re-derived boundary \
                 set needs {expected_bits}",
                boundary.label()
            ),
            VerifyError::TransferBudgetExceeded {
                boundary,
                wire_bytes,
                budget_bytes,
            } => write!(
                f,
                "{} header is {wire_bytes} bytes on the wire, over the {budget_bytes}-byte \
                 budget (constraint 5)",
                boundary.label()
            ),
            VerifyError::PlacementMismatch {
                state,
                compiler,
                derived,
            } => write!(
                f,
                "state '{state}' placed {} by the compiler but the assignment implies {}",
                compiler.label(),
                derived.label()
            ),
            VerifyError::MultipleStateAccess {
                state,
                traversal,
                accesses,
            } => write!(
                f,
                "the {} traversal accesses state '{state}' {accesses} times; a pipeline \
                 visits each table once (constraint 3)",
                traversal.label()
            ),
            VerifyError::StageOverflow {
                traversal,
                depth,
                budget,
            } => write!(
                f,
                "the {} traversal needs {depth} stages but the pipeline has {budget} \
                 (constraint 2)",
                traversal.label()
            ),
            VerifyError::PipelineCycle { traversal } => write!(
                f,
                "the generated {} pipeline contains a cycle",
                traversal.label()
            ),
            VerifyError::TableMemoryExceeded {
                used_bits,
                budget_bits,
            } => write!(
                f,
                "tables and registers need {used_bits} SRAM bits, over the {budget_bits}-bit \
                 budget (constraint 1)",
            ),
            VerifyError::MetadataOverflow {
                traversal,
                live_bits,
                budget_bits,
            } => write!(
                f,
                "the {} traversal keeps {live_bits} metadata bits live, over the \
                 {budget_bits}-bit budget (constraint 4)",
                traversal.label()
            ),
        }
    }
}

impl std::error::Error for VerifyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VerifyError::Model(e) => Some(e),
            _ => None,
        }
    }
}

/// The complete verification outcome for one program.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyReport {
    /// Program name.
    pub program: String,
    /// Hard failures (empty for a clean program).
    pub errors: Vec<VerifyError>,
    /// Structured warnings.
    pub lints: Vec<Lint>,
    /// The resource audit, when the model was valid enough to run it.
    pub resources: Option<ResourceReport>,
}

impl VerifyReport {
    /// No hard errors (lints may still be present).
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }

    /// Number of error-severity findings (hard errors plus error lints).
    pub fn error_count(&self) -> usize {
        self.errors.len()
            + self
                .lints
                .iter()
                .filter(|l| l.severity == Severity::Error)
                .count()
    }

    /// Render the outcome as text: verdict, errors, lints, then the
    /// per-stage resource table.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "verify: {} — {} ({} errors, {} lints)",
            self.program,
            if self.is_clean() { "ok" } else { "FAILED" },
            self.errors.len(),
            self.lints.len()
        );
        for e in &self.errors {
            let _ = writeln!(out, "  error: {e}");
        }
        for l in &self.lints {
            let _ = writeln!(out, "  {l}");
        }
        if let Some(r) = &self.resources {
            for line in r.render_text().lines() {
                let _ = writeln!(out, "  {line}");
            }
        }
        out
    }

    /// Serialize the outcome to JSON (hand-rolled; no serde).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "{{\n  \"program\": {},", json_escape(&self.program));
        let _ = write!(out, "\n  \"clean\": {},", self.is_clean());
        out.push_str("\n  \"errors\": [");
        for (i, e) in self.errors.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}", json_escape(&e.to_string()));
        }
        out.push_str("\n  ],\n  \"lints\": [");
        for (i, l) in self.lints.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"kind\": {}, \"severity\": {}, \"span\": {}, \"message\": {}}}",
                json_escape(l.kind.key()),
                json_escape(l.severity.label()),
                json_escape(&l.span.to_string()),
                json_escape(&l.message)
            );
        }
        out.push_str("\n  ]");
        if let Some(r) = &self.resources {
            out.push_str(",\n  \"resources\": ");
            for (i, line) in r.to_json().trim_end().lines().enumerate() {
                if i > 0 {
                    out.push('\n');
                }
                out.push_str(line);
            }
        }
        out.push_str("\n}\n");
        out
    }
}

/// Verify one compiled program against the model it was compiled for.
///
/// Order: the model is validated first (a degenerate model short-circuits
/// everything else with [`VerifyError::Model`]); then partition
/// soundness, the resource audit, and the MIR lints, each under its own
/// `gallium.verify.*` timer.
pub fn verify(staged: &StagedProgram, p4: &P4Program, model: &SwitchModel) -> VerifyReport {
    let reg = gallium_telemetry::global();
    let _whole = reg.histogram(names::VERIFY_NS).time();
    reg.counter(names::VERIFY_RUNS).inc();

    let mut errors = Vec::new();
    let mut lints = Vec::new();
    let mut resources = None;
    if let Err(e) = model.validate() {
        errors.push(VerifyError::Model(e));
    } else {
        {
            let _t = reg.histogram(names::VERIFY_SOUNDNESS_NS).time();
            soundness::check(staged, &mut errors);
        }
        {
            let _t = reg.histogram(names::VERIFY_RESOURCES_NS).time();
            resources = Some(resources::check(staged, p4, model, &mut errors, &mut lints));
        }
    }
    {
        let _t = reg.histogram(names::VERIFY_LINTS_NS).time();
        lints.extend(lints::run(staged));
    }

    reg.counter(names::VERIFY_ERRORS).add(errors.len() as u64);
    reg.counter(names::VERIFY_LINTS).add(lints.len() as u64);
    VerifyReport {
        program: staged.prog.name.clone(),
        errors,
        lints,
        resources,
    }
}
