//! Resource audit of the generated P4 program (§4.2.2 Constraints 1, 2,
//! 4, 5 as the *switch loader* would see them).
//!
//! The auditor independently lays the generated match-action program into
//! pipeline stages with the same dataflow metric the hardware uses (an
//! operation runs one stage after its latest input is ready; each
//! table/register access is itself a stage), then checks stage depth,
//! SRAM, per-packet metadata, and the transfer-header budgets against the
//! [`SwitchModel`], producing a per-stage utilization report.

use crate::dataflow::{self, LiveValues};
use crate::lints::{Lint, LintKind, Severity, Span};
use crate::{Traversal, VerifyError};
use gallium_mir::ValueId;
use gallium_p4::{BlockNode, NodeNext, P4Program, P4Stmt};
use gallium_partition::{Partition, StagedProgram, SwitchModel};
use gallium_telemetry::json_escape;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Utilization of one pipeline stage (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageRow {
    /// Stage number, starting at 1.
    pub stage: usize,
    /// Statements the pre traversal executes at this stage.
    pub pre_stmts: usize,
    /// Statements the post traversal executes at this stage.
    pub post_stmts: usize,
    /// Tables homed at this stage (a table lives at the deepest stage
    /// that applies it).
    pub tables: Vec<String>,
    /// Registers homed at this stage.
    pub registers: Vec<String>,
    /// SRAM bits the tables and registers of this stage require.
    pub memory_bits: usize,
}

/// The full per-program resource audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceReport {
    /// Program name.
    pub program: String,
    /// Deepest stage either traversal uses.
    pub depth_used: usize,
    /// The model's pipeline depth.
    pub depth_budget: usize,
    /// One row per *used* stage, in order.
    pub stages: Vec<StageRow>,
    /// Total table SRAM, in bits.
    pub table_memory_bits: usize,
    /// Total register SRAM, in bits.
    pub register_bits: usize,
    /// The model's total SRAM budget, in bits.
    pub memory_budget_bits: usize,
    /// The model's per-stage SRAM share, in bits.
    pub per_stage_memory_bits: usize,
    /// Peak concurrently-live metadata in the pre traversal, in bits.
    pub pre_live_meta_bits: usize,
    /// Peak concurrently-live metadata in the post traversal, in bits.
    pub post_live_meta_bits: usize,
    /// Total *declared* metadata, in bits (upper bound; the liveness
    /// figures above are what the hard check uses).
    pub declared_meta_bits: usize,
    /// The model's per-packet metadata budget, in bits.
    pub metadata_budget_bits: usize,
    /// Wire size of the switch→server transfer header, in bytes.
    pub to_server_wire_bytes: usize,
    /// Wire size of the server→switch transfer header, in bytes.
    pub to_switch_wire_bytes: usize,
    /// The model's transfer-header budget, in bytes.
    pub transfer_budget_bytes: usize,
}

impl ResourceReport {
    /// Percentage helper (0 when the budget is 0).
    fn pct(used: usize, budget: usize) -> usize {
        (used * 100).checked_div(budget).unwrap_or(0)
    }

    /// Render the audit as an aligned text table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "resources: {} (depth {}/{} stages, memory {}/{} bits, metadata pre {} post {} / {} bits)",
            self.program,
            self.depth_used,
            self.depth_budget,
            self.table_memory_bits + self.register_bits,
            self.memory_budget_bits,
            self.pre_live_meta_bits,
            self.post_live_meta_bits,
            self.metadata_budget_bits,
        );
        let _ = writeln!(out, "  stage  pre-ops  post-ops  sram(bits)  homed");
        for row in &self.stages {
            let mut homed: Vec<&str> = row.tables.iter().map(String::as_str).collect();
            homed.extend(row.registers.iter().map(String::as_str));
            let _ = writeln!(
                out,
                "  {:<5}  {:<7}  {:<8}  {:<10}  {}",
                row.stage,
                row.pre_stmts,
                row.post_stmts,
                row.memory_bits,
                if homed.is_empty() {
                    "-".to_string()
                } else {
                    homed.join(", ")
                },
            );
        }
        let _ = writeln!(
            out,
            "  memory: {} table + {} register = {} / {} bits ({}%), per-stage share {} bits",
            self.table_memory_bits,
            self.register_bits,
            self.table_memory_bits + self.register_bits,
            self.memory_budget_bits,
            Self::pct(
                self.table_memory_bits + self.register_bits,
                self.memory_budget_bits
            ),
            self.per_stage_memory_bits,
        );
        let _ = writeln!(
            out,
            "  metadata: pre {} / post {} live bits, {} declared, budget {} bits ({}%)",
            self.pre_live_meta_bits,
            self.post_live_meta_bits,
            self.declared_meta_bits,
            self.metadata_budget_bits,
            Self::pct(
                self.pre_live_meta_bits.max(self.post_live_meta_bits),
                self.metadata_budget_bits
            ),
        );
        let _ = writeln!(
            out,
            "  transfer: to-server {} B, to-switch {} B, budget {} B",
            self.to_server_wire_bytes, self.to_switch_wire_bytes, self.transfer_budget_bytes,
        );
        out
    }

    /// Serialize the audit to JSON (hand-rolled; no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\n  \"program\": {},", json_escape(&self.program));
        let _ = write!(
            out,
            "\n  \"depth\": {{\"used\": {}, \"budget\": {}}},",
            self.depth_used, self.depth_budget
        );
        out.push_str("\n  \"stages\": [");
        for (i, row) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let tables: Vec<String> = row.tables.iter().map(|t| json_escape(t)).collect();
            let regs: Vec<String> = row.registers.iter().map(|r| json_escape(r)).collect();
            let _ = write!(
                out,
                "\n    {{\"stage\": {}, \"pre_stmts\": {}, \"post_stmts\": {}, \
                 \"memory_bits\": {}, \"tables\": [{}], \"registers\": [{}]}}",
                row.stage,
                row.pre_stmts,
                row.post_stmts,
                row.memory_bits,
                tables.join(", "),
                regs.join(", ")
            );
        }
        out.push_str("\n  ],");
        let _ = write!(
            out,
            "\n  \"memory\": {{\"table_bits\": {}, \"register_bits\": {}, \"budget_bits\": {}, \"per_stage_bits\": {}}},",
            self.table_memory_bits, self.register_bits, self.memory_budget_bits, self.per_stage_memory_bits
        );
        let _ = write!(
            out,
            "\n  \"metadata\": {{\"pre_live_bits\": {}, \"post_live_bits\": {}, \"declared_bits\": {}, \"budget_bits\": {}}},",
            self.pre_live_meta_bits, self.post_live_meta_bits, self.declared_meta_bits, self.metadata_budget_bits
        );
        let _ = write!(
            out,
            "\n  \"transfer\": {{\"to_server_bytes\": {}, \"to_switch_bytes\": {}, \"budget_bytes\": {}}}\n}}\n",
            self.to_server_wire_bytes, self.to_switch_wire_bytes, self.transfer_budget_bytes
        );
        out
    }
}

/// Per-traversal facts from the stage replay.
struct TraversalStages {
    /// Deepest stage used.
    depth: usize,
    /// `stmts_at[s-1]` = statements executing at stage `s`.
    stmts_at: Vec<usize>,
    /// Deepest stage at which each table is applied.
    table_stage: HashMap<usize, usize>,
    /// Deepest stage at which each register is accessed.
    reg_stage: HashMap<usize, usize>,
}

/// Metadata fields an expression reads (mirror of the codegen metric).
fn expr_reads(e: &gallium_p4::P4Expr, out: &mut Vec<String>) {
    use gallium_p4::P4Expr;
    match e {
        P4Expr::Meta(n) => out.push(n.clone()),
        P4Expr::Bin(_, a, b) => {
            expr_reads(a, out);
            expr_reads(b, out);
        }
        P4Expr::Not(a) | P4Expr::Cast(a, _) => expr_reads(a, out),
        P4Expr::Hash(parts, _) => {
            for p in parts {
                expr_reads(p, out);
            }
        }
        P4Expr::Const(..) | P4Expr::Header(_) | P4Expr::IngressPort => {}
    }
}

#[derive(Clone, Default)]
struct Levels {
    meta: HashMap<String, usize>,
    max: usize,
}

fn merge(a: &mut Levels, b: &Levels) -> bool {
    let mut changed = false;
    for (k, v) in &b.meta {
        let e = a.meta.entry(k.clone()).or_insert(0);
        if *v > *e {
            *e = *v;
            changed = true;
        }
    }
    if b.max > a.max {
        a.max = b.max;
        changed = true;
    }
    changed
}

/// The stage one statement executes at, given the input levels; updates
/// the levels in place.
fn stmt_stage(stmt: &P4Stmt, lv: &mut Levels) -> (usize, Option<(bool, usize)>) {
    let mut reads = Vec::new();
    let mut writes: Vec<&String> = Vec::new();
    // (is_table, index) of the stateful resource this statement accesses.
    let mut stateful: Option<(bool, usize)> = None;
    match stmt {
        P4Stmt::SetMeta(name, e) => {
            expr_reads(e, &mut reads);
            writes.push(name);
        }
        P4Stmt::SetHeader(_, e) => expr_reads(e, &mut reads),
        P4Stmt::TableLookup {
            table,
            keys,
            hit_meta,
            value_metas,
        } => {
            for k in keys {
                expr_reads(k, &mut reads);
            }
            writes.push(hit_meta);
            writes.extend(value_metas.iter());
            stateful = Some((true, *table));
        }
        P4Stmt::RegRead { reg, dst } => {
            writes.push(dst);
            stateful = Some((false, *reg));
        }
        P4Stmt::RegWrite { reg, src } => {
            expr_reads(src, &mut reads);
            stateful = Some((false, *reg));
        }
        P4Stmt::RegFetchAdd { reg, dst, delta } => {
            expr_reads(delta, &mut reads);
            writes.push(dst);
            stateful = Some((false, *reg));
        }
        P4Stmt::UpdateChecksum | P4Stmt::EmitCopy | P4Stmt::MarkDrop => {}
    }
    let in_level = reads
        .iter()
        .map(|r| lv.meta.get(r).copied().unwrap_or(0))
        .max()
        .unwrap_or(0);
    let stage = in_level + 1;
    for w in writes {
        lv.meta.insert(w.clone(), stage);
    }
    lv.max = lv.max.max(stage);
    (stage, stateful)
}

/// Lay one traversal into stages: run the level propagation to a
/// fixpoint, then replay every node once with its converged input levels
/// to attribute statements, tables, and registers to stages.
fn lay_out(
    nodes: &[BlockNode],
    entry: usize,
    traversal: Traversal,
    errors: &mut Vec<VerifyError>,
) -> Option<TraversalStages> {
    let n = nodes.len();
    if n == 0 {
        return Some(TraversalStages {
            depth: 0,
            stmts_at: Vec::new(),
            table_stage: HashMap::new(),
            reg_stage: HashMap::new(),
        });
    }
    let succs = |node: &BlockNode| -> Vec<usize> {
        match &node.next {
            NodeNext::Jump(t) => vec![*t],
            NodeNext::Cond { then_n, else_n, .. } => vec![*then_n, *else_n],
            NodeNext::SkipJoin { join: Some(j), .. } => vec![*j],
            _ => vec![],
        }
    };
    let mut inbox: Vec<Option<Levels>> = vec![None; n];
    inbox[entry] = Some(Levels::default());
    let mut changed = true;
    let mut rounds = 0usize;
    while changed {
        changed = false;
        rounds += 1;
        if rounds > n + 2 {
            errors.push(VerifyError::PipelineCycle { traversal });
            return None;
        }
        for i in 0..n {
            let Some(level_in) = inbox[i].clone() else {
                continue;
            };
            let mut lv = level_in;
            for stmt in &nodes[i].stmts {
                stmt_stage(stmt, &mut lv);
            }
            for s in succs(&nodes[i]) {
                match &mut inbox[s] {
                    Some(existing) => changed |= merge(existing, &lv),
                    slot @ None => {
                        *slot = Some(lv.clone());
                        changed = true;
                    }
                }
            }
        }
    }

    // Replay with the converged inboxes (monotone transfer functions, so
    // the replay sees exactly the final-iteration stages).
    let mut depth = 0usize;
    let mut stmts_at: Vec<usize> = Vec::new();
    let mut table_stage: HashMap<usize, usize> = HashMap::new();
    let mut reg_stage: HashMap<usize, usize> = HashMap::new();
    for i in 0..n {
        let Some(level_in) = inbox[i].clone() else {
            continue;
        };
        let mut lv = level_in;
        for stmt in &nodes[i].stmts {
            let (stage, stateful) = stmt_stage(stmt, &mut lv);
            if stmts_at.len() < stage {
                stmts_at.resize(stage, 0);
            }
            stmts_at[stage - 1] += 1;
            match stateful {
                Some((true, t)) => {
                    let e = table_stage.entry(t).or_insert(0);
                    *e = (*e).max(stage);
                }
                Some((false, r)) => {
                    let e = reg_stage.entry(r).or_insert(0);
                    *e = (*e).max(stage);
                }
                None => {}
            }
        }
        depth = depth.max(lv.max);
    }
    Some(TraversalStages {
        depth,
        stmts_at,
        table_stage,
        reg_stage,
    })
}

/// Run the resource audit, appending hard findings to `errors` and
/// pressure warnings to `lints`; always returns the report.
pub(crate) fn check(
    staged: &StagedProgram,
    p4: &P4Program,
    model: &SwitchModel,
    errors: &mut Vec<VerifyError>,
    lints: &mut Vec<Lint>,
) -> ResourceReport {
    let pre = lay_out(&p4.pre_nodes, p4.entry, Traversal::Pre, errors);
    let post = lay_out(&p4.post_nodes, p4.entry, Traversal::Post, errors);

    let mut depth_used = 0usize;
    let mut table_stage: HashMap<usize, usize> = HashMap::new();
    let mut reg_stage: HashMap<usize, usize> = HashMap::new();
    let mut pre_stmts: Vec<usize> = Vec::new();
    let mut post_stmts: Vec<usize> = Vec::new();
    for (t, stages, traversal) in [
        (&pre, &mut pre_stmts, Traversal::Pre),
        (&post, &mut post_stmts, Traversal::Post),
    ] {
        if let Some(t) = t {
            depth_used = depth_used.max(t.depth);
            *stages = t.stmts_at.clone();
            for (&k, &s) in &t.table_stage {
                let e = table_stage.entry(k).or_insert(0);
                *e = (*e).max(s);
            }
            for (&k, &s) in &t.reg_stage {
                let e = reg_stage.entry(k).or_insert(0);
                *e = (*e).max(s);
            }
            if t.depth > model.pipeline_depth {
                errors.push(VerifyError::StageOverflow {
                    traversal,
                    depth: t.depth,
                    budget: model.pipeline_depth,
                });
            }
        }
    }

    // Constraint 1: total SRAM.
    let table_memory_bits = p4.table_memory_bits();
    let register_bits: usize = p4.registers.iter().map(|r| usize::from(r.width)).sum();
    if table_memory_bits + register_bits > model.memory_bits {
        errors.push(VerifyError::TableMemoryExceeded {
            used_bits: table_memory_bits + register_bits,
            budget_bits: model.memory_bits,
        });
    }

    // Per-stage rows and the per-stage SRAM share.
    let table_bits = |t: &gallium_p4::P4Table| -> usize {
        let entry: usize = t
            .key_widths
            .iter()
            .chain(t.value_widths.iter())
            .map(|w| usize::from(*w))
            .sum();
        entry * t.size
    };
    let mut stages = Vec::new();
    for stage in 1..=depth_used {
        let tables: Vec<String> = p4
            .tables
            .iter()
            .enumerate()
            .filter(|(i, _)| table_stage.get(i) == Some(&stage))
            .map(|(_, t)| t.name.clone())
            .collect();
        let registers: Vec<String> = p4
            .registers
            .iter()
            .enumerate()
            .filter(|(i, _)| reg_stage.get(i) == Some(&stage))
            .map(|(_, r)| r.name.clone())
            .collect();
        let memory_bits: usize = p4
            .tables
            .iter()
            .enumerate()
            .filter(|(i, _)| table_stage.get(i) == Some(&stage))
            .map(|(_, t)| table_bits(t))
            .sum::<usize>()
            + p4.registers
                .iter()
                .enumerate()
                .filter(|(i, _)| reg_stage.get(i) == Some(&stage))
                .map(|(_, r)| usize::from(r.width))
                .sum::<usize>();
        if memory_bits > model.per_stage_memory_bits() {
            lints.push(Lint {
                kind: LintKind::StagePressure,
                severity: Severity::Warning,
                span: Span::Program,
                message: format!(
                    "stage {stage} homes {memory_bits} SRAM bits, above the equal per-stage share of {} bits",
                    model.per_stage_memory_bits()
                ),
            });
        }
        stages.push(StageRow {
            stage,
            pre_stmts: pre_stmts.get(stage - 1).copied().unwrap_or(0),
            post_stmts: post_stmts.get(stage - 1).copied().unwrap_or(0),
            tables,
            registers,
            memory_bits,
        });
    }

    // Constraint 4: peak live metadata per traversal, re-derived with the
    // verifier's own liveness solver.
    let f = &staged.prog.func;
    let live = dataflow::solve(f, &LiveValues);
    let pre_live_meta_bits = dataflow::max_live_bits(f, &live, &|v: ValueId| {
        staged.assignment[v.0 as usize] == Partition::Pre
    });
    let post_live_meta_bits = dataflow::max_live_bits(f, &live, &|v: ValueId| {
        staged.assignment[v.0 as usize] == Partition::Post
    });
    for (bits, traversal) in [
        (pre_live_meta_bits, Traversal::Pre),
        (post_live_meta_bits, Traversal::Post),
    ] {
        if bits > model.metadata_bits {
            errors.push(VerifyError::MetadataOverflow {
                traversal,
                live_bits: bits,
                budget_bits: model.metadata_bits,
            });
        }
    }
    let declared_meta_bits = p4.metadata_bits();
    if declared_meta_bits > model.metadata_bits {
        lints.push(Lint {
            kind: LintKind::DeclaredMetadataPressure,
            severity: Severity::Warning,
            span: Span::Program,
            message: format!(
                "{declared_meta_bits} metadata bits declared against a budget of {} (peak liveness fits; the allocator may still pack fields)",
                model.metadata_bits
            ),
        });
    }

    // Constraint 5: both transfer headers on the wire.
    let to_server_wire_bytes = staged.header_to_server.wire_bytes();
    let to_switch_wire_bytes = staged.header_to_switch.wire_bytes();
    for (bytes, boundary) in [
        (to_server_wire_bytes, crate::Boundary::ToServer),
        (to_switch_wire_bytes, crate::Boundary::ToSwitch),
    ] {
        if bytes > model.transfer_budget_bytes {
            errors.push(VerifyError::TransferBudgetExceeded {
                boundary,
                wire_bytes: bytes,
                budget_bytes: model.transfer_budget_bytes,
            });
        }
    }

    ResourceReport {
        program: staged.prog.name.clone(),
        depth_used,
        depth_budget: model.pipeline_depth,
        stages,
        table_memory_bits,
        register_bits,
        memory_budget_bits: model.memory_bits,
        per_stage_memory_bits: model.per_stage_memory_bits(),
        pre_live_meta_bits,
        post_live_meta_bits,
        declared_meta_bits,
        metadata_budget_bits: model.metadata_bits,
        to_server_wire_bytes,
        to_switch_wire_bytes,
        transfer_budget_bytes: model.transfer_budget_bytes,
    }
}
