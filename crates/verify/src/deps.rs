//! Independent re-derivation of the §4.1 statement dependency graph.
//!
//! This module deliberately re-implements what `gallium-analysis` computes
//! — control flow, postdominance, control dependence, and the six §4.1
//! dependency-edge families — without calling into it, using different
//! algorithms where a choice exists (postdominator *sets* by greatest
//! fixpoint instead of immediate-postdominator chains; per-node DFS
//! reachability instead of bitset closure iteration). Translation
//! validation then diffs the two derivations: any disagreement is a
//! compiler bug, not a modeling choice.

use gallium_mir::{BlockId, Loc, Op, Program, Terminator, ValueId};
use std::collections::HashSet;

/// Why one statement must run after another (mirror of the compiler's
/// dependency-kind vocabulary, re-declared to keep the crates decoupled).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DepEdgeKind {
    /// RAW/WAW on a location, SSA use-def, or output commit.
    Data,
    /// WAR on a location.
    ReverseData,
    /// Branch condition steering execution (or a φ's incoming edge).
    Control,
}

/// Block-level control flow derived straight from the terminators.
pub struct FlowGraph {
    /// Successors of each block.
    pub succs: Vec<Vec<BlockId>>,
    /// Predecessors of each block.
    pub preds: Vec<Vec<BlockId>>,
    /// `reach[b]` = blocks reachable from `b`, *including* `b` itself.
    pub reach: Vec<HashSet<BlockId>>,
    /// Reflexive postdominator set of each block w.r.t. a virtual exit
    /// (blocks that cannot reach any exit postdominate only themselves).
    pub pdoms: Vec<HashSet<BlockId>>,
    /// `control_deps[b]` = branch blocks `b` is control-dependent on.
    pub control_deps: Vec<Vec<BlockId>>,
}

impl FlowGraph {
    /// Build the flow facts for `f`.
    pub fn build(f: &gallium_mir::Function) -> Self {
        let n = f.blocks.len();
        let mut succs: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for b in &f.blocks {
            for s in b.term.successors() {
                succs[b.id.0 as usize].push(s);
                preds[s.0 as usize].push(b.id);
            }
        }

        // Inclusive forward reachability, one DFS per block.
        let mut reach: Vec<HashSet<BlockId>> = Vec::with_capacity(n);
        for b in 0..n {
            let mut seen = HashSet::new();
            let mut stack = vec![BlockId(b as u32)];
            while let Some(cur) = stack.pop() {
                if seen.insert(cur) {
                    stack.extend(succs[cur.0 as usize].iter().copied());
                }
            }
            reach.push(seen);
        }

        // Which blocks reach an exit (a block with no successors)?
        let reaches_exit: Vec<bool> = (0..n)
            .map(|b| reach[b].iter().any(|r| succs[r.0 as usize].is_empty()))
            .collect();

        // Reflexive postdominator sets by greatest fixpoint:
        //   pdoms(exit) = {exit}
        //   pdoms(b)    = {b} ∪ ⋂ { pdoms(s) : s ∈ succs(b), s reaches an exit }
        // A block that cannot reach any exit postdominates only itself.
        // Initialize non-exit sets to "everything" and shrink to stability.
        let all: HashSet<BlockId> = (0..n).map(|b| BlockId(b as u32)).collect();
        let mut pdoms: Vec<HashSet<BlockId>> = (0..n)
            .map(|b| {
                let me = BlockId(b as u32);
                if succs[b].is_empty() || !reaches_exit[b] {
                    HashSet::from([me])
                } else {
                    all.clone()
                }
            })
            .collect();
        let mut changed = true;
        while changed {
            changed = false;
            for b in 0..n {
                if succs[b].is_empty() || !reaches_exit[b] {
                    continue;
                }
                let mut inter: Option<HashSet<BlockId>> = None;
                for s in &succs[b] {
                    let si = s.0 as usize;
                    if !reaches_exit[si] {
                        continue;
                    }
                    inter = Some(match inter {
                        None => pdoms[si].clone(),
                        Some(acc) => acc.intersection(&pdoms[si]).copied().collect(),
                    });
                }
                let mut next = inter.unwrap_or_default();
                next.insert(BlockId(b as u32));
                if next != pdoms[b] {
                    pdoms[b] = next;
                    changed = true;
                }
            }
        }

        // Control dependence from the postdominator sets: X ∈ cd(B) for a
        // branch block B iff some successor s of B has X ∈ pdoms(s) while X
        // does not strictly postdominate B (X == B gives loop headers their
        // self-dependence).
        let mut control_deps: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for b in &f.blocks {
            if !matches!(b.term, Terminator::Branch { .. }) {
                continue;
            }
            let bi = b.id.0 as usize;
            for s in &succs[bi] {
                for x in &pdoms[s.0 as usize] {
                    let strictly_postdominates_b = *x != b.id && pdoms[bi].contains(x);
                    if !strictly_postdominates_b {
                        let slot = &mut control_deps[x.0 as usize];
                        if !slot.contains(&b.id) {
                            slot.push(b.id);
                        }
                    }
                }
            }
        }

        FlowGraph {
            succs,
            preds,
            reach,
            pdoms,
            control_deps,
        }
    }

    /// Can control reach `to` from `from` via at least one edge?
    pub fn reaches_nonempty(&self, from: BlockId, to: BlockId) -> bool {
        self.succs[from.0 as usize]
            .iter()
            .any(|s| self.reach[s.0 as usize].contains(&to))
    }
}

/// The re-derived dependency graph over SSA values.
pub struct VDeps {
    n: usize,
    edges: Vec<Vec<(ValueId, DepEdgeKind)>>,
    /// `closure[v]` = values reachable from `v` via ≥ 1 dependency edge.
    closure: Vec<HashSet<ValueId>>,
    in_loop: Vec<bool>,
    /// Block-level control dependence (shared with the boundary mirror).
    pub flow: FlowGraph,
}

impl VDeps {
    /// Re-derive all six §4.1 edge families for `prog`.
    pub fn build(prog: &Program) -> Self {
        let f = &prog.func;
        let n = f.insts.len();
        let flow = FlowGraph::build(f);

        let mut position = vec![(BlockId(0), 0usize); n];
        for (b, i, v) in f.iter_insts() {
            position[v.0 as usize] = (b, i);
        }
        let can_happen_after = |s2: ValueId, s1: ValueId| -> bool {
            let (b1, i1) = position[s1.0 as usize];
            let (b2, i2) = position[s2.0 as usize];
            if b1 == b2 {
                if i2 > i1 {
                    return true;
                }
                return flow.reaches_nonempty(b1, b2);
            }
            flow.reach[b1.0 as usize].contains(&b2)
        };

        let mut edges: Vec<Vec<(ValueId, DepEdgeKind)>> = vec![Vec::new(); n];
        let add = |edges: &mut Vec<Vec<(ValueId, DepEdgeKind)>>,
                   from: ValueId,
                   to: ValueId,
                   kind: DepEdgeKind| {
            let slot = &mut edges[from.0 as usize];
            if !slot.contains(&(to, kind)) {
                slot.push((to, kind));
            }
        };

        // (1) SSA use-def.
        for v in 0..n {
            let vid = ValueId(v as u32);
            for u in f.insts[v].op.uses() {
                add(&mut edges, u, vid, DepEdgeKind::Data);
            }
        }

        // (2)+(3) Location conflicts, including self-conflicts in loops.
        let reads: Vec<Vec<Loc>> = f.insts.iter().map(|i| i.op.reads()).collect();
        let writes: Vec<Vec<Loc>> = f.insts.iter().map(|i| i.op.writes()).collect();
        let overlaps =
            |a: &[Loc], b: &[Loc]| -> bool { a.iter().any(|la| b.iter().any(|lb| la == lb)) };
        for s1 in 0..n {
            for s2 in 0..n {
                let v1 = ValueId(s1 as u32);
                let v2 = ValueId(s2 as u32);
                if s1 == s2 {
                    // A statement self-conflicts exactly when it writes
                    // anything: writes ∩ writes ≠ ∅ reduces to "writes
                    // nonempty", and writes ∩ reads is then subsumed.
                    if !writes[s1].is_empty() && can_happen_after(v1, v1) {
                        add(&mut edges, v1, v1, DepEdgeKind::Data);
                    }
                    continue;
                }
                if !can_happen_after(v2, v1) {
                    continue;
                }
                if overlaps(&writes[s1], &reads[s2]) || overlaps(&writes[s1], &writes[s2]) {
                    add(&mut edges, v1, v2, DepEdgeKind::Data);
                }
                if overlaps(&reads[s1], &writes[s2]) {
                    add(&mut edges, v1, v2, DepEdgeKind::ReverseData);
                }
            }
        }

        // (4) Control: every instruction of a control-dependent block
        // depends on the branch condition.
        for b in &f.blocks {
            for &br_block in &flow.control_deps[b.id.0 as usize] {
                let Terminator::Branch { cond, .. } = &f.block(br_block).term else {
                    continue;
                };
                for &inst in &b.insts {
                    if inst != *cond {
                        add(&mut edges, *cond, inst, DepEdgeKind::Control);
                    }
                }
            }
        }

        // (5) Output commit: Send/Drop observes every state write that can
        // precede it (§4.3.3).
        for s in 0..n {
            if !matches!(f.insts[s].op, Op::Send | Op::Drop) {
                continue;
            }
            let send = ValueId(s as u32);
            for (w, wlocs) in writes.iter().enumerate() {
                if w == s {
                    continue;
                }
                let wid = ValueId(w as u32);
                let writes_state = wlocs.iter().any(|l| matches!(l, Loc::State(_)));
                if writes_state && can_happen_after(send, wid) {
                    add(&mut edges, wid, send, DepEdgeKind::Data);
                }
            }
        }

        // (6) φ steering: a branch that can reach the φ's block through two
        // or more different predecessors decides which incoming edge wins.
        for b in &f.blocks {
            for &v in &b.insts {
                if !matches!(f.inst(v).op, Op::Phi { .. }) {
                    continue;
                }
                for br in &f.blocks {
                    let Terminator::Branch { cond, .. } = &br.term else {
                        continue;
                    };
                    let preds_reached = flow.preds[b.id.0 as usize]
                        .iter()
                        .filter(|p| flow.reach[br.id.0 as usize].contains(p))
                        .count();
                    if preds_reached >= 2 {
                        add(&mut edges, *cond, v, DepEdgeKind::Control);
                    }
                }
            }
        }

        // ≥1-edge transitive closure by DFS from each value.
        let mut closure: Vec<HashSet<ValueId>> = Vec::with_capacity(n);
        for v in 0..n {
            let mut seen: HashSet<ValueId> = HashSet::new();
            let mut stack: Vec<ValueId> = edges[v].iter().map(|(t, _)| *t).collect();
            while let Some(cur) = stack.pop() {
                if seen.insert(cur) {
                    stack.extend(edges[cur.0 as usize].iter().map(|(t, _)| *t));
                }
            }
            closure.push(seen);
        }

        let mut in_loop = vec![false; n];
        for v in 0..n {
            let (b, _) = position[v];
            let vid = ValueId(v as u32);
            in_loop[v] = flow.reaches_nonempty(b, b) || closure[v].contains(&vid);
        }

        VDeps {
            n,
            edges,
            closure,
            in_loop,
            flow,
        }
    }

    /// Number of instructions covered.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for an empty program.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Direct dependency edges out of `from`.
    pub fn edges_out(&self, from: ValueId) -> &[(ValueId, DepEdgeKind)] {
        &self.edges[from.0 as usize]
    }

    /// `from ⇝* to` over at least one edge.
    pub fn depends_transitively(&self, from: ValueId, to: ValueId) -> bool {
        self.closure[from.0 as usize].contains(&to)
    }

    /// CFG-cycle or dependency-cycle membership (label rule 5).
    pub fn in_loop(&self, v: ValueId) -> bool {
        self.in_loop[v.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gallium_mir::{BinOp, FuncBuilder, HeaderField};

    fn branchy() -> Program {
        let mut b = FuncBuilder::new("t");
        let a = b.read_field(HeaderField::IpSaddr); // v0
        let z = b.cnst(0, 32); // v1
        let c = b.bin(BinOp::Eq, a, z); // v2
        let t = b.new_block();
        let e = b.new_block();
        b.branch(c, t, e);
        b.switch_to(t);
        b.write_field(HeaderField::IpDaddr, a); // v3
        b.send(); // v4
        b.ret();
        b.switch_to(e);
        b.drop_pkt(); // v5
        b.ret();
        b.finish().unwrap()
    }

    #[test]
    fn control_dependence_covers_both_arms() {
        let p = branchy();
        let d = VDeps::build(&p);
        for v in [3u32, 4, 5] {
            assert!(
                d.edges_out(ValueId(2))
                    .contains(&(ValueId(v), DepEdgeKind::Control)),
                "v{v} should control-depend on the branch condition"
            );
        }
        // Entry-block statements do not control-depend on their own branch.
        assert!(!d
            .edges_out(ValueId(2))
            .contains(&(ValueId(0), DepEdgeKind::Control)));
    }

    #[test]
    fn war_edge_between_read_and_write() {
        let p = branchy();
        let d = VDeps::build(&p);
        // v0 reads ip.saddr — no conflict; but v0's read of the header
        // region and v3's write of ip.daddr touch different fields, so no
        // edge. The send v4 reads all headers after v3 writes: Data v3→v4.
        assert!(d
            .edges_out(ValueId(3))
            .contains(&(ValueId(4), DepEdgeKind::Data)));
        assert!(d.depends_transitively(ValueId(0), ValueId(4)));
    }

    #[test]
    fn loop_membership_via_cfg_cycle() {
        let text = r#"
program loopy {
  b0:
    v0 = const 0 : u32
    jmp b1
  b1:
    v1 = phi [b0: v0, b2: v4]
    v2 = const 10 : u32
    v3 = lt v1, v2
    br v3, b2, b3
  b2:
    v4 = add v1, v2
    jmp b1
  b3:
    send
    ret
}
"#;
        let p = gallium_mir::parser::parse_program(text).unwrap();
        let d = VDeps::build(&p);
        for v in [1u32, 2, 3, 4] {
            assert!(d.in_loop(ValueId(v)), "v{v} is loop-resident");
        }
        assert!(!d.in_loop(ValueId(0)));
        assert!(!d.in_loop(ValueId(5)));
    }

    #[test]
    fn pdom_sets_are_reflexive_and_chain_shaped() {
        let p = branchy();
        let g = FlowGraph::build(&p.func);
        for b in 0..3usize {
            assert!(g.pdoms[b].contains(&BlockId(b as u32)));
        }
        // Neither arm postdominates the entry (they are alternatives).
        assert!(!g.pdoms[0].contains(&BlockId(1)));
        assert!(!g.pdoms[0].contains(&BlockId(2)));
    }
}
