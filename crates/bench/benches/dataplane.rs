//! Criterion microbenchmarks of the runtime halves: per-packet switch
//! processing (fast path), the server slow path, the reference (FastClick)
//! interpreter, and a state-sync control-plane batch.

use criterion::{criterion_group, criterion_main, Criterion};
use gallium_core::{compile, Deployment};
use gallium_middleboxes::minilb::minilb;
use gallium_net::{FiveTuple, IpProtocol, PacketBuilder, PortId, TcpFlags};
use gallium_p4::ControlPlaneOp;
use gallium_partition::SwitchModel;
use gallium_server::{CostModel, ReferenceServer};
use gallium_switchsim::ControlPlane;

fn deployment() -> (Deployment, gallium_mir::StateId) {
    let lb = minilb();
    let compiled = compile(&lb.prog, &SwitchModel::tofino_like()).unwrap();
    let mut d = Deployment::new(
        &compiled,
        gallium_switchsim::SwitchConfig::default(),
        CostModel::calibrated(),
    )
    .unwrap();
    let backends = lb.backends;
    d.configure(|s| {
        s.vec_set_all(backends, vec![1, 2, 3, 4]).unwrap();
    })
    .unwrap();
    (d, backends)
}

fn pkt(saddr: u32, flags: u8) -> gallium_net::Packet {
    PacketBuilder::tcp(
        FiveTuple {
            saddr,
            daddr: 0x0A0000FE,
            sport: 1234,
            dport: 80,
            proto: IpProtocol::Tcp,
        },
        TcpFlags(flags),
        200,
    )
    .build(PortId(1))
}

fn bench_fast_path(c: &mut Criterion) {
    let (mut d, _) = deployment();
    // Warm the connection so the packet stays on the switch.
    d.inject(pkt(7, TcpFlags::SYN)).unwrap();
    c.bench_function("switch_fast_path_packet", |b| {
        b.iter(|| {
            d.inject(std::hint::black_box(pkt(7, TcpFlags::ACK)))
                .unwrap()
        });
    });
}

fn bench_slow_path(c: &mut Criterion) {
    let (mut d, _) = deployment();
    let mut s = 100u32;
    c.bench_function("slow_path_packet_with_sync", |b| {
        b.iter(|| {
            s = s.wrapping_add(1); // a fresh flow every iteration
            d.inject(std::hint::black_box(pkt(s, TcpFlags::SYN)))
                .unwrap()
        });
    });
}

fn bench_reference(c: &mut Criterion) {
    let lb = minilb();
    let mut reference = ReferenceServer::new(lb.prog.clone(), CostModel::calibrated());
    reference
        .store
        .vec_set_all(lb.backends, vec![1, 2, 3, 4])
        .unwrap();
    c.bench_function("reference_interpreter_packet", |b| {
        b.iter(|| {
            reference
                .process(std::hint::black_box(pkt(7, TcpFlags::ACK)), 0)
                .unwrap()
        });
    });
}

fn bench_sync_batch(c: &mut Criterion) {
    let (mut d, _) = deployment();
    let mut k = 0u64;
    c.bench_function("control_plane_writeback_batch", |b| {
        b.iter(|| {
            k += 1;
            let ops = vec![
                ControlPlaneOp::WriteBackStage {
                    table: "map".into(),
                    key: vec![k & 0xFFFF],
                    value: Some(vec![9]),
                },
                ControlPlaneOp::SetWriteBackBit(true),
                ControlPlaneOp::TableInsert {
                    table: "map".into(),
                    key: vec![k & 0xFFFF],
                    value: vec![9],
                },
                ControlPlaneOp::SetWriteBackBit(false),
                ControlPlaneOp::WriteBackClear {
                    table: "map".into(),
                },
            ];
            d.switch.control_batch(&ops).unwrap()
        });
    });
}

fn bench_parallel_reference(c: &mut Criterion) {
    use gallium_server::ParallelReference;
    let mut g = c.benchmark_group("parallel_reference_1k_pkts");
    for cores in [1usize, 2, 4] {
        g.bench_function(format!("{cores}_shards"), |b| {
            b.iter(|| {
                let lb = minilb();
                let backends = lb.backends;
                let par =
                    ParallelReference::spawn(&lb.prog, cores, CostModel::calibrated(), move |s| {
                        s.vec_set_all(backends, vec![1, 2, 3, 4]).unwrap();
                    });
                for i in 0..1000u32 {
                    par.feed(pkt(i % 97, TcpFlags::ACK));
                }
                std::hint::black_box(par.finish())
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_fast_path,
    bench_slow_path,
    bench_reference,
    bench_sync_batch,
    bench_parallel_reference
);
criterion_main!(benches);
