//! Criterion microbenchmarks of the compiler passes: dependency
//! extraction (§4.1), the label-removing algorithm (§4.2.1), and the full
//! compile pipeline — per middlebox, so regressions in any pass are
//! attributable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gallium_analysis::DepGraph;
use gallium_core::compile;
use gallium_middleboxes::all_evaluated;
use gallium_partition::{initial_labels, partition_program, run_label_rules, SwitchModel};

fn bench_dependency_extraction(c: &mut Criterion) {
    let mut g = c.benchmark_group("dependency_extraction");
    for (name, prog) in all_evaluated() {
        g.bench_with_input(BenchmarkId::from_parameter(name), &prog, |b, prog| {
            b.iter(|| DepGraph::build(std::hint::black_box(prog)));
        });
    }
    g.finish();
}

fn bench_label_rules(c: &mut Criterion) {
    let mut g = c.benchmark_group("label_removing");
    for (name, prog) in all_evaluated() {
        let dep = DepGraph::build(&prog);
        g.bench_with_input(BenchmarkId::from_parameter(name), &prog, |b, prog| {
            b.iter(|| {
                let mut labels = initial_labels(prog);
                run_label_rules(prog, &dep, &mut labels);
                std::hint::black_box(labels)
            });
        });
    }
    g.finish();
}

fn bench_partition(c: &mut Criterion) {
    let mut g = c.benchmark_group("partition");
    let model = SwitchModel::tofino_like();
    for (name, prog) in all_evaluated() {
        g.bench_with_input(BenchmarkId::from_parameter(name), &prog, |b, prog| {
            b.iter(|| partition_program(std::hint::black_box(prog), &model).unwrap());
        });
    }
    g.finish();
}

fn bench_compile_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile_end_to_end");
    let model = SwitchModel::tofino_like();
    for (name, prog) in all_evaluated() {
        g.bench_with_input(BenchmarkId::from_parameter(name), &prog, |b, prog| {
            b.iter(|| compile(std::hint::black_box(prog), &model).unwrap());
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_dependency_extraction,
    bench_label_rules,
    bench_partition,
    bench_compile_end_to_end
);
criterion_main!(benches);
