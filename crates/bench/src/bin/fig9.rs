//! Figure 9: "Flow completion time comparison of Gallium and FastClick on
//! the enterprise (E) and data-mining (D) workload", mean FCT per
//! flow-size bin (0-100K / 100K-10M / >10M bytes).

use gallium_bench::row;
use gallium_sim::{run_conga, FctBin, MbKind, Mode};
use gallium_workloads::CongaWorkload;

fn fmt_fct(ns: Option<f64>) -> String {
    match ns {
        Some(v) => format!("{:.0}", v / 1000.0), // µs
        None => "-".into(),
    }
}

fn main() {
    let n_flows: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6_000);
    println!("Mean flow completion time in µs ({n_flows} flows per run).");
    for kind in MbKind::ALL {
        println!("=== {} ===", kind.name());
        let profile = gallium_sim::profile::profile_middlebox(kind, 1500);
        let widths = [16usize, 12, 12, 12];
        let mut header = vec!["Series".to_string()];
        header.extend(FctBin::ALL.iter().map(|b| b.label().to_string()));
        println!("{}", row(&header, &widths));
        for (workload, tag) in [
            (CongaWorkload::Enterprise, "E"),
            (CongaWorkload::DataMining, "D"),
        ] {
            for (mode, label) in [
                (Mode::Click { cores: 4 }, format!("Click({tag})")),
                (Mode::Offloaded, format!("Offloaded({tag})")),
            ] {
                let m = run_conga(profile, mode, workload, n_flows, 42);
                let bins = m.mean_fct_by_bin();
                let cells: Vec<String> = std::iter::once(label)
                    .chain(bins.iter().map(|(_, v)| fmt_fct(*v)))
                    .collect();
                println!("{}", row(&cells, &widths));
            }
        }
        println!();
    }
    println!("Paper shape: the FCT reduction is concentrated on the long flows");
    println!("(their packets are switch-handled); short flows are comparable.");
}
