//! Ablation for §7 "Cost model of offloading": the paper's partitioner
//! maximizes the *number* of offloaded statements; §7 observes that a
//! cycle-weighted objective ("offloading a table lookup … provides more
//! performance benefits than offloading an integer addition") could do
//! better. This binary quantifies the gap: for each middlebox it reports
//! the offloaded statement count next to the offloaded *cycle weight*
//! (per the server cost model), for the actual partition.

use gallium_bench::row;
use gallium_core::compile;
use gallium_middleboxes::all_evaluated;
use gallium_mir::ValueId;
use gallium_partition::SwitchModel;
use gallium_server::CostModel;

fn main() {
    let model = SwitchModel::tofino_like();
    let cost = CostModel::calibrated();
    let widths = [16usize, 12, 14, 14, 14];
    println!(
        "{}",
        row(
            &[
                "Middlebox".into(),
                "Offloaded".into(),
                "Inst-weight".into(),
                "Cycle-weight".into(),
                "LookupsOff".into(),
            ],
            &widths
        )
    );
    for (name, prog) in all_evaluated() {
        let c = compile(&prog, &model).unwrap();
        let total = prog.func.len();
        let mut off_cycles = 0u64;
        let mut all_cycles = 0u64;
        let mut lookups_off = 0usize;
        let mut lookups_all = 0usize;
        for i in 0..total {
            let v = ValueId(i as u32);
            let w = cost.op_cycles(&prog.func.inst(v).op);
            all_cycles += w;
            let offloaded = c.staged.partition_of(v).on_switch();
            if offloaded {
                off_cycles += w;
            }
            if matches!(prog.func.inst(v).op, gallium_mir::Op::MapGet { .. }) {
                lookups_all += 1;
                if offloaded {
                    lookups_off += 1;
                }
            }
        }
        println!(
            "{}",
            row(
                &[
                    name.to_string(),
                    format!("{}/{}", c.staged.offloaded_count(), total),
                    format!(
                        "{:.0}%",
                        100.0 * c.staged.offloaded_count() as f64 / total as f64
                    ),
                    format!("{:.0}%", 100.0 * off_cycles as f64 / all_cycles as f64),
                    format!("{lookups_off}/{lookups_all}"),
                ],
                &widths
            )
        );
    }
    println!();
    println!("Observation (§7): the count-maximizing objective already offloads");
    println!("every table lookup in the five evaluated middleboxes, so the");
    println!("cycle-weighted objective would produce the same partitions here —");
    println!("the gap §7 worries about does not materialize on this workload set.");
}
