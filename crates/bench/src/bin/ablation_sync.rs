//! Ablation: the §4.3.3 atomic-update protocol vs naive immediate writes.
//!
//! A causal probe: packet `p_i` opens a connection through the middlebox
//! (updating replicated state) and packet `p_j` — causally dependent on
//! `p_i`'s *receipt* — probes the switch. Under the write-back protocol
//! with output commit, `p_j` always observes the update. Under a naive
//! scheme that releases the packet before the switch is updated, `p_j`
//! races the control plane and observes torn state: for MazuNAT, the
//! SYN-ACK from the external network is dropped.

use gallium_core::{compile, Deployment};
use gallium_middleboxes::{mazunat, EXTERNAL_PORT, INTERNAL_PORT};
use gallium_net::{FiveTuple, IpProtocol, PacketBuilder, PortId, TcpFlags};
use gallium_partition::SwitchModel;
use gallium_server::CostModel;
use gallium_switchsim::SwitchConfig;

fn main() {
    let nat = mazunat::mazunat();
    let compiled = compile(&nat.prog, &SwitchModel::tofino_like()).unwrap();

    let trials = 200u32;
    let mut committed_ok = 0u32;
    let mut naive_ok = 0u32;

    for i in 0..trials {
        let t = FiveTuple {
            saddr: 0x0A000001 + (i % 50),
            daddr: 0x08080808,
            sport: 30_000 + (i % 1000) as u16,
            dport: 443,
            proto: IpProtocol::Tcp,
        };
        let syn = PacketBuilder::tcp(t, TcpFlags(TcpFlags::SYN), 100).build(PortId(INTERNAL_PORT));
        let reply_tuple = FiveTuple {
            saddr: 0x08080808,
            daddr: mazunat::NAT_EXTERNAL_IP,
            sport: 443,
            dport: mazunat::NAT_PORT_BASE + i as u16,
            proto: IpProtocol::Tcp,
        };
        let synack = PacketBuilder::tcp(reply_tuple, TcpFlags(TcpFlags::SYN | TcpFlags::ACK), 100)
            .build(PortId(EXTERNAL_PORT));

        // --- with the full protocol (Deployment applies sync before
        // releasing the packet) -----------------------------------------
        let mut d =
            Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated()).unwrap();
        for j in 0..=i {
            // Re-open the first i connections so port allocation lines up.
            let tj = FiveTuple {
                saddr: 0x0A000001 + (j % 50),
                sport: 30_000 + (j % 1000) as u16,
                ..t
            };
            let s =
                PacketBuilder::tcp(tj, TcpFlags(TcpFlags::SYN), 100).build(PortId(INTERNAL_PORT));
            d.inject(s).unwrap();
        }
        let out = d.inject(synack.clone()).unwrap();
        if !out.is_empty() {
            committed_ok += 1;
        }

        // --- naive: drop the sync ops on the floor (simulating release
        // before the control plane finished) -----------------------------
        let mut sw =
            gallium_switchsim::Switch::load(compiled.p4.clone(), SwitchConfig::default()).unwrap();
        // The switch never learns the mapping: the pre traversal of the
        // SYN allocates a port but the server's inserts are "in flight".
        let _ = sw.process(syn);
        let out = sw.process(synack);
        // Any emission that is not a drop means the reply got through.
        let delivered = out.iter().any(|(p, _)| *p != PortId::SERVER);
        if delivered {
            naive_ok += 1;
        }
    }

    println!("causal probe: SYN-ACK observes the NAT mapping installed by its SYN");
    println!("  write-back + output commit : {committed_ok}/{trials} replies delivered");
    println!("  naive (no sync before release): {naive_ok}/{trials} replies delivered");
    println!();
    println!("Run-to-completion (§3.1) requires the first row to be total and");
    println!("tolerates nothing less; the naive scheme drops every causally");
    println!("dependent reply that races the control plane.");
}
