//! Table 1: "Comparison of lines of code for Click-based middleboxes
//! before and after Gallium compiles them."
//!
//! The paper counts C++ source lines of the Click middleboxes (1 687 for
//! MazuNAT, …) against the generated P4 and residual C++ listings. Our
//! inputs are MIR programs, so absolute line counts differ by
//! construction; the *shape* to check is that the input splits into a
//! substantive P4 program plus a smaller server remainder, and the
//! offloaded instruction fraction matches §6.2's qualitative description
//! (firewall/proxy fully offloaded; NAT/LB/trojan mostly offloaded with a
//! server slow path).

use gallium_bench::{emit_snapshot, row};
use gallium_core::compile;
use gallium_middleboxes::all_evaluated;
use gallium_mir::printer::print_program;
use gallium_partition::SwitchModel;

fn main() {
    let widths = [16usize, 12, 12, 12, 12, 10];
    println!(
        "{}",
        row(
            &[
                "Middlebox".into(),
                "Input(MIR)".into(),
                "Input(inst)".into(),
                "Out(P4)".into(),
                "Out(C++)".into(),
                "Offloaded".into(),
            ],
            &widths
        )
    );
    for (name, prog) in all_evaluated() {
        let compiled = compile(&prog, &SwitchModel::tofino_like()).expect("compiles");
        let input_lines = print_program(&prog)
            .lines()
            .filter(|l| !l.trim().is_empty())
            .count();
        let offloaded = format!("{}/{}", compiled.staged.offloaded_count(), prog.func.len());
        println!(
            "{}",
            row(
                &[
                    name.to_string(),
                    input_lines.to_string(),
                    prog.func.len().to_string(),
                    compiled.p4_loc().to_string(),
                    compiled.server_loc().to_string(),
                    offloaded,
                ],
                &widths
            )
        );
    }
    println!();
    println!("Paper Table 1 (C++/P4 source lines, for reference):");
    println!("  MazuNAT 1687 -> 516 P4 + 579 C++ ; LB 1447 -> 522 + 602 ;");
    println!("  Firewall 1151 -> 506 + 403 ; Proxy 953 -> 292 + 279 ;");
    println!("  Trojan 882 -> 571 + 418");
    println!();
    // Compiler telemetry accumulated across the five compiles above: pass
    // timings, partition decisions, and constraint-rejection counts.
    emit_snapshot(&gallium_telemetry::global().snapshot());
}
