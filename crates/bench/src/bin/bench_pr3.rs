//! `BENCH_pr3.json` — the compiled-plan dataplane vs the AST interpreter.
//!
//! PR 3 lowers the loaded P4 program into a flat execution plan at load
//! time ([`gallium_switchsim::ExecPlan`]) and makes it the default packet
//! path. This bin is the proof obligation that comes with that change:
//!
//! 1. **Differential suite** — every packaged middlebox (MazuNAT, LB,
//!    firewall, proxy, trojan detector, MiniLB) is deployed twice — once
//!    on the compiled plan, once on the reference AST interpreter — and
//!    driven with an identical pseudo-random packet stream. Emissions
//!    (egress port + exact bytes), deployment/switch/server counters, and
//!    the final authoritative state stores must all be identical. A
//!    cache-mode deployment (4-entry FIFO cache under eviction thrash)
//!    runs the same check over the §7 replay path.
//! 2. **Fast path** — ns/pkt of a warm MazuNAT flow through
//!    `Deployment::inject` on both engines, reported against the PR 2
//!    baseline of 2064 ns/pkt (BENCH_pr2.json, pre-plan interpreter).
//! 3. **Batch API** — ns/pkt of `Switch::process_batch` and
//!    `ReferenceServer::process_batch` against their one-packet-at-a-time
//!    equivalents.
//!
//! The process-global telemetry snapshot (which includes the
//! `gallium.switchsim.plan.*` build-time histograms recorded by every
//! `Switch::load`) is embedded under `"telemetry"`.
//!
//! Usage: `bench_pr3 [--quick] [OUT_PATH]`. `--quick` shrinks stream
//! lengths and timing iterations for CI smoke runs; the differential
//! checks still run in full for every middlebox. Exits non-zero if any
//! differential check fails.

use gallium_core::{compile, Deployment};
use gallium_middleboxes::{firewall, lb, mazunat, minilb, proxy, trojan};
use gallium_middleboxes::{EXTERNAL_PORT, INTERNAL_PORT};
use gallium_mir::{Program, StateStore};
use gallium_net::{FiveTuple, IpProtocol, Packet, PacketBuilder, PortId, TcpFlags};
use gallium_partition::SwitchModel;
use gallium_server::{CostModel, ReferenceServer};
use gallium_switchsim::SwitchConfig;
use gallium_telemetry::json_escape;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// The PR 2 fast-path baseline this PR is measured against (ns/pkt for a
/// warm MazuNAT-style flow through the pre-plan interpreter, from
/// BENCH_pr2.json / the `switch_fast_path_packet` criterion bench).
const PR2_BASELINE_NS_PER_PKT: f64 = 2064.0;

/// Deterministic splitmix-style generator so both engines (and every CI
/// run) see byte-identical traffic.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A pseudo-random mixed stream that exercises every packaged middlebox:
/// repeated flows (fast-path hits), fresh flows (slow path / inserts),
/// FIN teardowns (LB GC), the trojan stage ports (SSH/FTP/IRC), the proxy
/// intercept port, both switch-facing networks, and periodic probes of the
/// NAT's external mapping range.
fn traffic(n: usize) -> Vec<Packet> {
    let mut r = Rng(7);
    let dports = [22u16, 21, 80, 80, 443, 6667, 3128];
    (0..n)
        .map(|i| {
            let x = r.next();
            if i % 7 == 3 {
                // Probe the NAT external range (hits established mappings
                // once the NAT has allocated ports; a miss otherwise).
                return PacketBuilder::tcp(
                    FiveTuple {
                        saddr: 0x0808_0404,
                        daddr: mazunat::NAT_EXTERNAL_IP,
                        sport: 443,
                        dport: mazunat::NAT_PORT_BASE + (x % 64) as u16,
                        proto: IpProtocol::Tcp,
                    },
                    TcpFlags(TcpFlags::ACK),
                    200,
                )
                .build(PortId(EXTERNAL_PORT));
            }
            let flags = match x % 5 {
                0 => TcpFlags::SYN,
                4 => TcpFlags::FIN | TcpFlags::ACK,
                _ => TcpFlags::ACK,
            };
            let ingress = if x & 0x10 == 0 {
                INTERNAL_PORT
            } else {
                EXTERNAL_PORT
            };
            PacketBuilder::tcp(
                FiveTuple {
                    saddr: 0x0A00_0000 + (x % 23) as u32,
                    daddr: 0x0B00_0000 + ((x >> 8) % 11) as u32,
                    sport: 1024 + ((x >> 16) % 13) as u16,
                    dport: dports[(x >> 24) as usize % dports.len()],
                    proto: IpProtocol::Tcp,
                },
                TcpFlags(flags),
                64 + (x % 400) as usize,
            )
            .build(PortId(ingress))
        })
        .collect()
}

/// Outcome of one plan-vs-interpreter differential run.
struct DiffResult {
    name: String,
    packets: usize,
    emissions: usize,
    ok: bool,
    detail: String,
}

/// Drive `pkts` through two deployments and compare everything observable.
fn compare_deployments(
    name: &str,
    mut plan: Deployment,
    mut interp: Deployment,
    configure: &dyn Fn(&mut StateStore),
    pkts: &[Packet],
) -> DiffResult {
    let mut res = DiffResult {
        name: name.to_string(),
        packets: pkts.len(),
        emissions: 0,
        ok: true,
        detail: String::new(),
    };
    let fail = |res: &mut DiffResult, msg: String| {
        if res.ok {
            res.ok = false;
            res.detail = msg;
        }
    };
    plan.configure(|s| configure(s)).expect("configure plan");
    interp
        .configure(|s| configure(s))
        .expect("configure interp");
    assert!(plan.switch.uses_plan() && !interp.switch.uses_plan());

    for (i, p) in pkts.iter().enumerate() {
        let a = plan.inject(p.clone());
        let b = interp.inject(p.clone());
        match (a, b) {
            (Ok(a), Ok(b)) => {
                if a.len() != b.len() {
                    fail(
                        &mut res,
                        format!("pkt {i}: {} vs {} emissions", a.len(), b.len()),
                    );
                    break;
                }
                for (j, ((pa, fa), (pb, fb))) in a.iter().zip(&b).enumerate() {
                    if pa != pb {
                        fail(
                            &mut res,
                            format!("pkt {i} emission {j}: port {pa:?} vs {pb:?}"),
                        );
                    }
                    if fa.bytes() != fb.bytes() {
                        fail(&mut res, format!("pkt {i} emission {j}: bytes diverge"));
                    }
                }
                res.emissions += a.len();
            }
            (Err(ea), Err(eb)) => {
                if format!("{ea}") != format!("{eb}") {
                    fail(&mut res, format!("pkt {i}: errors diverge: {ea} vs {eb}"));
                }
            }
            (a, b) => {
                fail(
                    &mut res,
                    format!(
                        "pkt {i}: one engine errored: {:?} vs {:?}",
                        a.is_ok(),
                        b.is_ok()
                    ),
                );
                break;
            }
        }
        if !res.ok {
            break;
        }
    }
    if res.ok {
        if plan.stats != interp.stats {
            fail(
                &mut res,
                format!(
                    "deployment stats diverge: {:?} vs {:?}",
                    plan.stats, interp.stats
                ),
            );
        }
        if plan.switch.stats != interp.switch.stats {
            fail(
                &mut res,
                format!(
                    "switch stats diverge: {:?} vs {:?}",
                    plan.switch.stats, interp.switch.stats
                ),
            );
        }
        if plan.server.stats != interp.server.stats {
            fail(&mut res, "server stats diverge".to_string());
        }
        if plan.server.store != interp.server.store {
            fail(&mut res, "authoritative state stores diverge".to_string());
        }
        if plan.switch.drain_evictions() != interp.switch.drain_evictions() {
            fail(&mut res, "cache evictions diverge".to_string());
        }
        if !plan.replicated_consistent() || !interp.replicated_consistent() {
            fail(&mut res, "replicated state inconsistent".to_string());
        }
    }
    res
}

/// Plan-vs-interpreter differential for one middlebox program.
fn differential(
    name: &str,
    prog: &Program,
    configure: &dyn Fn(&mut StateStore),
    pkts: &[Packet],
) -> DiffResult {
    let compiled = compile(prog, &SwitchModel::tofino_like()).expect("compiles");
    let plan =
        Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated()).unwrap();
    let interp =
        Deployment::new_interpreter(&compiled, SwitchConfig::default(), CostModel::calibrated())
            .unwrap();
    compare_deployments(name, plan, interp, configure, pkts)
}

/// Cache-mode differential: 4-entry FIFO cache on the LB connection table,
/// small enough that the stream thrashes it (evictions + §7 replays).
fn differential_cached(pkts: &[Packet]) -> DiffResult {
    let lb = lb::load_balancer();
    let compiled = compile(&lb.prog, &SwitchModel::tofino_like()).expect("compiles");
    let caches = [(lb.conn, 4usize)];
    let plan = Deployment::new_cached(
        &compiled,
        SwitchConfig::default(),
        CostModel::calibrated(),
        &caches,
    )
    .unwrap();
    let interp = Deployment::new_cached_interpreter(
        &compiled,
        SwitchConfig::default(),
        CostModel::calibrated(),
        &caches,
    )
    .unwrap();
    let backends = lb.backends;
    let configure = move |s: &mut StateStore| {
        s.vec_set_all(backends, vec![0xC0A8_0001, 0xC0A8_0002, 0xC0A8_0003])
            .unwrap();
    };
    let mut res = compare_deployments("LB cached(4)", plan, interp, &configure, pkts);
    if res.ok && res.emissions == 0 {
        res.ok = false;
        res.detail = "cache differential saw no emissions".to_string();
    }
    res
}

/// A MazuNAT deployment with one warm outbound flow; returns the
/// deployment plus an ACK packet of that flow (a pure fast-path probe).
fn warm_nat(use_plan: bool) -> (Deployment, Packet) {
    let nat = mazunat::mazunat();
    let compiled = compile(&nat.prog, &SwitchModel::tofino_like()).unwrap();
    let mut d = if use_plan {
        Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated()).unwrap()
    } else {
        Deployment::new_interpreter(&compiled, SwitchConfig::default(), CostModel::calibrated())
            .unwrap()
    };
    let t = FiveTuple {
        saddr: 0x0A00_0009,
        daddr: 0x0808_0404,
        sport: 50_123,
        dport: 443,
        proto: IpProtocol::Tcp,
    };
    let syn = PacketBuilder::tcp(t, TcpFlags(TcpFlags::SYN), 200).build(PortId(INTERNAL_PORT));
    d.inject(syn).unwrap();
    let probe = PacketBuilder::tcp(t, TcpFlags(TcpFlags::ACK), 200).build(PortId(INTERNAL_PORT));
    // Prove the probe is fast-path before timing it.
    let before = d.stats.slow_path;
    d.inject(probe.clone()).unwrap();
    assert_eq!(d.stats.slow_path, before, "probe must stay on the switch");
    (d, probe)
}

/// Median ns/pkt over `trials` timed loops of `iters` injections.
fn time_fast_path(d: &mut Deployment, probe: &Packet, iters: u64, trials: usize) -> f64 {
    let mut runs: Vec<u64> = (0..trials)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(d.inject(black_box(probe.clone())).unwrap());
            }
            t0.elapsed().as_nanos() as u64 / iters
        })
        .collect();
    runs.sort_unstable();
    runs[runs.len() / 2] as f64
}

fn main() {
    let mut quick = false;
    let mut out_path: Option<String> = None;
    for a in std::env::args().skip(1) {
        if a == "--quick" {
            quick = true;
        } else {
            out_path = Some(a);
        }
    }
    let out_path = out_path.unwrap_or_else(|| "BENCH_pr3.json".to_string());
    let stream_len = if quick { 600 } else { 2_000 };
    let iters: u64 = if quick { 5_000 } else { 50_000 };
    let trials = if quick { 3 } else { 5 };

    // ---- 1. Differential suite ------------------------------------------
    let pkts = traffic(stream_len);
    let mut results: Vec<DiffResult> = Vec::new();

    let nat = mazunat::mazunat();
    results.push(differential("MazuNAT", &nat.prog, &|_| {}, &pkts));

    let l = lb::load_balancer();
    let lb_backends = l.backends;
    results.push(differential(
        "Load Balancer",
        &l.prog,
        &move |s: &mut StateStore| {
            s.vec_set_all(lb_backends, vec![0xC0A8_0001, 0xC0A8_0002, 0xC0A8_0003])
                .unwrap();
        },
        &pkts,
    ));

    let fw = firewall::firewall();
    let fw_cfg = fw.clone();
    results.push(differential(
        "Firewall",
        &fw.prog,
        &move |s: &mut StateStore| {
            // Whitelist a slice of the generator's flow space so the
            // stream mixes hits with drops.
            for saddr in 0..8u32 {
                for daddr in 0..11u32 {
                    for sport in 0..13u16 {
                        fw_cfg.allow(
                            s,
                            &FiveTuple {
                                saddr: 0x0A00_0000 + saddr,
                                daddr: 0x0B00_0000 + daddr,
                                sport: 1024 + sport,
                                dport: 80,
                                proto: IpProtocol::Tcp,
                            },
                        );
                    }
                }
            }
        },
        &pkts,
    ));

    let px = proxy::proxy(0x0A09_0909, 3128);
    let px_cfg = px.clone();
    results.push(differential(
        "Proxy",
        &px.prog,
        &move |s: &mut StateStore| px_cfg.intercept(s, 80),
        &pkts,
    ));

    let tr = trojan::trojan_detector();
    results.push(differential("Trojan Detector", &tr.prog, &|_| {}, &pkts));

    let ml = minilb::minilb();
    let ml_backends = ml.backends;
    results.push(differential(
        "MiniLB",
        &ml.prog,
        &move |s: &mut StateStore| {
            s.vec_set_all(ml_backends, vec![0xC0A8_0001, 0xC0A8_0002])
                .unwrap();
        },
        &pkts,
    ));

    results.push(differential_cached(&pkts));

    let all_ok = results.iter().all(|r| r.ok);
    for r in &results {
        if r.ok {
            println!(
                "differential {}: OK ({} pkts, {} emissions)",
                r.name, r.packets, r.emissions
            );
        } else {
            eprintln!("differential {}: FAILED — {}", r.name, r.detail);
        }
    }

    // ---- 2. MazuNAT fast path: plan vs interpreter ----------------------
    let (mut d_plan, probe) = warm_nat(true);
    let (mut d_interp, probe_i) = warm_nat(false);
    let plan_ns = time_fast_path(&mut d_plan, &probe, iters, trials);
    let interp_ns = time_fast_path(&mut d_interp, &probe_i, iters, trials);
    let speedup = interp_ns / plan_ns;
    let speedup_vs_pr2 = PR2_BASELINE_NS_PER_PKT / plan_ns;
    println!(
        "fast path mazunat: plan {plan_ns:.0} ns/pkt, interpreter {interp_ns:.0} ns/pkt \
         ({speedup:.2}x), vs PR2 baseline {PR2_BASELINE_NS_PER_PKT:.0} ns/pkt \
         ({speedup_vs_pr2:.2}x)"
    );

    // ---- 3. Batch APIs ---------------------------------------------------
    const BURST: usize = 64;
    let burst: Vec<Packet> = (0..BURST).map(|_| probe.clone()).collect();
    let mut out = Vec::with_capacity(BURST);
    let batch_iters = (iters as usize / BURST).max(8);
    let switch_single_ns = {
        let t0 = Instant::now();
        for _ in 0..batch_iters {
            for p in &burst {
                black_box(d_plan.switch.process(black_box(p.clone())));
            }
        }
        t0.elapsed().as_nanos() as f64 / (batch_iters * BURST) as f64
    };
    let switch_batch_ns = {
        let t0 = Instant::now();
        for _ in 0..batch_iters {
            out.clear();
            d_plan.switch.process_batch(burst.iter().cloned(), &mut out);
            black_box(out.len());
        }
        t0.elapsed().as_nanos() as f64 / (batch_iters * BURST) as f64
    };

    let mk_ref = || {
        let ml = minilb::minilb();
        let mut r = ReferenceServer::new(ml.prog.clone(), CostModel::calibrated());
        r.store.vec_set_all(ml.backends, vec![1, 2, 3, 4]).unwrap();
        r
    };
    let ref_probe = PacketBuilder::tcp(
        FiveTuple {
            saddr: 7,
            daddr: 0x0A00_00FE,
            sport: 1234,
            dport: 80,
            proto: IpProtocol::Tcp,
        },
        TcpFlags(TcpFlags::ACK),
        200,
    )
    .build(PortId(1));
    let ref_burst: Vec<Packet> = (0..BURST).map(|_| ref_probe.clone()).collect();
    let mut r1 = mk_ref();
    let ref_single_ns = {
        let t0 = Instant::now();
        for _ in 0..batch_iters {
            for p in &ref_burst {
                black_box(r1.process(black_box(p.clone()), 0).unwrap());
            }
        }
        t0.elapsed().as_nanos() as f64 / (batch_iters * BURST) as f64
    };
    let mut r2 = mk_ref();
    let ref_batch_ns = {
        let t0 = Instant::now();
        for _ in 0..batch_iters {
            black_box(r2.process_batch(ref_burst.iter().cloned(), 0).unwrap());
        }
        t0.elapsed().as_nanos() as f64 / (batch_iters * BURST) as f64
    };
    println!(
        "batch: switch {switch_single_ns:.0} -> {switch_batch_ns:.0} ns/pkt, \
         reference {ref_single_ns:.0} -> {ref_batch_ns:.0} ns/pkt"
    );

    // ---- JSON -------------------------------------------------------------
    let mut json = String::new();
    let _ = writeln!(json, "{{\n  \"bench\": \"pr3\",\n  \"quick\": {quick},");
    json.push_str("  \"differential\": {");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "\n    {}: {{\"packets\": {}, \"emissions\": {}, \"ok\": {}{}}}",
            json_escape(&r.name),
            r.packets,
            r.emissions,
            r.ok,
            if r.ok {
                String::new()
            } else {
                format!(", \"detail\": {}", json_escape(&r.detail))
            }
        );
    }
    let _ = writeln!(json, "\n  }},\n  \"differential_ok\": {all_ok},");
    let _ = writeln!(
        json,
        "  \"fast_path\": {{\"middlebox\": \"mazunat\", \"iters\": {iters}, \
         \"plan_ns_per_pkt\": {plan_ns:.1}, \"interp_ns_per_pkt\": {interp_ns:.1}, \
         \"speedup\": {speedup:.3}, \"pr2_baseline_ns_per_pkt\": {PR2_BASELINE_NS_PER_PKT:.0}, \
         \"speedup_vs_pr2\": {speedup_vs_pr2:.3}}},"
    );
    let _ = writeln!(
        json,
        "  \"batch\": {{\"burst\": {BURST}, \
         \"switch_single_ns_per_pkt\": {switch_single_ns:.1}, \
         \"switch_batch_ns_per_pkt\": {switch_batch_ns:.1}, \
         \"reference_single_ns_per_pkt\": {ref_single_ns:.1}, \
         \"reference_batch_ns_per_pkt\": {ref_batch_ns:.1}}},"
    );
    json.push_str("  \"telemetry\": ");
    let snap = gallium_telemetry::global().snapshot();
    for line in snap.to_json().lines() {
        json.push_str(line);
        json.push('\n');
        json.push_str("  ");
    }
    while json.ends_with(' ') {
        json.pop();
    }
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_pr3.json");
    println!("wrote {out_path}");
    if !all_ok {
        eprintln!("differential suite FAILED");
        std::process::exit(1);
    }
}
