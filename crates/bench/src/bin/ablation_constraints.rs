//! Ablation: how the §4.2.2 resource constraints shape the partition.
//!
//! Sweeps the switch model's pipeline depth, memory, and transfer-header
//! budget and reports how many statements stay offloaded per middlebox —
//! the refinement loop's observable behaviour ("we can meet all of the
//! five constraints by moving more of the code to the non-offloaded
//! partition").

use gallium_bench::row;
use gallium_core::compile;
use gallium_middleboxes::all_evaluated;
use gallium_partition::SwitchModel;

fn offloaded_for(prog: &gallium_mir::Program, model: &SwitchModel) -> String {
    match compile(prog, model) {
        Ok(c) => format!("{}/{}", c.staged.offloaded_count(), prog.func.len()),
        Err(e) => format!("err({e})"),
    }
}

fn main() {
    let base = SwitchModel::tofino_like();

    println!("--- pipeline depth sweep (memory/metadata/header at Tofino defaults) ---");
    let depths = [2usize, 4, 8, 16];
    let widths = [16usize, 10, 10, 10, 10];
    let mut header = vec!["Middlebox".to_string()];
    header.extend(depths.iter().map(|d| format!("depth={d}")));
    println!("{}", row(&header, &widths));
    for (name, prog) in all_evaluated() {
        let mut cells = vec![name.to_string()];
        for d in depths {
            let model = SwitchModel {
                pipeline_depth: d,
                ..base
            };
            cells.push(offloaded_for(&prog, &model));
        }
        println!("{}", row(&cells, &widths));
    }

    println!();
    println!("--- switch memory sweep ---");
    let mems: [(usize, &str); 4] = [
        (64, "64b"),
        (1 << 20, "1Mb"),
        (8 << 20, "8Mb"),
        (base.memory_bits, "20MB"),
    ];
    let mut header = vec!["Middlebox".to_string()];
    header.extend(mems.iter().map(|(_, l)| format!("mem={l}")));
    println!("{}", row(&header, &widths));
    for (name, prog) in all_evaluated() {
        let mut cells = vec![name.to_string()];
        for (m, _) in mems {
            let model = SwitchModel {
                memory_bits: m,
                ..base
            };
            cells.push(offloaded_for(&prog, &model));
        }
        println!("{}", row(&cells, &widths));
    }

    println!();
    println!("--- transfer-header budget sweep (Constraint 5) ---");
    let budgets = [4usize, 8, 12, 20];
    let mut header = vec!["Middlebox".to_string()];
    header.extend(budgets.iter().map(|b| format!("hdr={b}B")));
    println!("{}", row(&header, &widths));
    for (name, prog) in all_evaluated() {
        let mut cells = vec![name.to_string()];
        for b in budgets {
            let model = SwitchModel {
                transfer_budget_bytes: b,
                ..base
            };
            cells.push(offloaded_for(&prog, &model));
        }
        println!("{}", row(&cells, &widths));
    }
}
