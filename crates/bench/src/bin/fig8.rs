//! Figure 8: "Throughput comparison of Gallium and FastClick on the
//! enterprise workload and the data-mining workload" — flows drawn from
//! the CONGA flow-size distributions, 100 closed-loop workers. Also prints
//! the slow-path packet fraction backing the §6.3 claim that "only 0.1% of
//! the packets in TCP flows are processed by the middlebox server."

use gallium_bench::{gbps, row};
use gallium_sim::{run_conga, MbKind, Mode};
use gallium_workloads::CongaWorkload;

fn main() {
    // Scaled from the paper's 100 000 flows to keep the run interactive;
    // pass a flow count as argv[1] to scale up.
    let n_flows: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6_000);
    let modes = [
        Mode::Offloaded,
        Mode::Click { cores: 4 },
        Mode::Click { cores: 2 },
        Mode::Click { cores: 1 },
    ];
    println!("({n_flows} flows per run; pass a count to scale)");
    for kind in MbKind::ALL {
        println!("=== {} ===", kind.name());
        let profile = gallium_sim::profile::profile_middlebox(kind, 1500);
        let widths = [12usize, 18, 18, 14];
        println!(
            "{}",
            row(
                &[
                    "Mode".into(),
                    "Enterprise(Gbps)".into(),
                    "DataMining(Gbps)".into(),
                    "SlowPath".into(),
                ],
                &widths
            )
        );
        for mode in modes {
            let ent = run_conga(profile, mode, CongaWorkload::Enterprise, n_flows, 42);
            let dm = run_conga(profile, mode, CongaWorkload::DataMining, n_flows, 43);
            let slow = match mode {
                Mode::Offloaded => format!("{:.3}%", 100.0 * ent.slow_path_fraction()),
                _ => "-".to_string(),
            };
            println!(
                "{}",
                row(
                    &[
                        mode.label(),
                        gbps(ent.throughput_gbps()),
                        gbps(dm.throughput_gbps()),
                        slow,
                    ],
                    &widths
                )
            );
        }
        println!();
    }
    println!("Paper shape: Offloaded(1c) gains 1-35% over Click-4c (enterprise)");
    println!("and 18-46% (data-mining); the data-mining advantage is larger");
    println!("because its long flows are longer.");
}
