//! `BENCH_pr10.json` — perfect-hash match tables + software-pipelined
//! batches.
//!
//! PR 10 gives every `RtTable` a read-optimized hash-and-displace layout
//! (single-probe exact-match lookups, control-plane mutations buffered in
//! a delta overlay and folded in by epoch-tracked rebuilds) and
//! software-pipelines the batch paths: a static prefetch projection of
//! the pre traversal builds packet n+1's probe key and touches its layout
//! slot while packet n resolves. This bin carries the proof obligations:
//!
//! 1. **Differential suite** — every packaged middlebox deployed on the
//!    compiled plan and on the reference AST interpreter, driven with the
//!    same pseudo-random stream, must agree on every observable
//!    (emissions, counters, state, evictions). A cache-mode run covers
//!    the §7 replay path, a batch row checks `inject_batch_into` ≡
//!    per-packet `inject` (the pipelined batch walk must not reorder or
//!    coalesce), and a fused ≡ unfused row drives the same stream through
//!    plans built with and without superinstruction fusion.
//! 2. **Fast path** — ns/pkt of a warm MazuNAT flow through
//!    `Deployment::inject`, reported against the PR 8 baseline of
//!    256 ns/pkt (BENCH_pr8.json), plus per-middlebox rows.
//! 3. **Batch throughput** — ns/pkt of the software-pipelined
//!    `inject_batch_into` draining pre-built bursts through one warm
//!    buffer, per middlebox, against the PR 8 batch baseline of
//!    210 ns/pkt, with the allocations-per-packet count observed by this
//!    process's counting global allocator (must be 0 on every warm
//!    drain — including every layout probe and prefetch).
//! 4. **Table telemetry** — the `gallium.switchsim.table.rebuilds` /
//!    `.probe` counters proving the timed lookups actually went through
//!    the perfect-hash layout, not the fallback map.
//!
//! Usage: `bench_pr10 [--quick] [OUT_PATH]`. `--quick` shrinks stream
//! lengths and timing iterations for CI smoke runs; the differential
//! checks still run in full. Exits non-zero if any differential check
//! fails or any warm batch drain allocates.

use gallium_core::{compile, CompiledMiddlebox, Deployment};
use gallium_middleboxes::{firewall, lb, mazunat, minilb, proxy, trojan};
use gallium_middleboxes::{EXTERNAL_PORT, INTERNAL_PORT};
use gallium_mir::{Program, StateStore};
use gallium_net::{FiveTuple, IpProtocol, Packet, PacketBuilder, PortId, TcpFlags};
use gallium_partition::SwitchModel;
use gallium_server::CostModel;
use gallium_switchsim::{ExecPlan, SwitchConfig};
use gallium_telemetry::json_escape;
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The PR 8 fast-path baseline this PR is measured against (ns/pkt for a
/// warm MazuNAT flow through the register-IR plan, from BENCH_pr8.json).
const PR8_BASELINE_NS_PER_PKT: f64 = 256.0;

/// The PR 8 warm batch baseline (ns/pkt through `inject_batch_into`
/// before batch software pipelining; best-of-trials was 209).
const PR8_BATCH_BASELINE_NS_PER_PKT: f64 = 210.0;

/// System allocator wrapper counting every allocation, so the zero-alloc
/// claim is measured in-process rather than asserted (frees are not
/// counted — dropping consumed packets is fine; *acquiring* memory on the
/// warm path is not).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Deterministic splitmix-style generator so both engines (and every CI
/// run) see byte-identical traffic.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The same mixed pseudo-random stream as `bench_pr3`/`bench_pr6`:
/// repeated flows, fresh flows, FIN teardowns, the trojan stage ports,
/// the proxy intercept port, both networks, and periodic NAT
/// external-range probes.
fn traffic(n: usize) -> Vec<Packet> {
    let mut r = Rng(7);
    let dports = [22u16, 21, 80, 80, 443, 6667, 3128];
    (0..n)
        .map(|i| {
            let x = r.next();
            if i % 7 == 3 {
                return PacketBuilder::tcp(
                    FiveTuple {
                        saddr: 0x0808_0404,
                        daddr: mazunat::NAT_EXTERNAL_IP,
                        sport: 443,
                        dport: mazunat::NAT_PORT_BASE + (x % 64) as u16,
                        proto: IpProtocol::Tcp,
                    },
                    TcpFlags(TcpFlags::ACK),
                    200,
                )
                .build(PortId(EXTERNAL_PORT));
            }
            let flags = match x % 5 {
                0 => TcpFlags::SYN,
                4 => TcpFlags::FIN | TcpFlags::ACK,
                _ => TcpFlags::ACK,
            };
            let ingress = if x & 0x10 == 0 {
                INTERNAL_PORT
            } else {
                EXTERNAL_PORT
            };
            PacketBuilder::tcp(
                FiveTuple {
                    saddr: 0x0A00_0000 + (x % 23) as u32,
                    daddr: 0x0B00_0000 + ((x >> 8) % 11) as u32,
                    sport: 1024 + ((x >> 16) % 13) as u16,
                    dport: dports[(x >> 24) as usize % dports.len()],
                    proto: IpProtocol::Tcp,
                },
                TcpFlags(flags),
                64 + (x % 400) as usize,
            )
            .build(PortId(ingress))
        })
        .collect()
}

/// Outcome of one differential run.
struct DiffResult {
    name: String,
    packets: usize,
    emissions: usize,
    ok: bool,
    detail: String,
}

/// Drive `pkts` through two deployments and compare everything observable.
fn compare_deployments(
    name: &str,
    mut plan: Deployment,
    mut interp: Deployment,
    configure: &dyn Fn(&mut StateStore),
    pkts: &[Packet],
) -> DiffResult {
    let mut res = DiffResult {
        name: name.to_string(),
        packets: pkts.len(),
        emissions: 0,
        ok: true,
        detail: String::new(),
    };
    let fail = |res: &mut DiffResult, msg: String| {
        if res.ok {
            res.ok = false;
            res.detail = msg;
        }
    };
    plan.configure(|s| configure(s)).expect("configure plan");
    interp
        .configure(|s| configure(s))
        .expect("configure interp");

    for (i, p) in pkts.iter().enumerate() {
        let a = plan.inject(p.clone());
        let b = interp.inject(p.clone());
        match (a, b) {
            (Ok(a), Ok(b)) => {
                if a.len() != b.len() {
                    fail(
                        &mut res,
                        format!("pkt {i}: {} vs {} emissions", a.len(), b.len()),
                    );
                    break;
                }
                for (j, ((pa, fa), (pb, fb))) in a.iter().zip(&b).enumerate() {
                    if pa != pb {
                        fail(
                            &mut res,
                            format!("pkt {i} emission {j}: port {pa:?} vs {pb:?}"),
                        );
                    }
                    if fa.bytes() != fb.bytes() {
                        fail(&mut res, format!("pkt {i} emission {j}: bytes diverge"));
                    }
                }
                res.emissions += a.len();
            }
            (Err(ea), Err(eb)) => {
                if format!("{ea}") != format!("{eb}") {
                    fail(&mut res, format!("pkt {i}: errors diverge: {ea} vs {eb}"));
                }
            }
            (a, b) => {
                fail(
                    &mut res,
                    format!(
                        "pkt {i}: one engine errored: {:?} vs {:?}",
                        a.is_ok(),
                        b.is_ok()
                    ),
                );
                break;
            }
        }
        if !res.ok {
            break;
        }
    }
    if res.ok {
        if plan.stats != interp.stats {
            fail(
                &mut res,
                format!(
                    "deployment stats diverge: {:?} vs {:?}",
                    plan.stats, interp.stats
                ),
            );
        }
        if plan.switch.stats != interp.switch.stats {
            fail(
                &mut res,
                format!(
                    "switch stats diverge: {:?} vs {:?}",
                    plan.switch.stats, interp.switch.stats
                ),
            );
        }
        if plan.server.stats != interp.server.stats {
            fail(&mut res, "server stats diverge".to_string());
        }
        if plan.server.store != interp.server.store {
            fail(&mut res, "authoritative state stores diverge".to_string());
        }
        if plan.switch.drain_evictions() != interp.switch.drain_evictions() {
            fail(&mut res, "cache evictions diverge".to_string());
        }
        if !plan.replicated_consistent() || !interp.replicated_consistent() {
            fail(&mut res, "replicated state inconsistent".to_string());
        }
    }
    res
}

/// Plan-vs-interpreter differential for one middlebox program.
fn differential(
    name: &str,
    prog: &Program,
    configure: &dyn Fn(&mut StateStore),
    pkts: &[Packet],
) -> DiffResult {
    let compiled = compile(prog, &SwitchModel::tofino_like()).expect("compiles");
    let plan =
        Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated()).unwrap();
    let interp =
        Deployment::new_interpreter(&compiled, SwitchConfig::default(), CostModel::calibrated())
            .unwrap();
    assert!(plan.switch.uses_plan() && !interp.switch.uses_plan());
    compare_deployments(name, plan, interp, configure, pkts)
}

/// Fused-vs-unfused differential: the same stream through a plan built
/// with `BuildKeyProbe`/`Branch` fusion (default) and one built with
/// fusion disabled (`SwitchConfig::plan_fusion = false`). Every
/// observable must agree — the superinstructions are pure codegen.
fn differential_unfused(pkts: &[Packet]) -> DiffResult {
    let nat = mazunat::mazunat();
    let compiled = compile(&nat.prog, &SwitchModel::tofino_like()).expect("compiles");
    let fused =
        Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated()).unwrap();
    let unfused = Deployment::new(
        &compiled,
        SwitchConfig {
            plan_fusion: false,
            ..SwitchConfig::default()
        },
        CostModel::calibrated(),
    )
    .unwrap();
    assert!(fused.switch.uses_plan() && unfused.switch.uses_plan());
    compare_deployments("MazuNAT fused≡unfused", fused, unfused, &|_| {}, pkts)
}

/// Cache-mode differential: 4-entry FIFO cache on the LB connection table,
/// small enough that the stream thrashes it (evictions + §7 replays).
fn differential_cached(pkts: &[Packet]) -> DiffResult {
    let lb = lb::load_balancer();
    let compiled = compile(&lb.prog, &SwitchModel::tofino_like()).expect("compiles");
    let caches = [(lb.conn, 4usize)];
    let plan = Deployment::new_cached(
        &compiled,
        SwitchConfig::default(),
        CostModel::calibrated(),
        &caches,
    )
    .unwrap();
    let interp = Deployment::new_cached_interpreter(
        &compiled,
        SwitchConfig::default(),
        CostModel::calibrated(),
        &caches,
    )
    .unwrap();
    let backends = lb.backends;
    let configure = move |s: &mut StateStore| {
        s.vec_set_all(backends, vec![0xC0A8_0001, 0xC0A8_0002, 0xC0A8_0003])
            .unwrap();
    };
    let mut res = compare_deployments("LB cached(4)", plan, interp, &configure, pkts);
    if res.ok && res.emissions == 0 {
        res.ok = false;
        res.detail = "cache differential saw no emissions".to_string();
    }
    res
}

/// `inject_batch_into` vs per-packet `inject` on the same engine: emission
/// stream, counters, and state must be identical (the batch API reuses
/// buffers, it does not reorder or coalesce).
fn differential_batch(pkts: &[Packet]) -> DiffResult {
    let nat = mazunat::mazunat();
    let compiled = compile(&nat.prog, &SwitchModel::tofino_like()).expect("compiles");
    let mut seq =
        Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated()).unwrap();
    let mut bat =
        Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated()).unwrap();
    let mut res = DiffResult {
        name: "MazuNAT batch≡inject".to_string(),
        packets: pkts.len(),
        emissions: 0,
        ok: true,
        detail: String::new(),
    };
    let mut expected = Vec::new();
    for p in pkts {
        expected.extend(seq.inject(p.clone()).expect("inject"));
    }
    let mut out = Vec::new();
    for chunk in pkts.chunks(64) {
        bat.inject_batch_into(chunk.iter().cloned(), &mut out)
            .expect("batch");
    }
    res.emissions = out.len();
    if out.len() != expected.len() {
        res.ok = false;
        res.detail = format!("{} vs {} emissions", out.len(), expected.len());
    } else if let Some(i) = out
        .iter()
        .zip(&expected)
        .position(|((pa, fa), (pb, fb))| pa != pb || fa.bytes() != fb.bytes())
    {
        res.ok = false;
        res.detail = format!("emission {i} diverges");
    } else if seq.stats != bat.stats
        || seq.switch.stats != bat.switch.stats
        || seq.server.stats != bat.server.stats
    {
        res.ok = false;
        res.detail = "stats diverge".to_string();
    } else if seq.server.store != bat.server.store {
        res.ok = false;
        res.detail = "state stores diverge".to_string();
    } else if !bat.replicated_consistent() {
        res.ok = false;
        res.detail = "replicated state inconsistent".to_string();
    }
    res
}

/// One middlebox wired up for fast-path timing: a deployment with warm
/// state plus a probe packet proven to stay on the switch.
struct PerfCase {
    name: &'static str,
    d: Deployment,
    probe: Packet,
}

/// Inject `probe` until an injection leaves `slow_path` untouched (state
/// replication from earlier warm packets may take a round trip), then
/// prove it: the returned deployment serves the probe from the data plane.
fn settle_fast_path(d: &mut Deployment, probe: &Packet, name: &str) {
    for _ in 0..16 {
        let before = d.stats.slow_path;
        d.inject(probe.clone()).unwrap();
        if d.stats.slow_path == before {
            return;
        }
    }
    panic!("{name}: probe never settled on the fast path");
}

/// Build a warm fast-path deployment for every packaged middlebox. Each
/// case's probe is an established-flow (or pass-through) packet that the
/// pre traversal handles without involving the server.
fn perf_cases() -> Vec<PerfCase> {
    let mut cases = Vec::new();
    let model = SwitchModel::tofino_like();
    let tuple = |saddr: u32, daddr: u32, sport: u16, dport: u16| FiveTuple {
        saddr,
        daddr,
        sport,
        dport,
        proto: IpProtocol::Tcp,
    };
    let tcp = |t: FiveTuple, flags: u8, ingress: u16| {
        PacketBuilder::tcp(t, TcpFlags(flags), 200).build(PortId(ingress))
    };
    let deploy = |compiled: &CompiledMiddlebox| {
        Deployment::new(compiled, SwitchConfig::default(), CostModel::calibrated()).unwrap()
    };

    // MazuNAT: SYN establishes the outbound mapping, ACK rides it.
    {
        let nat = mazunat::mazunat();
        let compiled = compile(&nat.prog, &model).unwrap();
        let mut d = deploy(&compiled);
        let t = tuple(0x0A00_0009, 0x0808_0404, 50_123, 443);
        d.inject(tcp(t, TcpFlags::SYN, INTERNAL_PORT)).unwrap();
        let probe = tcp(t, TcpFlags::ACK, INTERNAL_PORT);
        settle_fast_path(&mut d, &probe, "mazunat");
        cases.push(PerfCase {
            name: "mazunat",
            d,
            probe,
        });
    }

    // Load balancer: SYN picks a backend and installs the connection
    // entry; the ACK hits the replicated connection table.
    {
        let l = lb::load_balancer();
        let compiled = compile(&l.prog, &model).unwrap();
        let mut d = deploy(&compiled);
        let backends = l.backends;
        d.configure(|s| {
            s.vec_set_all(backends, vec![0xC0A8_0001, 0xC0A8_0002, 0xC0A8_0003])
                .unwrap();
        })
        .unwrap();
        let t = tuple(0x0A00_0001, 0x0B00_0001, 2_000, 80);
        d.inject(tcp(t, TcpFlags::SYN, INTERNAL_PORT)).unwrap();
        let probe = tcp(t, TcpFlags::ACK, INTERNAL_PORT);
        settle_fast_path(&mut d, &probe, "lb");
        cases.push(PerfCase {
            name: "lb",
            d,
            probe,
        });
    }

    // Firewall: the probe's tuple is explicitly allowed at configure
    // time; allowed flows match the replicated allow table on the switch.
    {
        let fw = firewall::firewall();
        let compiled = compile(&fw.prog, &model).unwrap();
        let mut d = deploy(&compiled);
        let t = tuple(0x0A00_0002, 0x0B00_0002, 2_001, 80);
        let fw_cfg = fw.clone();
        d.configure(|s| fw_cfg.allow(s, &t)).unwrap();
        let probe = tcp(t, TcpFlags::ACK, INTERNAL_PORT);
        settle_fast_path(&mut d, &probe, "firewall");
        cases.push(PerfCase {
            name: "firewall",
            d,
            probe,
        });
    }

    // Proxy: port 80 is intercepted; a 443 flow passes straight through.
    {
        let px = proxy::proxy(0x0A09_0909, 3128);
        let compiled = compile(&px.prog, &model).unwrap();
        let mut d = deploy(&compiled);
        let px_cfg = px.clone();
        d.configure(|s| px_cfg.intercept(s, 80)).unwrap();
        let t = tuple(0x0A00_0003, 0x0B00_0003, 2_002, 443);
        let probe = tcp(t, TcpFlags::ACK, INTERNAL_PORT);
        settle_fast_path(&mut d, &probe, "proxy");
        cases.push(PerfCase {
            name: "proxy",
            d,
            probe,
        });
    }

    // Trojan detector: only the SSH/FTP/IRC stage ports mutate state; a
    // port-80 flow is pure pass-through.
    {
        let tr = trojan::trojan_detector();
        let compiled = compile(&tr.prog, &model).unwrap();
        let mut d = deploy(&compiled);
        let t = tuple(0x0A00_0004, 0x0B00_0004, 2_003, 80);
        let probe = tcp(t, TcpFlags::ACK, INTERNAL_PORT);
        settle_fast_path(&mut d, &probe, "trojan");
        cases.push(PerfCase {
            name: "trojan",
            d,
            probe,
        });
    }

    // MiniLB: same shape as the load balancer, smaller program.
    {
        let ml = minilb::minilb();
        let compiled = compile(&ml.prog, &model).unwrap();
        let mut d = deploy(&compiled);
        let backends = ml.backends;
        d.configure(|s| {
            s.vec_set_all(backends, vec![0xC0A8_0001, 0xC0A8_0002])
                .unwrap();
        })
        .unwrap();
        let t = tuple(0x0A00_0005, 0x0B00_0005, 2_004, 80);
        d.inject(tcp(t, TcpFlags::SYN, INTERNAL_PORT)).unwrap();
        let probe = tcp(t, TcpFlags::ACK, INTERNAL_PORT);
        settle_fast_path(&mut d, &probe, "minilb");
        cases.push(PerfCase {
            name: "minilb",
            d,
            probe,
        });
    }

    cases
}

/// A MazuNAT deployment on the reference AST interpreter with the same
/// warm flow, for the plan-vs-interpreter headline number.
fn warm_nat_interpreter() -> (Deployment, Packet) {
    let nat = mazunat::mazunat();
    let compiled = compile(&nat.prog, &SwitchModel::tofino_like()).unwrap();
    let mut d =
        Deployment::new_interpreter(&compiled, SwitchConfig::default(), CostModel::calibrated())
            .unwrap();
    let t = FiveTuple {
        saddr: 0x0A00_0009,
        daddr: 0x0808_0404,
        sport: 50_123,
        dport: 443,
        proto: IpProtocol::Tcp,
    };
    let syn = PacketBuilder::tcp(t, TcpFlags(TcpFlags::SYN), 200).build(PortId(INTERNAL_PORT));
    d.inject(syn).unwrap();
    let probe = PacketBuilder::tcp(t, TcpFlags(TcpFlags::ACK), 200).build(PortId(INTERNAL_PORT));
    settle_fast_path(&mut d, &probe, "mazunat interpreter");
    (d, probe)
}

/// `(median, best)` ns/pkt over `trials` timed loops of `iters`
/// injections (median is comparable to bench_pr6; best is the robust
/// estimator on shared machines, where scheduling noise only ever
/// inflates a trial).
fn time_fast_path(d: &mut Deployment, probe: &Packet, iters: u64, trials: usize) -> (f64, f64) {
    let mut runs: Vec<u64> = (0..trials)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(d.inject(black_box(probe.clone())).unwrap());
            }
            t0.elapsed().as_nanos() as u64 / iters
        })
        .collect();
    runs.sort_unstable();
    (runs[runs.len() / 2] as f64, runs[0] as f64)
}

const BURST: usize = 64;

/// `(median, best, allocs/pkt)` of `inject_batch_into` draining pre-built
/// bursts of uniquely-owned packets through one reused emissions buffer;
/// the allocation count covers the timed region only (the bursts are
/// deep-cloned *outside* it). This is the zero-allocation path.
fn time_batch_path(
    d: &mut Deployment,
    probe: &Packet,
    iters: u64,
    trials: usize,
) -> (f64, f64, f64) {
    let bursts_per_trial = (iters as usize / BURST).max(8);
    let mut out: Vec<(PortId, Packet)> = Vec::with_capacity(BURST * 2);
    // Warm the emissions buffer and the deployment scratch.
    let warm: Vec<Packet> = (0..BURST).map(|_| probe.deep_clone()).collect();
    d.inject_batch_into(warm, &mut out).unwrap();

    let mut runs: Vec<u64> = Vec::with_capacity(trials);
    let mut total_allocs = 0u64;
    let mut total_pkts = 0u64;
    for _ in 0..trials {
        let mut bursts: Vec<Vec<Packet>> = (0..bursts_per_trial)
            .map(|_| (0..BURST).map(|_| probe.deep_clone()).collect())
            .collect();
        let a0 = ALLOCS.load(Ordering::SeqCst);
        let t0 = Instant::now();
        for burst in bursts.drain(..) {
            out.clear();
            black_box(d.inject_batch_into(burst, &mut out).unwrap());
        }
        let dt = t0.elapsed().as_nanos() as u64;
        total_allocs += ALLOCS.load(Ordering::SeqCst) - a0;
        total_pkts += (bursts_per_trial * BURST) as u64;
        runs.push(dt / (bursts_per_trial * BURST) as u64);
    }
    runs.sort_unstable();
    (
        runs[runs.len() / 2] as f64,
        runs[0] as f64,
        total_allocs as f64 / total_pkts as f64,
    )
}

/// Per-middlebox timing row.
struct PerfRow {
    name: &'static str,
    ns: f64,
    best_ns: f64,
    batch_ns: f64,
    batch_best_ns: f64,
    allocs_per_pkt: f64,
}

fn main() {
    let mut quick = false;
    let mut out_path: Option<String> = None;
    for a in std::env::args().skip(1) {
        if a == "--quick" {
            quick = true;
        } else {
            out_path = Some(a);
        }
    }
    let out_path = out_path.unwrap_or_else(|| "BENCH_pr10.json".to_string());
    let stream_len = if quick { 600 } else { 2_000 };
    let iters: u64 = if quick { 5_000 } else { 50_000 };
    let trials = if quick { 3 } else { 5 };

    // ---- 1. Differential suite ------------------------------------------
    let pkts = traffic(stream_len);
    let mut results: Vec<DiffResult> = Vec::new();

    let nat = mazunat::mazunat();
    results.push(differential("MazuNAT", &nat.prog, &|_| {}, &pkts));

    let l = lb::load_balancer();
    let lb_backends = l.backends;
    results.push(differential(
        "Load Balancer",
        &l.prog,
        &move |s: &mut StateStore| {
            s.vec_set_all(lb_backends, vec![0xC0A8_0001, 0xC0A8_0002, 0xC0A8_0003])
                .unwrap();
        },
        &pkts,
    ));

    let fw = firewall::firewall();
    let fw_cfg = fw.clone();
    results.push(differential(
        "Firewall",
        &fw.prog,
        &move |s: &mut StateStore| {
            for saddr in 0..8u32 {
                for daddr in 0..11u32 {
                    for sport in 0..13u16 {
                        fw_cfg.allow(
                            s,
                            &FiveTuple {
                                saddr: 0x0A00_0000 + saddr,
                                daddr: 0x0B00_0000 + daddr,
                                sport: 1024 + sport,
                                dport: 80,
                                proto: IpProtocol::Tcp,
                            },
                        );
                    }
                }
            }
        },
        &pkts,
    ));

    let px = proxy::proxy(0x0A09_0909, 3128);
    let px_cfg = px.clone();
    results.push(differential(
        "Proxy",
        &px.prog,
        &move |s: &mut StateStore| px_cfg.intercept(s, 80),
        &pkts,
    ));

    let tr = trojan::trojan_detector();
    results.push(differential("Trojan Detector", &tr.prog, &|_| {}, &pkts));

    let ml = minilb::minilb();
    let ml_backends = ml.backends;
    results.push(differential(
        "MiniLB",
        &ml.prog,
        &move |s: &mut StateStore| {
            s.vec_set_all(ml_backends, vec![0xC0A8_0001, 0xC0A8_0002])
                .unwrap();
        },
        &pkts,
    ));

    results.push(differential_cached(&pkts));
    results.push(differential_batch(&pkts));
    results.push(differential_unfused(&pkts));

    let all_ok = results.iter().all(|r| r.ok);
    for r in &results {
        if r.ok {
            println!(
                "differential {}: OK ({} pkts, {} emissions)",
                r.name, r.packets, r.emissions
            );
        } else {
            eprintln!("differential {}: FAILED — {}", r.name, r.detail);
        }
    }

    // ---- 2. Register-IR compiler stats (MazuNAT plan) -------------------
    let nat_compiled = compile(&nat.prog, &SwitchModel::tofino_like()).unwrap();
    let nat_plan = ExecPlan::build(&nat_compiled.p4).unwrap();
    let xs = nat_plan.expr_stats();
    println!(
        "expr compiler mazunat: {} micro-ops, {} regs, {} folded, {} CSE hits, \
         {} fused superinstructions, {} dead ops eliminated",
        xs.micro_ops, xs.regs, xs.folded, xs.cse_hits, xs.fused, xs.dead
    );

    // ---- 3. Per-middlebox fast path + batch throughput ------------------
    let mut cases = perf_cases();
    let mut rows: Vec<PerfRow> = Vec::new();
    for case in &mut cases {
        let (ns, best_ns) = time_fast_path(&mut case.d, &case.probe, iters, trials);
        let (batch_ns, batch_best_ns, allocs_per_pkt) =
            time_batch_path(&mut case.d, &case.probe, iters, trials);
        println!(
            "fast path {}: {ns:.0} ns/pkt (best {best_ns:.0}), batch {batch_ns:.0} ns/pkt \
             (best {batch_best_ns:.0}), {allocs_per_pkt:.4} allocs/pkt",
            case.name
        );
        rows.push(PerfRow {
            name: case.name,
            ns,
            best_ns,
            batch_ns,
            batch_best_ns,
            allocs_per_pkt,
        });
    }
    let zero_alloc = rows.iter().all(|r| r.allocs_per_pkt == 0.0);
    if !zero_alloc {
        for r in rows.iter().filter(|r| r.allocs_per_pkt > 0.0) {
            eprintln!(
                "warm batch path allocated for {} ({} allocs/pkt, expected 0)",
                r.name, r.allocs_per_pkt
            );
        }
    }

    // ---- 4. Table-layout telemetry ---------------------------------------
    // The timed MazuNAT deployment must have served its lookups through
    // the perfect-hash layout: the probe counter counts single-probe
    // layout hits only (fallback map lookups do not bump it), and the
    // rebuild counter counts epoch-triggered layout rebuilds.
    let snap = cases[0].d.telemetry_snapshot();
    let table_rebuilds = snap
        .counter("gallium.switchsim.table.rebuilds")
        .unwrap_or(0);
    let table_probes = snap.counter("gallium.switchsim.table.probe").unwrap_or(0);
    let layout_served = table_probes > 0;
    println!(
        "table layout mazunat: {table_probes} layout probes, {table_rebuilds} rebuilds{}",
        if layout_served {
            ""
        } else {
            " — WARNING: timed lookups fell back to map serving"
        }
    );

    // ---- 5. MazuNAT headline: plan vs interpreter, vs PR 8 --------------
    let mazunat_row = &rows[0];
    let (plan_ns, plan_best_ns) = (mazunat_row.ns, mazunat_row.best_ns);
    let (batch_ns, batch_best_ns) = (mazunat_row.batch_ns, mazunat_row.batch_best_ns);
    let (mut d_interp, probe_i) = warm_nat_interpreter();
    let (interp_ns, _) = time_fast_path(&mut d_interp, &probe_i, iters, trials);
    let speedup = interp_ns / plan_ns;
    let speedup_vs_pr8 = PR8_BASELINE_NS_PER_PKT / plan_best_ns;
    let batch_speedup_vs_pr8 = PR8_BATCH_BASELINE_NS_PER_PKT / batch_best_ns;
    println!(
        "fast path mazunat: plan {plan_ns:.0} ns/pkt (best {plan_best_ns:.0}), \
         interpreter {interp_ns:.0} ns/pkt ({speedup:.2}x), vs PR8 baseline \
         {PR8_BASELINE_NS_PER_PKT:.0} ns/pkt ({speedup_vs_pr8:.2}x); batch \
         {batch_ns:.0} ns/pkt (best {batch_best_ns:.0}) vs PR8 batch baseline \
         {PR8_BATCH_BASELINE_NS_PER_PKT:.0} ns/pkt ({batch_speedup_vs_pr8:.2}x)"
    );

    // ---- JSON -------------------------------------------------------------
    let mut json = String::new();
    let _ = writeln!(json, "{{\n  \"bench\": \"pr10\",\n  \"quick\": {quick},");
    json.push_str("  \"differential\": {");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "\n    {}: {{\"packets\": {}, \"emissions\": {}, \"ok\": {}{}}}",
            json_escape(&r.name),
            r.packets,
            r.emissions,
            r.ok,
            if r.ok {
                String::new()
            } else {
                format!(", \"detail\": {}", json_escape(&r.detail))
            }
        );
    }
    let _ = writeln!(json, "\n  }},\n  \"differential_ok\": {all_ok},");
    let _ = writeln!(
        json,
        "  \"expr\": {{\"middlebox\": \"mazunat\", \"micro_ops\": {}, \"regs\": {}, \
         \"const_folded\": {}, \"cse_hits\": {}, \"fused\": {}, \"dead_ops\": {}}},",
        xs.micro_ops, xs.regs, xs.folded, xs.cse_hits, xs.fused, xs.dead
    );
    let _ = writeln!(
        json,
        "  \"fast_path\": {{\"middlebox\": \"mazunat\", \"iters\": {iters}, \
         \"plan_ns_per_pkt\": {plan_ns:.1}, \"plan_best_ns_per_pkt\": {plan_best_ns:.1}, \
         \"interp_ns_per_pkt\": {interp_ns:.1}, \
         \"speedup\": {speedup:.3}, \"pr8_baseline_ns_per_pkt\": {PR8_BASELINE_NS_PER_PKT:.0}, \
         \"speedup_vs_pr8\": {speedup_vs_pr8:.3}}},"
    );
    let _ = writeln!(
        json,
        "  \"batch\": {{\"burst\": {BURST}, \
         \"inject_batch_ns_per_pkt\": {batch_ns:.1}, \
         \"inject_batch_best_ns_per_pkt\": {batch_best_ns:.1}, \
         \"warm_allocs_per_pkt\": {:.4}, \
         \"pr8_batch_baseline_ns_per_pkt\": {PR8_BATCH_BASELINE_NS_PER_PKT:.0}, \
         \"zero_alloc\": {zero_alloc}}},",
        mazunat_row.allocs_per_pkt
    );
    let _ = writeln!(
        json,
        "  \"table\": {{\"rebuilds\": {table_rebuilds}, \"probes\": {table_probes}, \
         \"layout_served\": {layout_served}}},"
    );
    json.push_str("  \"middleboxes\": {");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "\n    \"{}\": {{\"ns_per_pkt\": {:.1}, \"best_ns_per_pkt\": {:.1}, \
             \"batch_ns_per_pkt\": {:.1}, \"batch_best_ns_per_pkt\": {:.1}, \
             \"warm_allocs_per_pkt\": {:.4}}}",
            r.name, r.ns, r.best_ns, r.batch_ns, r.batch_best_ns, r.allocs_per_pkt
        );
    }
    json.push_str("\n  },\n  \"telemetry\": ");
    // The registry snapshot carries the plan-build telemetry — including
    // the `gallium.switchsim.plan.expr.*` keys CI greps for — merged with
    // the per-table counters of the timed MazuNAT deployment.
    let snap = cases[0].d.telemetry_snapshot();
    assert!(
        snap.counter("gallium.switchsim.table.probe").is_some()
            && snap.counter("gallium.switchsim.table.rebuilds").is_some(),
        "table layout telemetry keys missing from the snapshot"
    );
    for line in snap.to_json().lines() {
        json.push_str(line);
        json.push('\n');
        json.push_str("  ");
    }
    while json.ends_with(' ') {
        json.pop();
    }
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_pr10.json");
    println!("wrote {out_path}");
    if !all_ok {
        eprintln!("differential suite FAILED");
        std::process::exit(1);
    }
    if !zero_alloc {
        std::process::exit(1);
    }
    if !layout_served {
        eprintln!("timed lookups never went through the perfect-hash layout");
        std::process::exit(1);
    }
}
