//! Table 3: "Latency of updating offloaded P4 tables from middlebox
//! server" — insert/modify/delete across 1/2/4 tables, measured against
//! the live switch control plane (not just the latency constants: every
//! operation is actually applied to a loaded switch).

use gallium_bench::row;
use gallium_core::compile;
use gallium_middleboxes::firewall::firewall;
use gallium_p4::ControlPlaneOp;
use gallium_partition::SwitchModel;
use gallium_server::CostModel;
use gallium_switchsim::{ControlPlane, Switch, SwitchConfig};

/// Build a switch with several offloaded tables (the firewall provides
/// two; we load two instances' worth of rules into distinct key spaces to
/// emulate more).
fn fresh_switch() -> Switch {
    let fw = firewall();
    let compiled = compile(&fw.prog, &SwitchModel::tofino_like()).unwrap();
    let _ = CostModel::calibrated();
    Switch::load(compiled.p4, SwitchConfig::default()).unwrap()
}

fn op(kind: &str, table: &str, k: u64) -> ControlPlaneOp {
    let key = vec![k, k + 1, k + 2, 6];
    match kind {
        "insert" => ControlPlaneOp::TableInsert {
            table: table.into(),
            key,
            value: vec![1],
        },
        "modify" => ControlPlaneOp::TableModify {
            table: table.into(),
            key,
            value: vec![2],
        },
        "delete" => ControlPlaneOp::TableDelete {
            table: table.into(),
            key,
        },
        _ => unreachable!(),
    }
}

fn main() {
    let widths = [9usize, 14, 14, 14];
    println!(
        "{}",
        row(
            &[
                "#tables".into(),
                "Insert (µs)".into(),
                "Modify (µs)".into(),
                "Delete (µs)".into(),
            ],
            &widths
        )
    );
    // The firewall's two physical tables; batches alternate between them
    // (and revisit for the 4-table row, as the paper's synthetic programs
    // with four tables would).
    let tables = ["allow_out", "allow_in", "allow_out", "allow_in"];
    for n in [1usize, 2, 4] {
        let mut cells = vec![n.to_string()];
        for kind in ["insert", "modify", "delete"] {
            let mut sw = fresh_switch();
            // Pre-populate so modify/delete hit existing entries.
            for (i, t) in tables.iter().take(n).enumerate() {
                sw.control(&op("insert", t, 1000 + i as u64)).unwrap();
            }
            let ops: Vec<ControlPlaneOp> = tables
                .iter()
                .take(n)
                .enumerate()
                .map(|(i, t)| op(kind, t, 1000 + i as u64))
                .collect();
            let ns = sw.control_batch(&ops).unwrap();
            cells.push(format!("{:.1}", ns as f64 / 1000.0));
        }
        println!("{}", row(&cells, &widths));
    }
    println!();
    println!("Paper Table 3: 1 table 135.2/128.6/131.3 µs;");
    println!("2 tables 270.1/258.3/262.7 µs; 4 tables 371.0/363.0/366.1 µs.");
}
