//! `BENCH_pr2.json` — the PR 2 performance baseline.
//!
//! Three measurements, written as one JSON document (default path
//! `BENCH_pr2.json`, override with argv[1]):
//!
//! 1. **Compiler** — wall-clock end-to-end `compile()` time per evaluated
//!    middlebox (median of `TRIALS` runs), plus the offloaded-instruction
//!    split from the explain report.
//! 2. **Dataplane microbench** — MazuNAT fast-path throughput at 1500 B,
//!    the Figure 7 configuration the telemetry hot path rides on.
//! 3. **Telemetry overhead** — measured ns/op of `Counter::inc` and
//!    `Histogram::record`, demonstrating the "one relaxed atomic add per
//!    event" budget the design doc claims.
//!
//! The full process-global [`gallium_telemetry`] snapshot accumulated by
//! the compile runs is embedded verbatim under `"telemetry"`.

use gallium_core::compile;
use gallium_middleboxes::all_evaluated;
use gallium_partition::SwitchModel;
use gallium_sim::{run_microbench, MbKind, Mode};
use gallium_telemetry::{json_escape, Counter, Histogram};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

const TRIALS: usize = 5;

/// Median wall-clock ns of `TRIALS` runs of `f`.
fn median_ns(mut f: impl FnMut()) -> u64 {
    let mut runs: Vec<u64> = (0..TRIALS)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    runs.sort_unstable();
    runs[runs.len() / 2]
}

/// Per-iteration ns of `iters` calls to `f`, minus nothing — callers
/// subtract a measured empty-loop baseline if they care.
fn ns_per_op(iters: u64, mut f: impl FnMut(u64)) -> f64 {
    let t0 = Instant::now();
    for i in 0..iters {
        f(black_box(i));
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr2.json".to_string());
    let model = SwitchModel::tofino_like();

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"pr2\",\n  \"compile\": {");

    for (i, (name, prog)) in all_evaluated().into_iter().enumerate() {
        let ns = median_ns(|| {
            black_box(compile(black_box(&prog), &model).expect("compiles"));
        });
        let compiled = compile(&prog, &model).expect("compiles");
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "\n    {}: {{\"compile_ns\": {ns}, \"instructions\": {}, \"offloaded\": {}}}",
            json_escape(name),
            prog.func.len(),
            compiled.explain.offloaded_count(),
        );
        println!(
            "compile {name}: {:.2} ms ({} insts, {} offloaded)",
            ns as f64 / 1e6,
            prog.func.len(),
            compiled.explain.offloaded_count()
        );
    }
    json.push_str("\n  },\n");

    // Dataplane microbench: MazuNAT offloaded fast path at 1500 B.
    let profile = gallium_sim::profile::profile_middlebox(MbKind::MazuNat, 1500);
    let m = run_microbench(profile, Mode::Offloaded, 1500, 7);
    let _ = writeln!(
        json,
        "  \"microbench\": {{\"middlebox\": \"mazunat\", \"frame_len\": 1500, \
         \"throughput_gbps\": {:.3}, \"slow_path_fraction\": {:.6}}},",
        m.throughput_gbps(),
        m.slow_path_fraction()
    );
    println!(
        "microbench mazunat@1500B offloaded: {:.1} Gbps, slow-path {:.4}%",
        m.throughput_gbps(),
        100.0 * m.slow_path_fraction()
    );

    // Telemetry primitive overhead. 10 M iterations each keeps the
    // timing stable while finishing in well under a second.
    let iters = 10_000_000u64;
    let baseline = ns_per_op(iters, |i| {
        black_box(i);
    });
    let c = Counter::new();
    let counter_ns = ns_per_op(iters, |_| c.inc());
    let h = Histogram::new();
    let histogram_ns = ns_per_op(iters, |i| h.record(i));
    black_box(c.get());
    black_box(h.count());
    let _ = writeln!(
        json,
        "  \"telemetry_overhead\": {{\"iters\": {iters}, \"baseline_ns\": {baseline:.3}, \
         \"counter_inc_ns\": {counter_ns:.3}, \"histogram_record_ns\": {histogram_ns:.3}}},"
    );
    println!(
        "telemetry overhead: counter {counter_ns:.2} ns/op, histogram {histogram_ns:.2} ns/op \
         (empty loop {baseline:.2} ns/op)"
    );

    // Embed the compiler telemetry the compile runs above accumulated.
    json.push_str("  \"telemetry\": ");
    let snap = gallium_telemetry::global().snapshot();
    for line in snap.to_json().lines() {
        json.push_str(line);
        json.push('\n');
        json.push_str("  ");
    }
    // Drop the trailing indent, close the document.
    while json.ends_with(' ') {
        json.pop();
    }
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_pr2.json");
    println!("wrote {out_path}");
}
