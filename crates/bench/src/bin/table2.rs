//! Table 2: "Latency comparison of Gallium middleboxes and their FastClick
//! counterparts" (Nptcp TCP packet latency; paper: FastClick ≈ 22.5–23.2 µs,
//! Gallium ≈ 14.8–16.0 µs, ≈ 31 % reduction).

use gallium_bench::{row, us};
use gallium_sim::{latency_probe_ns, MbKind, Mode, TestbedModel};

fn main() {
    let model = TestbedModel::calibrated();
    let widths = [16usize, 16, 16, 12];
    println!(
        "{}",
        row(
            &[
                "Middlebox".into(),
                "FastClick (µs)".into(),
                "Gallium (µs)".into(),
                "Reduction".into(),
            ],
            &widths
        )
    );
    for kind in MbKind::ALL {
        let profile = gallium_sim::profile::profile_middlebox(kind, 1500);
        let click = latency_probe_ns(&profile, Mode::Click { cores: 1 }, &model);
        let gallium = latency_probe_ns(&profile, Mode::Offloaded, &model);
        let reduction = 100.0 * (1.0 - gallium as f64 / click as f64);
        println!(
            "{}",
            row(
                &[
                    kind.name().to_string(),
                    us(click),
                    us(gallium),
                    format!("{reduction:.0}%"),
                ],
                &widths
            )
        );
    }
    println!();
    println!("Paper Table 2: FastClick 22.45-23.16 µs, Gallium 14.80-15.98 µs (~31%).");
}
