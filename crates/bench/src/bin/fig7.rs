//! Figure 7: "Throughput comparison between Gallium middleboxes and their
//! FastClick counterparts" — 10 parallel TCP connections, packet sizes
//! 100/500/1500 B, offloaded (1 core) vs Click on 1/2/4 cores, ten trials
//! with mean ± stddev.

use gallium_bench::{emit_snapshot, gbps, row};
use gallium_sim::{run_microbench, MbKind, Mode};
use gallium_telemetry::TelemetrySnapshot;
use gallium_workloads::PACKET_SIZES;

fn mean_std(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

fn main() {
    let trials = 10u64;
    let mut telemetry = TelemetrySnapshot::default();
    let modes = [
        Mode::Offloaded,
        Mode::Click { cores: 4 },
        Mode::Click { cores: 2 },
        Mode::Click { cores: 1 },
    ];
    for kind in MbKind::ALL {
        println!("=== {} ===", kind.name());
        let widths = [12usize, 18, 18, 18];
        let header: Vec<String> = std::iter::once("PktSize".to_string())
            .chain(PACKET_SIZES.iter().map(|s| format!("{s}B (Gbps)")))
            .collect();
        println!("{}", row(&header, &widths));
        for mode in modes {
            let mut cells = vec![mode.label()];
            for &size in &PACKET_SIZES {
                let profile = gallium_sim::profile::profile_middlebox(kind, size);
                let runs: Vec<f64> = (0..trials)
                    .map(|t| {
                        let m = run_microbench(profile, mode, size, 100 + t);
                        if mode == Mode::Offloaded {
                            telemetry.merge(&m.to_snapshot("gallium.bench.fig7.offloaded"));
                        }
                        m.throughput_gbps()
                    })
                    .collect();
                let (m, s) = mean_std(&runs);
                cells.push(format!("{} ± {}", gbps(m), gbps(s)));
            }
            println!("{}", row(&cells, &widths));
        }
        println!();
    }
    println!("Paper shape: Offloaded(1 core) outperforms Click-4c by 20-187%");
    println!("across sizes; Click scales with cores; small packets hurt Click most.");
    println!();
    // Aggregate dataplane telemetry for every offloaded trial above.
    emit_snapshot(&telemetry);
}
