//! `BENCH_pr7.json` — the packet flight recorder's overhead contract.
//!
//! PR 7 adds sampled per-hop tracing, stage latency histograms, and drop
//! attribution to the dataplane. This bin carries the proof obligations:
//!
//! 1. **Tracing off is free** — with no recorder installed, the warm
//!    MazuNAT fast path must stay within noise of the PR 6 baseline
//!    (265 ns/pkt measured, 277 ns/pkt gate) and allocate nothing.
//! 2. **Tracing on is alloc-free** — with a recorder installed (both a
//!    production-style 1-in-64 and a worst-case 1-in-1 sampler), the
//!    warm drain must still allocate zero bytes per packet; ring writes
//!    are lock-free stores into preallocated slots.
//! 3. **Traces are faithful** — a sampled MazuNAT slow-path packet's
//!    trace must reconstruct the switch→server→switch hop journey, and
//!    the telemetry snapshot must export the `gallium.telemetry.trace.*`
//!    and `gallium.*.drop.*` key families.
//!
//! Usage: `bench_pr7 [--quick] [OUT_PATH]`. Exits non-zero if the
//! tracing-off gate, the zero-allocation contract, or the trace
//! reconstruction check fails.

use gallium_core::{compile, Deployment};
use gallium_middleboxes::{mazunat, INTERNAL_PORT};
use gallium_net::{FiveTuple, IpProtocol, Packet, PacketBuilder, PortId, TcpFlags};
use gallium_partition::SwitchModel;
use gallium_server::CostModel;
use gallium_switchsim::SwitchConfig;
use gallium_telemetry::names;
use gallium_telemetry::trace::{EventKind, Hop};
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// PR 6's measured warm fast path (BENCH_pr6.json) and the CI gate the
/// tracing-off path must stay under.
const PR6_BASELINE_NS_PER_PKT: f64 = 265.0;
const GATE_NS_PER_PKT: f64 = 277.0;

/// System allocator wrapper counting every allocation, so the zero-alloc
/// claims are measured in-process rather than asserted.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const BURST: usize = 64;

/// A MazuNAT deployment with one warm outbound flow; returns the
/// deployment plus an ACK packet of that flow (a pure fast-path probe).
fn warm_nat() -> (Deployment, Packet) {
    let nat = mazunat::mazunat();
    let compiled = compile(&nat.prog, &SwitchModel::tofino_like()).unwrap();
    let mut d =
        Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated()).unwrap();
    let t = FiveTuple {
        saddr: 0x0A00_0009,
        daddr: 0x0808_0404,
        sport: 50_123,
        dport: 443,
        proto: IpProtocol::Tcp,
    };
    let syn = PacketBuilder::tcp(t, TcpFlags(TcpFlags::SYN), 200).build(PortId(INTERNAL_PORT));
    d.inject(syn).unwrap();
    let probe = PacketBuilder::tcp(t, TcpFlags(TcpFlags::ACK), 200).build(PortId(INTERNAL_PORT));
    let before = d.stats.slow_path;
    d.inject(probe.clone()).unwrap();
    assert_eq!(d.stats.slow_path, before, "probe must stay on the switch");
    (d, probe)
}

/// `(median, best, allocs/pkt)` of the warm batch drain: pre-built bursts
/// of uniquely-owned packets through one reused emissions buffer, the
/// allocation counter read around the timed region only.
fn time_warm_drain(
    d: &mut Deployment,
    probe: &Packet,
    iters: u64,
    trials: usize,
) -> (f64, f64, f64) {
    let bursts_per_trial = (iters as usize / BURST).max(8);
    let mut out: Vec<(PortId, Packet)> = Vec::with_capacity(BURST * 2);
    let warm: Vec<Packet> = (0..BURST).map(|_| probe.deep_clone()).collect();
    d.inject_batch_into(warm, &mut out).unwrap();

    let mut runs: Vec<u64> = Vec::with_capacity(trials);
    let mut total_allocs = 0u64;
    let mut total_pkts = 0u64;
    for _ in 0..trials {
        let mut bursts: Vec<Vec<Packet>> = (0..bursts_per_trial)
            .map(|_| (0..BURST).map(|_| probe.deep_clone()).collect())
            .collect();
        let a0 = ALLOCS.load(Ordering::SeqCst);
        let t0 = Instant::now();
        for burst in bursts.drain(..) {
            out.clear();
            black_box(d.inject_batch_into(burst, &mut out).unwrap());
        }
        let dt = t0.elapsed().as_nanos() as u64;
        total_allocs += ALLOCS.load(Ordering::SeqCst) - a0;
        total_pkts += (bursts_per_trial * BURST) as u64;
        runs.push(dt / (bursts_per_trial * BURST) as u64);
    }
    runs.sort_unstable();
    (
        runs[runs.len() / 2] as f64,
        runs[0] as f64,
        total_allocs as f64 / total_pkts as f64,
    )
}

/// Reconstruct a sampled MazuNAT slow-path packet's journey and verify
/// the hop sequence plus the snapshot's trace/drop key families. Returns
/// `(ok, detail)`.
fn check_trace_reconstruction() -> (bool, String) {
    let nat = mazunat::mazunat();
    let compiled = compile(&nat.prog, &SwitchModel::tofino_like()).unwrap();
    let mut d =
        Deployment::new(&compiled, SwitchConfig::default(), CostModel::calibrated()).unwrap();
    d.enable_flight_recorder(1, 1024);
    let syn = PacketBuilder::tcp(
        FiveTuple {
            saddr: 0x0A00_0009,
            daddr: 0x0808_0404,
            sport: 50_123,
            dport: 443,
            proto: IpProtocol::Tcp,
        },
        TcpFlags(TcpFlags::SYN),
        200,
    )
    .build(PortId(INTERNAL_PORT));
    if d.inject(syn).is_err() {
        return (false, "slow-path inject failed".to_string());
    }
    let report = match d.trace_report() {
        Some(r) => r,
        None => return (false, "no trace report".to_string()),
    };
    let t = match report.trace(0) {
        Some(t) => t,
        None => return (false, "trace 0 missing".to_string()),
    };
    let want = [
        Hop::SwitchPre,
        Hop::Transfer,
        Hop::Server,
        Hop::Transfer,
        Hop::SwitchPost,
    ];
    if t.hop_path() != want {
        return (
            false,
            format!(
                "hop path {:?} != expected:\n{}",
                t.hop_path(),
                report.render_text()
            ),
        );
    }
    for kind in [
        EventKind::Ingress,
        EventKind::ToServer,
        EventKind::ServerRx,
        EventKind::Emit,
    ] {
        if !t.has(kind) {
            return (false, format!("missing {kind:?} event"));
        }
    }
    let snap = d.telemetry_snapshot();
    for key in [
        names::TRACE_SAMPLED,
        names::TRACE_EVENTS,
        names::TRACE_RING_CAPACITY,
        names::DROP_SWITCH_MARKED,
        names::DROP_SERVER_PROGRAM,
        names::DROP_DEPLOY_SYNC_REJECTED,
    ] {
        if snap.counter(key).is_none() {
            return (false, format!("snapshot missing {key}"));
        }
    }
    if snap.histogram(names::STAGE_SERVER_NS).map(|h| h.count) != Some(1) {
        return (false, "server stage histogram not recorded".to_string());
    }
    (true, String::new())
}

fn main() {
    let mut quick = false;
    let mut out_path: Option<String> = None;
    for a in std::env::args().skip(1) {
        if a == "--quick" {
            quick = true;
        } else {
            out_path = Some(a);
        }
    }
    let out_path = out_path.unwrap_or_else(|| "BENCH_pr7.json".to_string());
    let iters: u64 = if quick { 5_000 } else { 50_000 };
    let trials = if quick { 3 } else { 5 };

    // ---- 1. Tracing off: the PR 6 contract must hold unchanged ----------
    let (mut d_off, probe) = warm_nat();
    let (off_ns, off_best_ns, off_allocs) = time_warm_drain(&mut d_off, &probe, iters, trials);
    let off_within_gate = off_best_ns <= GATE_NS_PER_PKT;
    println!(
        "tracing off: {off_ns:.0} ns/pkt (best {off_best_ns:.0}), {off_allocs:.4} allocs/pkt \
         [PR6 baseline {PR6_BASELINE_NS_PER_PKT:.0}, gate {GATE_NS_PER_PKT:.0}]"
    );

    // ---- 2. Tracing on: 1-in-64 sampling, then worst-case 1-in-1 --------
    let (mut d_s64, probe64) = warm_nat();
    d_s64.enable_flight_recorder(64, 4096);
    let (s64_ns, s64_best_ns, s64_allocs) = time_warm_drain(&mut d_s64, &probe64, iters, trials);
    println!(
        "tracing 1-in-64: {s64_ns:.0} ns/pkt (best {s64_best_ns:.0}), {s64_allocs:.4} allocs/pkt"
    );

    let (mut d_s1, probe1) = warm_nat();
    d_s1.enable_flight_recorder(1, 4096);
    let (s1_ns, s1_best_ns, s1_allocs) = time_warm_drain(&mut d_s1, &probe1, iters, trials);
    println!("tracing 1-in-1: {s1_ns:.0} ns/pkt (best {s1_best_ns:.0}), {s1_allocs:.4} allocs/pkt");

    let zero_alloc = off_allocs == 0.0 && s64_allocs == 0.0 && s1_allocs == 0.0;
    if !zero_alloc {
        eprintln!(
            "warm drain allocated (off {off_allocs}, 1-in-64 {s64_allocs}, 1-in-1 {s1_allocs})"
        );
    }
    if !off_within_gate {
        eprintln!(
            "tracing-off fast path {off_best_ns:.0} ns/pkt exceeds the {GATE_NS_PER_PKT:.0} gate"
        );
    }

    // ---- 3. Trace reconstruction + telemetry keys -----------------------
    let (trace_ok, trace_detail) = check_trace_reconstruction();
    if trace_ok {
        println!("trace reconstruction: OK (switch.pre -> transfer -> server -> transfer -> switch.post)");
    } else {
        eprintln!("trace reconstruction FAILED: {trace_detail}");
    }

    // ---- JSON -----------------------------------------------------------
    let overhead_1_in_64 = s64_best_ns / off_best_ns;
    let overhead_1_in_1 = s1_best_ns / off_best_ns;
    let mut json = String::new();
    let _ = writeln!(json, "{{\n  \"bench\": \"pr7\",\n  \"quick\": {quick},");
    let _ = writeln!(
        json,
        "  \"tracing_off\": {{\"ns_per_pkt\": {off_ns:.1}, \"best_ns_per_pkt\": {off_best_ns:.1}, \
         \"allocs_per_pkt\": {off_allocs:.4}, \"pr6_baseline_ns_per_pkt\": {PR6_BASELINE_NS_PER_PKT:.0}, \
         \"gate_ns_per_pkt\": {GATE_NS_PER_PKT:.0}, \"within_gate\": {off_within_gate}}},"
    );
    let _ = writeln!(
        json,
        "  \"tracing_1_in_64\": {{\"ns_per_pkt\": {s64_ns:.1}, \"best_ns_per_pkt\": {s64_best_ns:.1}, \
         \"allocs_per_pkt\": {s64_allocs:.4}, \"overhead_vs_off\": {overhead_1_in_64:.3}}},"
    );
    let _ = writeln!(
        json,
        "  \"tracing_1_in_1\": {{\"ns_per_pkt\": {s1_ns:.1}, \"best_ns_per_pkt\": {s1_best_ns:.1}, \
         \"allocs_per_pkt\": {s1_allocs:.4}, \"overhead_vs_off\": {overhead_1_in_1:.3}}},"
    );
    let _ = writeln!(
        json,
        "  \"zero_alloc\": {zero_alloc},\n  \"trace_reconstruction_ok\": {trace_ok},"
    );
    json.push_str("  \"telemetry\": ");
    // The 1-in-1 deployment's snapshot carries every key family this PR
    // introduces — the keys CI greps for.
    let snap = d_s1.telemetry_snapshot();
    for line in snap.to_json().lines() {
        json.push_str(line);
        json.push('\n');
        json.push_str("  ");
    }
    while json.ends_with(' ') {
        json.pop();
    }
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_pr7.json");
    println!("wrote {out_path}");
    if !off_within_gate || !zero_alloc || !trace_ok {
        std::process::exit(1);
    }
}
