//! Ablation for §7 "Reducing memory usage": the table-cache extension.
//!
//! The load balancer's connection table is replaced by a switch-side FIFO
//! cache of varying capacity; a Zipf-ish flow popularity mix is replayed
//! through the deployment and the resulting cache-miss (server-replay)
//! rate and switch-memory footprint are reported. The paper left this as
//! future work; this implements it and measures the trade-off it
//! hypothesized: switch SRAM ↘ vs server load ↗.

use gallium_bench::row;
use gallium_core::{compile, Deployment};
use gallium_middleboxes::lb::load_balancer;
use gallium_net::{FiveTuple, IpProtocol, PacketBuilder, PortId, TcpFlags};
use gallium_partition::SwitchModel;
use gallium_server::CostModel;
use gallium_switchsim::SwitchConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let flows = 512u32;
    let packets = 20_000u32;
    let mut rng = StdRng::seed_from_u64(9);

    let widths = [12usize, 14, 14, 16, 16];
    println!(
        "{}",
        row(
            &[
                "Cache".into(),
                "SRAM (KB)".into(),
                "MissRate".into(),
                "ServerPkts/1k".into(),
                "Consistent".into(),
            ],
            &widths
        )
    );

    for cache_entries in [64usize, 128, 256, 512, 1024] {
        let lb = load_balancer();
        let compiled = compile(&lb.prog, &SwitchModel::tofino_like()).unwrap();
        let mut d = Deployment::new_cached(
            &compiled,
            SwitchConfig::default(),
            CostModel::calibrated(),
            &[(lb.conn, cache_entries)],
        )
        .unwrap();
        let backends = lb.backends;
        d.configure(|s| {
            s.vec_set_all(backends, vec![1, 2, 3, 4]).unwrap();
        })
        .unwrap();

        // Zipf-flavoured popularity: a few hot flows, a long cold tail.
        for _ in 0..packets {
            let u: f64 = rng.gen();
            let idx = ((flows as f64).powf(u) - 1.0) as u32; // log-uniform rank
            let t = FiveTuple {
                saddr: 0x0A00_0000 + idx,
                daddr: 0x0A00_00FE,
                sport: 5000 + (idx % 1000) as u16,
                dport: 80,
                proto: IpProtocol::Tcp,
            };
            let pkt = PacketBuilder::tcp(t, TcpFlags(TcpFlags::ACK), 200).build(PortId(1));
            d.inject(pkt).unwrap();
        }

        let entry_bits = 104 + 32; // (32+32+32+8) key + 32 value
        let sram_kb = cache_entries * entry_bits / 8 / 1024;
        let miss_rate = d.switch.stats.cache_misses as f64 / d.stats.injected as f64;
        let per_1k = 1000.0 * d.stats.slow_path as f64 / d.stats.injected as f64;
        println!(
            "{}",
            row(
                &[
                    cache_entries.to_string(),
                    sram_kb.to_string(),
                    format!("{:.1}%", 100.0 * miss_rate),
                    format!("{per_1k:.1}"),
                    d.replicated_consistent().to_string(),
                ],
                &widths
            )
        );
    }
    println!();
    println!(
        "Full annotation needs 65536 entries ({} KB of SRAM); the cache trades",
        65536 * (104 + 32) / 8 / 1024
    );
    println!("that footprint against server replays on the cold tail.");
}
