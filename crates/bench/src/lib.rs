//! # gallium-bench — the evaluation harness
//!
//! One binary per table/figure of the paper's §6 (see DESIGN.md's
//! experiment index):
//!
//! | target | regenerates |
//! |---|---|
//! | `table1` | Table 1 — lines of code before/after compilation |
//! | `fig7`   | Figure 7 — microbenchmark throughput vs packet size |
//! | `table2` | Table 2 — end-to-end latency comparison |
//! | `table3` | Table 3 — control-plane update latency |
//! | `fig8`   | Figure 8 — realistic-workload throughput (+ fast-path stats) |
//! | `fig9`   | Figure 9 — flow completion time by flow-size bin |
//! | `ablation_costmodel` | §7 cost-model discussion — lookup-weighted vs count-maximizing |
//! | `ablation_sync` | §4.3.3 — atomic update vs naive immediate writes |
//! | `ablation_constraints` | §4.2.2 — offload vs switch-resource sweep |
//!
//! plus two Criterion suites (`cargo bench`): `compiler` (dependency
//! extraction, labeling, end-to-end compilation) and `dataplane`
//! (per-packet switch processing, server slow path, state-sync batches).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gallium_sim::{MbKind, MbProfile};
use gallium_telemetry::TelemetrySnapshot;

/// Print `snap` as the run's single machine-readable artifact, fenced by
/// a marker line so scripts can split it from the human-readable tables.
pub fn emit_snapshot(snap: &TelemetrySnapshot) {
    println!("--- telemetry snapshot (json) ---");
    print!("{}", snap.to_json());
}

/// Render a row of fixed-width columns.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Format Gbps with one decimal.
pub fn gbps(v: f64) -> String {
    format!("{v:.1}")
}

/// Format nanoseconds as microseconds with two decimals.
pub fn us(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1000.0)
}

/// Profile all five middleboxes at `frame_len`, in Table 1 order.
pub fn all_profiles(frame_len: usize) -> Vec<MbProfile> {
    MbKind::ALL
        .iter()
        .map(|k| gallium_sim::profile::profile_middlebox(*k, frame_len))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(gbps(93.456), "93.5");
        assert_eq!(us(15_980), "15.98");
        assert_eq!(row(&["a".into(), "bb".into()], &[3, 4]), "  a    bb");
    }
}
