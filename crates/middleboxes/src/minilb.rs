//! MiniLB — the running example of §4.
//!
//! "MiniLB uses consistent hashing over the source and destination IP
//! addresses to assign incoming TCP connections to a list of server
//! backends … stores the mapping from existing connections to backends and
//! steers packets using this mapping. For simplicity, MiniLB does not
//! garbage collect completed connections."

use gallium_mir::{BinOp, FuncBuilder, HeaderField, Program, StateId, StateStore};

/// MiniLB plus the handles needed to configure and inspect it.
#[derive(Debug, Clone)]
pub struct MiniLb {
    /// The program.
    pub prog: Program,
    /// The connection-consistency map (`map` in the paper's listing).
    pub map: StateId,
    /// The backend list.
    pub backends: StateId,
}

/// Build MiniLB. The generated IR matches the paper's C++ listing
/// statement for statement (Figure 3's dependency graph derives from it).
pub fn minilb() -> MiniLb {
    let mut b = FuncBuilder::new("minilb");
    let map = b.decl_map("map", vec![16], vec![32], Some(65536));
    let backends = b.decl_vector("backends", 32, 16);

    // uint32_t hash32 = ip->saddr ^ ip->daddr;
    let saddr = b.read_field(HeaderField::IpSaddr);
    let daddr = b.read_field(HeaderField::IpDaddr);
    let hash32 = b.bin(BinOp::Xor, saddr, daddr);
    // uint16_t key = (uint16_t)(hash32 & 0xFFFF);
    let mask = b.cnst(0xFFFF, 32);
    let low = b.bin(BinOp::And, hash32, mask);
    let key = b.cast(low, 16);
    // uint32_t *bk_addr = map.find(&key);
    let res = b.map_get(map, vec![key]);
    let null = b.is_null(res);
    let hit = b.new_block();
    let miss = b.new_block();
    b.branch(null, miss, hit);

    // if (bk_addr != NULL) { ip->daddr = *bk_addr; pkt->send(); }
    b.switch_to(hit);
    let bk = b.extract(res, 0);
    b.write_field(HeaderField::IpDaddr, bk);
    b.send();
    b.ret();

    // else { idx = hash32 % backends.size(); bk = backends[idx];
    //        ip->daddr = bk; map.insert(&key, &bk); pkt->send(); }
    b.switch_to(miss);
    let len = b.vec_len(backends);
    let idx = b.bin(BinOp::Mod, hash32, len);
    let bk2 = b.vec_get(backends, idx);
    b.write_field(HeaderField::IpDaddr, bk2);
    b.map_put(map, vec![key], vec![bk2]);
    b.send();
    b.ret();

    let prog = b.finish().expect("minilb is well-formed");
    MiniLb {
        map: prog.state_by_name("map").unwrap(),
        backends: prog.state_by_name("backends").unwrap(),
        prog,
    }
}

impl MiniLb {
    /// Install the backend list.
    pub fn configure(&self, store: &mut StateStore, backends: &[u32]) {
        store
            .vec_set_all(
                self.backends,
                backends.iter().map(|b| u64::from(*b)).collect(),
            )
            .expect("backends vector declared");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gallium_mir::interp::read_header_field;
    use gallium_mir::Interpreter;
    use gallium_net::{FiveTuple, IpProtocol, PacketBuilder, PortId, TcpFlags};

    fn pkt(saddr: u32, daddr: u32) -> gallium_net::Packet {
        PacketBuilder::tcp(
            FiveTuple {
                saddr,
                daddr,
                sport: 10,
                dport: 80,
                proto: IpProtocol::Tcp,
            },
            TcpFlags(TcpFlags::ACK),
            120,
        )
        .build(PortId(1))
    }

    #[test]
    fn connection_consistency() {
        let lb = minilb();
        let mut store = StateStore::new(&lb.prog.states);
        lb.configure(
            &mut store,
            &[0xC0A80001, 0xC0A80002, 0xC0A80003, 0xC0A80004],
        );
        let interp = Interpreter::new(&lb.prog);
        // Many packets of one flow all land on one backend.
        let mut first = None;
        for _ in 0..5 {
            let r = interp.run(&mut pkt(77, 99), &mut store, 0).unwrap();
            let d = read_header_field(r.sent().unwrap().bytes(), HeaderField::IpDaddr);
            match first {
                None => first = Some(d),
                Some(f) => assert_eq!(f, d),
            }
        }
        assert_eq!(store.map_len(lb.map).unwrap(), 1);
    }

    #[test]
    fn different_flows_spread() {
        let lb = minilb();
        let mut store = StateStore::new(&lb.prog.states);
        lb.configure(&mut store, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let interp = Interpreter::new(&lb.prog);
        let mut seen = std::collections::HashSet::new();
        for i in 0..64u32 {
            let r = interp
                .run(&mut pkt(i.wrapping_mul(7919), 0x0B000001), &mut store, 0)
                .unwrap();
            seen.insert(read_header_field(
                r.sent().unwrap().bytes(),
                HeaderField::IpDaddr,
            ));
        }
        assert!(seen.len() >= 4, "spread over {} backends", seen.len());
    }
}
