//! # gallium-middleboxes — the evaluated middleboxes
//!
//! The five Click-based middleboxes of the paper's evaluation (§6.1), plus
//! the MiniLB running example of §4, expressed against the Click-style
//! frontend / MIR builder:
//!
//! | Middlebox | Paper behaviour | Module |
//! |---|---|---|
//! | MiniLB | consistent-hash load balancer, the §4 worked example | [`minilb`] |
//! | MazuNAT | bidirectional NAT with counter-based port allocation | [`mazunat`] |
//! | L4 load balancer | five-tuple hashing + connection table + RST/FIN GC + idle timeout | [`lb`] |
//! | Firewall | five-tuple whitelist, both directions | [`firewall`] |
//! | Transparent proxy | TCP destination-port redirect to a web proxy | [`proxy`] |
//! | Trojan detector | SSH → HTTP/FTP download → IRC sequence detection | [`trojan`] |
//! | Prefix router | LPM next-hop selection (§7 extension, not in the paper's set) | [`router`] |
//!
//! Every constructor returns a validated [`gallium_mir::Program`] plus a
//! typed config handle for installing rules/backends, so tests, examples,
//! and benchmarks share identical artifacts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod firewall;
pub mod lb;
pub mod mazunat;
pub mod minilb;
pub mod proxy;
pub mod router;
pub mod trojan;

/// Conventional switch port for the internal network (NAT/firewall).
pub const INTERNAL_PORT: u16 = 1;
/// Conventional switch port for the external network.
pub const EXTERNAL_PORT: u16 = 2;

/// All five evaluated middleboxes (paper Table 1 order), as
/// `(name, program)` pairs — the iteration the benches and Table 1 use.
pub fn all_evaluated() -> Vec<(&'static str, gallium_mir::Program)> {
    vec![
        ("MazuNAT", mazunat::mazunat().prog),
        ("Load Balancer", lb::load_balancer().prog),
        ("Firewall", firewall::firewall().prog),
        (
            "Proxy",
            proxy::proxy(gallium_net::ipv4::parse_addr("10.9.9.9").unwrap(), 3128).prog,
        ),
        ("Trojan Detector", trojan::trojan_detector().prog),
    ]
}
