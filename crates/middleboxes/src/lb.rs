//! The L4 load balancer (§6.1).
//!
//! "It uses the hash value of the five-tuple … to determine the backend
//! server … uses a map to keep track of the assigned flows … garbage
//! collects finished connections by intercepting TCP control packets, such
//! as RST and FIN. The L4 load balancer also has a time-out mechanism:
//! idle connections are garbage-collected after 5 minutes."
//!
//! The per-packet program steers data packets of known flows on the
//! switch; new flows and RST/FIN packets visit the server (where the map
//! is updated and the idle clock is stamped). The idle-timeout sweep is an
//! out-of-band control loop — it is not on any packet path, exactly as a
//! software LB would run it from a timer — exposed as [`LoadBalancer::gc_expired`].

use gallium_mir::{BinOp, FuncBuilder, HeaderField, Program, StateId, StateStore};
use gallium_net::TcpFlags;

/// Idle timeout: 5 minutes, in nanoseconds.
pub const IDLE_TIMEOUT_NS: u64 = 300_000_000_000;

/// The load balancer plus its state handles.
#[derive(Debug, Clone)]
pub struct LoadBalancer {
    /// The program.
    pub prog: Program,
    /// Connection-consistency map: five-tuple → backend.
    pub conn: StateId,
    /// Last-activity map (server only): five-tuple → ns timestamp.
    pub expiry: StateId,
    /// Backend list.
    pub backends: StateId,
}

/// Build the L4 load balancer.
pub fn load_balancer() -> LoadBalancer {
    let mut b = FuncBuilder::new("l4lb");
    // Key: (saddr, daddr, sport<<16|dport, proto).
    let conn = b.decl_map("conn", vec![32, 32, 32, 8], vec![32], Some(65536));
    let expiry = b.decl_map("expiry", vec![32, 32, 32, 8], vec![64], None);
    let backends = b.decl_vector("backends", 32, 64);

    let saddr = b.read_field(HeaderField::IpSaddr);
    let daddr = b.read_field(HeaderField::IpDaddr);
    let sport = b.read_field(HeaderField::SrcPort);
    let dport = b.read_field(HeaderField::DstPort);
    let proto = b.read_field(HeaderField::IpProto);
    let sixteen = b.cnst(16, 16);
    let sport32 = b.cast(sport, 32);
    let sport_hi = b.bin(BinOp::Shl, sport32, sixteen);
    let dport32 = b.cast(dport, 32);
    let ports = b.bin(BinOp::Or, sport_hi, dport32);

    // Control packet? (RST or FIN tears the connection down.)
    let flags = b.read_field(HeaderField::TcpFlags);
    let ctrl_mask = b.cnst(u64::from(TcpFlags::RST | TcpFlags::FIN), 8);
    let ctrl_bits = b.bin(BinOp::And, flags, ctrl_mask);
    let zero8 = b.cnst(0, 8);
    let is_ctrl = b.bin(BinOp::Ne, ctrl_bits, zero8);

    let res = b.map_get(conn, vec![saddr, daddr, ports, proto]);
    let null = b.is_null(res);

    let ctrl_bb = b.new_block();
    let data_bb = b.new_block();
    b.branch(is_ctrl, ctrl_bb, data_bb);

    // RST/FIN: remove the flow (server) and forward the packet.
    b.switch_to(ctrl_bb);
    b.map_del(conn, vec![saddr, daddr, ports, proto]);
    b.map_del(expiry, vec![saddr, daddr, ports, proto]);
    b.send();
    b.ret();

    // Data packet.
    b.switch_to(data_bb);
    let hit_bb = b.new_block();
    let miss_bb = b.new_block();
    b.branch(null, miss_bb, hit_bb);

    // Known flow: steer on the switch.
    b.switch_to(hit_bb);
    let bk = b.extract(res, 0);
    b.write_field(HeaderField::IpDaddr, bk);
    b.update_checksum();
    b.send();
    b.ret();

    // New flow: consistent-hash a backend, record it (server).
    b.switch_to(miss_bb);
    let h = b.hash(vec![saddr, daddr, ports, proto], 32);
    let len = b.vec_len(backends);
    let idx = b.bin(BinOp::Mod, h, len);
    let bk2 = b.vec_get(backends, idx);
    b.map_put(conn, vec![saddr, daddr, ports, proto], vec![bk2]);
    let now = b.now();
    b.map_put(expiry, vec![saddr, daddr, ports, proto], vec![now]);
    b.write_field(HeaderField::IpDaddr, bk2);
    b.update_checksum();
    b.send();
    b.ret();

    let prog = b.finish().expect("l4lb is well-formed");
    LoadBalancer {
        conn: prog.state_by_name("conn").unwrap(),
        expiry: prog.state_by_name("expiry").unwrap(),
        backends: prog.state_by_name("backends").unwrap(),
        prog,
    }
}

impl LoadBalancer {
    /// Install the backend list.
    pub fn configure(&self, store: &mut StateStore, backends: &[u32]) {
        store
            .vec_set_all(
                self.backends,
                backends.iter().map(|b| u64::from(*b)).collect(),
            )
            .expect("backends vector declared");
    }

    /// Out-of-band idle-timeout sweep: remove connections whose last
    /// activity is more than [`IDLE_TIMEOUT_NS`] before `now_ns`. Returns
    /// the keys removed (so a deployment can push the deletions to the
    /// switch through the write-back protocol).
    pub fn gc_expired(&self, store: &mut StateStore, now_ns: u64) -> Vec<Vec<u64>> {
        let mut removed = Vec::new();
        for (key, val) in store.map_entries(self.expiry).expect("expiry declared") {
            let last = val[0];
            if now_ns.saturating_sub(last) > IDLE_TIMEOUT_NS {
                store.map_del(self.conn, &key).expect("conn declared");
                store.map_del(self.expiry, &key).expect("expiry declared");
                removed.push(key);
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gallium_mir::interp::read_header_field;
    use gallium_mir::Interpreter;
    use gallium_net::{FiveTuple, IpProtocol, PacketBuilder, PortId};

    fn pkt(sport: u16, flags: u8) -> gallium_net::Packet {
        PacketBuilder::tcp(
            FiveTuple {
                saddr: 0x0A000001,
                daddr: 0x0A0000FE,
                sport,
                dport: 443,
                proto: IpProtocol::Tcp,
            },
            TcpFlags(flags),
            150,
        )
        .build(PortId(1))
    }

    #[test]
    fn assigns_and_sticks() {
        let lb = load_balancer();
        let mut store = StateStore::new(&lb.prog.states);
        lb.configure(&mut store, &[11, 22, 33]);
        let interp = Interpreter::new(&lb.prog);
        let r1 = interp
            .run(&mut pkt(1000, TcpFlags::ACK), &mut store, 0)
            .unwrap();
        let d1 = read_header_field(r1.sent().unwrap().bytes(), HeaderField::IpDaddr);
        assert!([11, 22, 33].contains(&d1));
        let r2 = interp
            .run(&mut pkt(1000, TcpFlags::ACK), &mut store, 1)
            .unwrap();
        let d2 = read_header_field(r2.sent().unwrap().bytes(), HeaderField::IpDaddr);
        assert_eq!(d1, d2);
        assert_eq!(store.map_len(lb.conn).unwrap(), 1);
    }

    #[test]
    fn fin_tears_down() {
        let lb = load_balancer();
        let mut store = StateStore::new(&lb.prog.states);
        lb.configure(&mut store, &[11, 22, 33]);
        let interp = Interpreter::new(&lb.prog);
        interp
            .run(&mut pkt(1000, TcpFlags::ACK), &mut store, 0)
            .unwrap();
        assert_eq!(store.map_len(lb.conn).unwrap(), 1);
        let r = interp
            .run(&mut pkt(1000, TcpFlags::FIN | TcpFlags::ACK), &mut store, 1)
            .unwrap();
        assert!(r.sent().is_some(), "FIN is forwarded");
        assert_eq!(store.map_len(lb.conn).unwrap(), 0);
        assert_eq!(store.map_len(lb.expiry).unwrap(), 0);
    }

    #[test]
    fn rst_tears_down() {
        let lb = load_balancer();
        let mut store = StateStore::new(&lb.prog.states);
        lb.configure(&mut store, &[11]);
        let interp = Interpreter::new(&lb.prog);
        interp
            .run(&mut pkt(1000, TcpFlags::ACK), &mut store, 0)
            .unwrap();
        interp
            .run(&mut pkt(1000, TcpFlags::RST), &mut store, 1)
            .unwrap();
        assert_eq!(store.map_len(lb.conn).unwrap(), 0);
    }

    #[test]
    fn idle_timeout_sweep() {
        let lb = load_balancer();
        let mut store = StateStore::new(&lb.prog.states);
        lb.configure(&mut store, &[11]);
        let interp = Interpreter::new(&lb.prog);
        interp
            .run(&mut pkt(1000, TcpFlags::ACK), &mut store, 0)
            .unwrap();
        interp
            .run(&mut pkt(2000, TcpFlags::ACK), &mut store, IDLE_TIMEOUT_NS)
            .unwrap();
        // Sweep at a time where only the first flow is expired.
        let removed = lb.gc_expired(&mut store, IDLE_TIMEOUT_NS + 2);
        assert_eq!(removed.len(), 1);
        assert_eq!(store.map_len(lb.conn).unwrap(), 1);
        // Much later, the second goes too.
        let removed = lb.gc_expired(&mut store, 3 * IDLE_TIMEOUT_NS);
        assert_eq!(removed.len(), 1);
        assert_eq!(store.map_len(lb.conn).unwrap(), 0);
    }

    #[test]
    fn udp_flows_balanced_too() {
        let lb = load_balancer();
        let mut store = StateStore::new(&lb.prog.states);
        lb.configure(&mut store, &[11, 22]);
        let interp = Interpreter::new(&lb.prog);
        let udp = PacketBuilder::udp(
            FiveTuple {
                saddr: 1,
                daddr: 2,
                sport: 53,
                dport: 53,
                proto: IpProtocol::Udp,
            },
            90,
        )
        .build(PortId(1));
        let r = interp.run(&mut udp.clone(), &mut store, 0).unwrap();
        let d = read_header_field(r.sent().unwrap().bytes(), HeaderField::IpDaddr);
        assert!([11, 22].contains(&d));
    }
}
