//! A longest-prefix-match policy router — the §7 extension exercised
//! end to end.
//!
//! The paper notes that "the longest prefix matching … do not exist in
//! software middleboxes" written against Click's HashMap/Vector API, which
//! is why the original prototype never emits LPM tables. This middlebox is
//! the converse experiment: a program written *against* the LPM
//! abstraction, which Gallium offloads to a native P4 `lpm` match-kind
//! table. Behaviour: look up the destination address in a routing table;
//! on a hit rewrite the Ethernet destination to the next hop's MAC and
//! decrement the TTL; on a miss (no default route installed) drop.

use gallium_mir::{BinOp, FuncBuilder, HeaderField, Program, StateId, StateStore};

/// The router plus its state handle.
#[derive(Debug, Clone)]
pub struct PrefixRouter {
    /// The program.
    pub prog: Program,
    /// The routing table: IPv4 prefix → next-hop MAC (48 bits).
    pub routes: StateId,
}

/// Build the LPM policy router.
pub fn prefix_router() -> PrefixRouter {
    let mut b = FuncBuilder::new("prefix_router");
    let routes = b.decl_lpm("routes", 32, vec![48], Some(4096));

    let daddr = b.read_field(HeaderField::IpDaddr);
    let hit = b.lpm_get(routes, daddr);
    let null = b.is_null(hit);
    let drop_bb = b.new_block();
    let fwd_bb = b.new_block();
    b.branch(null, drop_bb, fwd_bb);

    b.switch_to(fwd_bb);
    let next_hop = b.extract(hit, 0);
    b.write_field(HeaderField::EthDst, next_hop);
    let ttl = b.read_field(HeaderField::IpTtl);
    let one = b.cnst(1, 8);
    let new_ttl = b.bin(BinOp::Sub, ttl, one);
    b.write_field(HeaderField::IpTtl, new_ttl);
    b.update_checksum();
    b.send();
    b.ret();

    b.switch_to(drop_bb);
    b.drop_pkt();
    b.ret();

    let prog = b.finish().expect("router is well-formed");
    PrefixRouter {
        routes: prog.state_by_name("routes").unwrap(),
        prog,
    }
}

impl PrefixRouter {
    /// Install a route: traffic to `prefix`/`len` goes to `next_hop_mac`.
    pub fn add_route(&self, store: &mut StateStore, prefix: u32, len: u8, next_hop_mac: u64) {
        store
            .lpm_put(self.routes, u64::from(prefix), len, vec![next_hop_mac])
            .expect("routes declared");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gallium_mir::interp::read_header_field;
    use gallium_mir::Interpreter;
    use gallium_net::ipv4::parse_addr;
    use gallium_net::{FiveTuple, IpProtocol, PacketBuilder, PortId, TcpFlags};

    fn pkt(daddr: u32) -> gallium_net::Packet {
        PacketBuilder::tcp(
            FiveTuple {
                saddr: 1,
                daddr,
                sport: 9,
                dport: 80,
                proto: IpProtocol::Tcp,
            },
            TcpFlags(TcpFlags::ACK),
            100,
        )
        .build(PortId(1))
    }

    fn configured() -> (PrefixRouter, StateStore) {
        let r = prefix_router();
        let mut store = StateStore::new(&r.prog.states);
        r.add_route(&mut store, parse_addr("10.0.0.0").unwrap(), 8, 0xAA);
        r.add_route(&mut store, parse_addr("10.1.0.0").unwrap(), 16, 0xBB);
        r.add_route(&mut store, parse_addr("10.1.2.0").unwrap(), 24, 0xCC);
        (r, store)
    }

    #[test]
    fn longest_prefix_wins() {
        let (r, mut store) = configured();
        let interp = Interpreter::new(&r.prog);
        for (dst, expect) in [
            ("10.9.9.9", 0xAAu64), // /8 only
            ("10.1.9.9", 0xBB),    // /16 beats /8
            ("10.1.2.3", 0xCC),    // /24 beats both
        ] {
            let out = interp
                .run(&mut pkt(parse_addr(dst).unwrap()), &mut store, 0)
                .unwrap();
            let mac = read_header_field(out.sent().unwrap().bytes(), HeaderField::EthDst);
            assert_eq!(mac, expect, "dst {dst}");
        }
    }

    #[test]
    fn no_route_drops_and_ttl_decrements() {
        let (r, mut store) = configured();
        let interp = Interpreter::new(&r.prog);
        let out = interp
            .run(&mut pkt(parse_addr("192.168.1.1").unwrap()), &mut store, 0)
            .unwrap();
        assert!(out.dropped());

        let out = interp
            .run(&mut pkt(parse_addr("10.0.0.1").unwrap()), &mut store, 0)
            .unwrap();
        assert_eq!(
            read_header_field(out.sent().unwrap().bytes(), HeaderField::IpTtl),
            63
        );
    }

    #[test]
    fn default_route_catches_all() {
        let (r, mut store) = configured();
        r.add_route(&mut store, 0, 0, 0xDD);
        let interp = Interpreter::new(&r.prog);
        let out = interp
            .run(&mut pkt(parse_addr("8.8.8.8").unwrap()), &mut store, 0)
            .unwrap();
        assert_eq!(
            read_header_field(out.sent().unwrap().bytes(), HeaderField::EthDst),
            0xDD
        );
    }
}
