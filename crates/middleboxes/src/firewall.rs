//! The firewall (§6.1), adapted from the Click paper's example.
//!
//! "It filters packets using a whitelist … Each entry specifies a
//! five-tuple that is allowed to go through the firewall. When a packet
//! arrives, it is dropped if its five-tuple cannot be found in the
//! whitelist." The generated P4 program "contains two match-action tables
//! to filter the traffic from both directions" (§6.2); the non-offloaded
//! code is only rule construction and insertion — every packet takes the
//! fast path.

use crate::INTERNAL_PORT;
use gallium_mir::{BinOp, FuncBuilder, HeaderField, Program, StateId, StateStore};
use gallium_net::FiveTuple;

/// The firewall plus its state handles.
#[derive(Debug, Clone)]
pub struct Firewall {
    /// The program.
    pub prog: Program,
    /// Whitelist for internal→external traffic.
    pub allow_out: StateId,
    /// Whitelist for external→internal traffic.
    pub allow_in: StateId,
}

/// Build the firewall.
pub fn firewall() -> Firewall {
    let mut b = FuncBuilder::new("firewall");
    // Key: (saddr, daddr, sport<<16|dport, proto) → presence marker.
    let allow_out = b.decl_map("allow_out", vec![32, 32, 32, 8], vec![8], Some(16384));
    let allow_in = b.decl_map("allow_in", vec![32, 32, 32, 8], vec![8], Some(16384));

    let saddr = b.read_field(HeaderField::IpSaddr);
    let daddr = b.read_field(HeaderField::IpDaddr);
    let sport = b.read_field(HeaderField::SrcPort);
    let dport = b.read_field(HeaderField::DstPort);
    let proto = b.read_field(HeaderField::IpProto);
    let sixteen = b.cnst(16, 16);
    let sport32 = b.cast(sport, 32);
    let sport_hi = b.bin(BinOp::Shl, sport32, sixteen);
    let dport32 = b.cast(dport, 32);
    let ports = b.bin(BinOp::Or, sport_hi, dport32);

    let ingress = b.read_port();
    let internal = b.cnst(u64::from(INTERNAL_PORT), 16);
    let from_internal = b.bin(BinOp::Eq, ingress, internal);

    let out_dir = b.new_block();
    let in_dir = b.new_block();
    b.branch(from_internal, out_dir, in_dir);

    // Each direction consults its own table (Constraint 3: one access per
    // state per traversal).
    for (dir_block, table) in [(out_dir, allow_out), (in_dir, allow_in)] {
        b.switch_to(dir_block);
        let res = b.map_get(table, vec![saddr, daddr, ports, proto]);
        let null = b.is_null(res);
        let drop_bb = b.new_block();
        let pass_bb = b.new_block();
        b.branch(null, drop_bb, pass_bb);
        b.switch_to(pass_bb);
        b.send();
        b.ret();
        b.switch_to(drop_bb);
        b.drop_pkt();
        b.ret();
    }

    let prog = b.finish().expect("firewall is well-formed");
    Firewall {
        allow_out: prog.state_by_name("allow_out").unwrap(),
        allow_in: prog.state_by_name("allow_in").unwrap(),
        prog,
    }
}

/// Pack a five-tuple into the firewall/LB key encoding.
pub fn tuple_key(t: &FiveTuple) -> Vec<u64> {
    vec![
        u64::from(t.saddr),
        u64::from(t.daddr),
        (u64::from(t.sport) << 16) | u64::from(t.dport),
        u64::from(u8::from(t.proto)),
    ]
}

impl Firewall {
    /// Whitelist `tuple` in the outbound direction and its reverse in the
    /// inbound direction (the usual stateless-firewall rule pair).
    pub fn allow(&self, store: &mut StateStore, tuple: &FiveTuple) {
        store
            .map_put(self.allow_out, tuple_key(tuple), vec![1])
            .expect("allow_out declared");
        store
            .map_put(self.allow_in, tuple_key(&tuple.reversed()), vec![1])
            .expect("allow_in declared");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EXTERNAL_PORT;
    use gallium_mir::Interpreter;
    use gallium_net::{IpProtocol, PacketBuilder, PortId, TcpFlags};

    fn tuple() -> FiveTuple {
        FiveTuple {
            saddr: 0x0A000001,
            daddr: 0x08080808,
            sport: 5000,
            dport: 443,
            proto: IpProtocol::Tcp,
        }
    }

    fn pkt(t: FiveTuple, ingress: u16) -> gallium_net::Packet {
        PacketBuilder::tcp(t, TcpFlags(TcpFlags::ACK), 100).build(PortId(ingress))
    }

    #[test]
    fn whitelisted_flow_passes_both_directions() {
        let fw = firewall();
        let mut store = StateStore::new(&fw.prog.states);
        fw.allow(&mut store, &tuple());
        let interp = Interpreter::new(&fw.prog);
        let r = interp
            .run(&mut pkt(tuple(), INTERNAL_PORT), &mut store, 0)
            .unwrap();
        assert!(r.sent().is_some());
        let r = interp
            .run(&mut pkt(tuple().reversed(), EXTERNAL_PORT), &mut store, 0)
            .unwrap();
        assert!(r.sent().is_some());
    }

    #[test]
    fn unlisted_flow_dropped() {
        let fw = firewall();
        let mut store = StateStore::new(&fw.prog.states);
        fw.allow(&mut store, &tuple());
        let interp = Interpreter::new(&fw.prog);
        let mut other = tuple();
        other.dport = 80;
        let r = interp
            .run(&mut pkt(other, INTERNAL_PORT), &mut store, 0)
            .unwrap();
        assert!(r.dropped());
    }

    #[test]
    fn direction_tables_are_independent() {
        let fw = firewall();
        let mut store = StateStore::new(&fw.prog.states);
        // Only the outbound rule, no reverse.
        store
            .map_put(fw.allow_out, tuple_key(&tuple()), vec![1])
            .unwrap();
        let interp = Interpreter::new(&fw.prog);
        assert!(interp
            .run(&mut pkt(tuple(), INTERNAL_PORT), &mut store, 0)
            .unwrap()
            .sent()
            .is_some());
        // The same tuple arriving from outside checks allow_in: dropped.
        assert!(interp
            .run(&mut pkt(tuple(), EXTERNAL_PORT), &mut store, 0)
            .unwrap()
            .dropped());
    }
}
