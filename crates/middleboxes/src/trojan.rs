//! The Trojan detector (§6.1), after De Carli et al.
//!
//! "identifies an endhost as a Trojan if the following sequence of events
//! is observed: (1) The endhost first creates an SSH connection. (2) It
//! then downloads a HTML file from a web server, or a .zip or .exe file
//! from a FTP server. (3) Finally, it generates Internet Relay Chat (IRC)
//! traffic."
//!
//! Offloading expectations from §6.2: the per-host TCP state table lives
//! on the switch; TCP control packets (which advance the state machine)
//! and data packets needing deep packet inspection visit the server; the
//! bulk of data traffic is handled entirely in the data plane.

use gallium_mir::{BinOp, FuncBuilder, HeaderField, Program, StateId, StateStore};
use gallium_net::TcpFlags;

/// Host progressed to "opened an SSH connection".
pub const STAGE_SSH: u64 = 1;
/// Host additionally downloaded suspicious content.
pub const STAGE_DOWNLOAD: u64 = 2;
/// Host additionally spoke IRC: flagged as a Trojan.
pub const STAGE_TROJAN: u64 = 3;

/// IRC service port checked in stage 3.
pub const IRC_PORT: u16 = 6667;

/// The detector plus its state handles.
#[derive(Debug, Clone)]
pub struct TrojanDetector {
    /// The program.
    pub prog: Program,
    /// Per-host state machine: host address → stage.
    pub host_state: StateId,
    /// Count of hosts flagged as Trojans.
    pub trojans: StateId,
}

/// Build the Trojan detector.
pub fn trojan_detector() -> TrojanDetector {
    let mut b = FuncBuilder::new("trojan");
    let host_state = b.decl_map("host_state", vec![32], vec![8], Some(65536));
    let trojans = b.decl_register("trojans", 32);

    // Non-TCP traffic passes.
    let proto = b.read_field(HeaderField::IpProto);
    let tcp = b.cnst(6, 8);
    let is_tcp = b.bin(BinOp::Eq, proto, tcp);
    let tcp_bb = b.new_block();
    let fwd_bb = b.new_block();
    b.branch(is_tcp, tcp_bb, fwd_bb);
    b.switch_to(fwd_bb);
    b.send();
    b.ret();

    b.switch_to(tcp_bb);
    let saddr = b.read_field(HeaderField::IpSaddr);
    let res = b.map_get(host_state, vec![saddr]);
    let null = b.is_null(res);
    let dport = b.read_field(HeaderField::DstPort);
    let flags = b.read_field(HeaderField::TcpFlags);
    let syn_mask = b.cnst(u64::from(TcpFlags::SYN), 8);
    let syn_bits = b.bin(BinOp::And, flags, syn_mask);
    let zero8 = b.cnst(0, 8);
    let is_syn = b.bin(BinOp::Ne, syn_bits, zero8);

    let ctrl_bb = b.new_block();
    let data_bb = b.new_block();
    b.branch(is_syn, ctrl_bb, data_bb);

    // ---- connection opens: advance stage 0 → 1 on SSH ------------------
    b.switch_to(ctrl_bb);
    let ssh = b.cnst(22, 16);
    let to_ssh = b.bin(BinOp::Eq, dport, ssh);
    let fresh = b.bin(BinOp::And, to_ssh, null);
    let mark_bb = b.new_block();
    let ctrl_done = b.new_block();
    b.branch(fresh, mark_bb, ctrl_done);
    b.switch_to(mark_bb);
    let one8 = b.cnst(STAGE_SSH, 8);
    b.map_put(host_state, vec![saddr], vec![one8]);
    b.send();
    b.ret();
    b.switch_to(ctrl_done);
    b.send();
    b.ret();

    // ---- data packets ----------------------------------------------------
    b.switch_to(data_bb);
    let unknown_bb = b.new_block();
    let known_bb = b.new_block();
    b.branch(null, unknown_bb, known_bb);

    // Unknown host: pure fast path.
    b.switch_to(unknown_bb);
    b.send();
    b.ret();

    b.switch_to(known_bb);
    let stage = b.extract(res, 0);
    let s1 = b.cnst(STAGE_SSH, 8);
    let at_stage1 = b.bin(BinOp::Eq, stage, s1);
    let dpi_bb = b.new_block();
    let later_bb = b.new_block();
    b.branch(at_stage1, dpi_bb, later_bb);

    // Stage 1: deep packet inspection for the download signatures.
    b.switch_to(dpi_bb);
    let m_html = b.payload_match(b"GET ");
    let m_zip = b.payload_match(b".zip");
    let m_exe = b.payload_match(b".exe");
    let m_any0 = b.bin(BinOp::Or, m_html, m_zip);
    let m_any = b.bin(BinOp::Or, m_any0, m_exe);
    let hit_bb = b.new_block();
    let dpi_done = b.new_block();
    b.branch(m_any, hit_bb, dpi_done);
    b.switch_to(hit_bb);
    let two8 = b.cnst(STAGE_DOWNLOAD, 8);
    b.map_put(host_state, vec![saddr], vec![two8]);
    b.send();
    b.ret();
    b.switch_to(dpi_done);
    b.send();
    b.ret();

    // Stage ≥ 2: IRC traffic from a stage-2 host completes the pattern.
    b.switch_to(later_bb);
    let s2 = b.cnst(STAGE_DOWNLOAD, 8);
    let at_stage2 = b.bin(BinOp::Eq, stage, s2);
    let irc = b.cnst(u64::from(IRC_PORT), 16);
    let to_irc = b.bin(BinOp::Eq, dport, irc);
    let triggered = b.bin(BinOp::And, at_stage2, to_irc);
    let flag_bb = b.new_block();
    let pass_bb = b.new_block();
    b.branch(triggered, flag_bb, pass_bb);
    b.switch_to(flag_bb);
    let three8 = b.cnst(STAGE_TROJAN, 8);
    b.map_put(host_state, vec![saddr], vec![three8]);
    let one32 = b.cnst(1, 32);
    let _ = b.reg_fetch_add(trojans, one32);
    b.send();
    b.ret();
    b.switch_to(pass_bb);
    b.send();
    b.ret();

    let prog = b.finish().expect("trojan detector is well-formed");
    TrojanDetector {
        host_state: prog.state_by_name("host_state").unwrap(),
        trojans: prog.state_by_name("trojans").unwrap(),
        prog,
    }
}

impl TrojanDetector {
    /// Current stage of `host` (0 = unseen).
    pub fn stage_of(&self, store: &StateStore, host: u32) -> u64 {
        store
            .map_get(self.host_state, &[u64::from(host)])
            .expect("host_state declared")
            .map(|v| v[0])
            .unwrap_or(0)
    }

    /// Number of hosts flagged so far.
    pub fn trojan_count(&self, store: &StateStore) -> u64 {
        store.reg_read(self.trojans).expect("trojans declared")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gallium_mir::Interpreter;
    use gallium_net::{FiveTuple, IpProtocol, PacketBuilder, PortId};

    const HOST: u32 = 0x0A000042;

    fn tcp(dport: u16, flags: u8, payload: &[u8]) -> gallium_net::Packet {
        let mut builder = PacketBuilder::tcp(
            FiveTuple {
                saddr: HOST,
                daddr: 0x08080808,
                sport: 4000,
                dport,
                proto: IpProtocol::Tcp,
            },
            TcpFlags(flags),
            100,
        );
        if !payload.is_empty() {
            builder = builder.payload(payload.to_vec());
        }
        builder.build(PortId(1))
    }

    fn run_sequence(det: &TrojanDetector, store: &mut StateStore, pkts: &[gallium_net::Packet]) {
        let interp = Interpreter::new(&det.prog);
        for p in pkts {
            interp.run(&mut p.clone(), store, 0).unwrap();
        }
    }

    #[test]
    fn full_trojan_sequence_detected() {
        let det = trojan_detector();
        let mut store = StateStore::new(&det.prog.states);
        run_sequence(
            &det,
            &mut store,
            &[
                tcp(22, TcpFlags::SYN, b""),                      // SSH open
                tcp(80, TcpFlags::ACK, b"GET /index.html"),       // download
                tcp(IRC_PORT, TcpFlags::ACK, b"NICK trojan\r\n"), // IRC
            ],
        );
        assert_eq!(det.stage_of(&store, HOST), STAGE_TROJAN);
        assert_eq!(det.trojan_count(&store), 1);
    }

    #[test]
    fn zip_download_counts() {
        let det = trojan_detector();
        let mut store = StateStore::new(&det.prog.states);
        run_sequence(
            &det,
            &mut store,
            &[
                tcp(22, TcpFlags::SYN, b""),
                tcp(21, TcpFlags::ACK, b"RETR malware.zip"),
            ],
        );
        assert_eq!(det.stage_of(&store, HOST), STAGE_DOWNLOAD);
        assert_eq!(det.trojan_count(&store), 0);
    }

    #[test]
    fn out_of_order_events_do_not_trigger() {
        let det = trojan_detector();
        let mut store = StateStore::new(&det.prog.states);
        // IRC and download before any SSH: host never advances.
        run_sequence(
            &det,
            &mut store,
            &[
                tcp(IRC_PORT, TcpFlags::ACK, b"NICK x"),
                tcp(80, TcpFlags::ACK, b"GET /index.html"),
            ],
        );
        assert_eq!(det.stage_of(&store, HOST), 0);
        // SSH then IRC (no download in between): stays at stage 1.
        run_sequence(
            &det,
            &mut store,
            &[
                tcp(22, TcpFlags::SYN, b""),
                tcp(IRC_PORT, TcpFlags::ACK, b"NICK x"),
            ],
        );
        assert_eq!(det.stage_of(&store, HOST), STAGE_SSH);
        assert_eq!(det.trojan_count(&store), 0);
    }

    #[test]
    fn innocent_bulk_traffic_untouched() {
        let det = trojan_detector();
        let mut store = StateStore::new(&det.prog.states);
        let interp = Interpreter::new(&det.prog);
        for i in 0..50u16 {
            let r = interp
                .run(
                    &mut tcp(443, TcpFlags::ACK, b"tls data"),
                    &mut store,
                    u64::from(i),
                )
                .unwrap();
            assert!(r.sent().is_some());
        }
        assert_eq!(det.stage_of(&store, HOST), 0);
        assert_eq!(store.map_len(det.host_state).unwrap(), 0);
    }
}
