//! MazuNAT — the NAT used by Mazu Networks (§6.1).
//!
//! "For traffic going from the internal to the external network, MazuNAT
//! allocates a new port and rewrites the packet header … The port
//! allocation is performed using a monotonically increasing counter.
//! MazuNAT memorizes the mapping from addresses to ports for existing
//! connections … When MazuNAT receives a packet from the external network
//! \[it\] checks if there is a corresponding mapping … If not, \[it\] drops
//! the packet."
//!
//! Offloading expectations from §6.2: both address-translation tables land
//! on the switch (replicated — the 65 536-entry annotation makes them
//! placeable), the port-allocation counter is offloaded as a P4 register
//! whose fetch-add value rides the transfer header to the server, and only
//! connection-opening packets visit the server.

use crate::INTERNAL_PORT;
use gallium_mir::{BinOp, FuncBuilder, HeaderField, Program, StateId, StateStore};

/// The externally visible NAT address.
pub const NAT_EXTERNAL_IP: u32 = 0xC0A86401; // 192.168.100.1

/// Base of the dynamically allocated port range.
pub const NAT_PORT_BASE: u16 = 1024;

/// MazuNAT plus its state handles.
#[derive(Debug, Clone)]
pub struct MazuNat {
    /// The program.
    pub prog: Program,
    /// internal five-tuple → external port.
    pub nat_out: StateId,
    /// external port → (internal addr, internal port).
    pub nat_in: StateId,
    /// Port-allocation counter.
    pub port_ctr: StateId,
}

/// Build MazuNAT.
pub fn mazunat() -> MazuNat {
    let mut b = FuncBuilder::new("mazunat");
    // Keys: (saddr, daddr, sport, dport); value: allocated external port.
    let nat_out = b.decl_map("nat_out", vec![32, 32, 16, 16], vec![16], Some(65536));
    // Key: external port; value: (internal addr, internal port).
    let nat_in = b.decl_map("nat_in", vec![16], vec![32, 16], Some(65536));
    let port_ctr = b.decl_register("port_ctr", 16);

    let ingress = b.read_port();
    let internal = b.cnst(u64::from(INTERNAL_PORT), 16);
    let from_internal = b.bin(BinOp::Eq, ingress, internal);

    let out_dir = b.new_block();
    let in_dir = b.new_block();
    b.branch(from_internal, out_dir, in_dir);

    // ---- internal → external ------------------------------------------
    b.switch_to(out_dir);
    let saddr = b.read_field(HeaderField::IpSaddr);
    let daddr = b.read_field(HeaderField::IpDaddr);
    let sport = b.read_field(HeaderField::SrcPort);
    let dport = b.read_field(HeaderField::DstPort);
    let res = b.map_get(nat_out, vec![saddr, daddr, sport, dport]);
    let null = b.is_null(res);
    let out_miss = b.new_block();
    let out_hit = b.new_block();
    b.branch(null, out_miss, out_hit);

    // Existing connection: rewrite from the mapping (fast path).
    b.switch_to(out_hit);
    let ext = b.extract(res, 0);
    let nat_ip = b.cnst(u64::from(NAT_EXTERNAL_IP), 32);
    b.write_field(HeaderField::IpSaddr, nat_ip);
    b.write_field(HeaderField::SrcPort, ext);
    b.update_checksum();
    b.send();
    b.ret();

    // New connection: allocate a port on the switch counter; the server
    // installs both directions of the mapping.
    b.switch_to(out_miss);
    let one = b.cnst(1, 16);
    let raw = b.reg_fetch_add(port_ctr, one);
    let base = b.cnst(u64::from(NAT_PORT_BASE), 16);
    let new_port = b.bin(BinOp::Add, raw, base);
    b.map_put(nat_out, vec![saddr, daddr, sport, dport], vec![new_port]);
    b.map_put(nat_in, vec![new_port], vec![saddr, sport]);
    let nat_ip2 = b.cnst(u64::from(NAT_EXTERNAL_IP), 32);
    b.write_field(HeaderField::IpSaddr, nat_ip2);
    b.write_field(HeaderField::SrcPort, new_port);
    b.update_checksum();
    b.send();
    b.ret();

    // ---- external → internal ------------------------------------------
    b.switch_to(in_dir);
    let ext_dport = b.read_field(HeaderField::DstPort);
    let back = b.map_get(nat_in, vec![ext_dport]);
    let back_null = b.is_null(back);
    let drop_bb = b.new_block();
    let in_hit = b.new_block();
    b.branch(back_null, drop_bb, in_hit);

    b.switch_to(in_hit);
    let int_addr = b.extract(back, 0);
    let int_port = b.extract(back, 1);
    b.write_field(HeaderField::IpDaddr, int_addr);
    b.write_field(HeaderField::DstPort, int_port);
    b.update_checksum();
    b.send();
    b.ret();

    b.switch_to(drop_bb);
    b.drop_pkt();
    b.ret();

    let prog = b.finish().expect("mazunat is well-formed");
    MazuNat {
        nat_out: prog.state_by_name("nat_out").unwrap(),
        nat_in: prog.state_by_name("nat_in").unwrap(),
        port_ctr: prog.state_by_name("port_ctr").unwrap(),
        prog,
    }
}

impl MazuNat {
    /// Nothing to preconfigure — mappings are learned from traffic. The
    /// helper exists for interface symmetry with the other middleboxes.
    pub fn configure(&self, _store: &mut StateStore) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EXTERNAL_PORT;
    use gallium_mir::interp::read_header_field;
    use gallium_mir::Interpreter;
    use gallium_net::{FiveTuple, IpProtocol, PacketBuilder, PortId, TcpFlags};

    fn pkt(saddr: u32, daddr: u32, sport: u16, dport: u16, ingress: u16) -> gallium_net::Packet {
        PacketBuilder::tcp(
            FiveTuple {
                saddr,
                daddr,
                sport,
                dport,
                proto: IpProtocol::Tcp,
            },
            TcpFlags(TcpFlags::ACK),
            100,
        )
        .build(PortId(ingress))
    }

    #[test]
    fn outbound_rewrites_and_remembers() {
        let nat = mazunat();
        let mut store = StateStore::new(&nat.prog.states);
        let interp = Interpreter::new(&nat.prog);

        let r = interp
            .run(
                &mut pkt(0x0A000005, 0x08080808, 5555, 80, INTERNAL_PORT),
                &mut store,
                0,
            )
            .unwrap();
        let sent = r.sent().unwrap();
        assert_eq!(
            read_header_field(sent.bytes(), HeaderField::IpSaddr),
            u64::from(NAT_EXTERNAL_IP)
        );
        let ext_port = read_header_field(sent.bytes(), HeaderField::SrcPort);
        assert_eq!(ext_port, u64::from(NAT_PORT_BASE));
        assert_eq!(store.map_len(nat.nat_out).unwrap(), 1);
        assert_eq!(store.map_len(nat.nat_in).unwrap(), 1);

        // Same connection again: same external port, no new mapping.
        let r = interp
            .run(
                &mut pkt(0x0A000005, 0x08080808, 5555, 80, INTERNAL_PORT),
                &mut store,
                1,
            )
            .unwrap();
        assert_eq!(
            read_header_field(r.sent().unwrap().bytes(), HeaderField::SrcPort),
            ext_port
        );
        assert_eq!(store.map_len(nat.nat_out).unwrap(), 1);
    }

    #[test]
    fn ports_allocated_monotonically() {
        let nat = mazunat();
        let mut store = StateStore::new(&nat.prog.states);
        let interp = Interpreter::new(&nat.prog);
        for i in 0..3u16 {
            let r = interp
                .run(
                    &mut pkt(0x0A000001, 0x08080808, 1000 + i, 80, INTERNAL_PORT),
                    &mut store,
                    0,
                )
                .unwrap();
            assert_eq!(
                read_header_field(r.sent().unwrap().bytes(), HeaderField::SrcPort),
                u64::from(NAT_PORT_BASE + i)
            );
        }
    }

    #[test]
    fn inbound_translated_back() {
        let nat = mazunat();
        let mut store = StateStore::new(&nat.prog.states);
        let interp = Interpreter::new(&nat.prog);
        // Open outbound.
        interp
            .run(
                &mut pkt(0x0A000005, 0x08080808, 5555, 80, INTERNAL_PORT),
                &mut store,
                0,
            )
            .unwrap();
        // Reply to the allocated port.
        let r = interp
            .run(
                &mut pkt(
                    0x08080808,
                    NAT_EXTERNAL_IP,
                    80,
                    NAT_PORT_BASE,
                    EXTERNAL_PORT,
                ),
                &mut store,
                1,
            )
            .unwrap();
        let sent = r.sent().unwrap();
        assert_eq!(
            read_header_field(sent.bytes(), HeaderField::IpDaddr),
            0x0A000005
        );
        assert_eq!(read_header_field(sent.bytes(), HeaderField::DstPort), 5555);
    }

    #[test]
    fn unsolicited_inbound_dropped() {
        let nat = mazunat();
        let mut store = StateStore::new(&nat.prog.states);
        let r = Interpreter::new(&nat.prog)
            .run(
                &mut pkt(0x08080808, NAT_EXTERNAL_IP, 80, 9999, EXTERNAL_PORT),
                &mut store,
                0,
            )
            .unwrap();
        assert!(r.dropped());
        assert!(r.sent().is_none());
    }
}
