//! The transparent proxy (§6.1), adapted from the Click paper's example.
//!
//! "The transparent proxy redirects traffic to a web proxy based on the
//! TCP destination port. The proxy internally keeps a list of TCP
//! destination ports. Upon receiving a packet, the proxy checks whether
//! the TCP destination port is in the list. If \[so\], instead of forwarding
//! the packet, the proxy rewrites the packet header to steer the packet to
//! a designated web proxy." Fully offloadable: one match-action table plus
//! a rewrite action (§6.2).

use gallium_mir::{BinOp, FuncBuilder, HeaderField, Program, StateId, StateStore};

/// The proxy plus its state handle and redirect target.
#[derive(Debug, Clone)]
pub struct Proxy {
    /// The program.
    pub prog: Program,
    /// The intercepted-port list (as a one-column map).
    pub ports: StateId,
    /// Redirect target address.
    pub proxy_addr: u32,
    /// Redirect target port.
    pub proxy_port: u16,
}

/// Build the transparent proxy redirecting to `proxy_addr:proxy_port`.
pub fn proxy(proxy_addr: u32, proxy_port: u16) -> Proxy {
    let mut b = FuncBuilder::new("proxy");
    let ports = b.decl_map("proxy_ports", vec![16], vec![8], Some(1024));

    // Non-TCP traffic is forwarded untouched.
    let proto = b.read_field(HeaderField::IpProto);
    let tcp = b.cnst(6, 8);
    let is_tcp = b.bin(BinOp::Eq, proto, tcp);
    let tcp_bb = b.new_block();
    let fwd_bb = b.new_block();
    b.branch(is_tcp, tcp_bb, fwd_bb);

    b.switch_to(tcp_bb);
    let dport = b.read_field(HeaderField::DstPort);
    let res = b.map_get(ports, vec![dport]);
    let null = b.is_null(res);
    let pass_bb = b.new_block();
    let redirect_bb = b.new_block();
    b.branch(null, pass_bb, redirect_bb);

    b.switch_to(redirect_bb);
    let addr = b.cnst(u64::from(proxy_addr), 32);
    let port = b.cnst(u64::from(proxy_port), 16);
    b.write_field(HeaderField::IpDaddr, addr);
    b.write_field(HeaderField::DstPort, port);
    b.update_checksum();
    b.send();
    b.ret();

    b.switch_to(pass_bb);
    b.send();
    b.ret();

    b.switch_to(fwd_bb);
    b.send();
    b.ret();

    let prog = b.finish().expect("proxy is well-formed");
    Proxy {
        ports: prog.state_by_name("proxy_ports").unwrap(),
        proxy_addr,
        proxy_port,
        prog,
    }
}

impl Proxy {
    /// Intercept `port`.
    pub fn intercept(&self, store: &mut StateStore, port: u16) {
        store
            .map_put(self.ports, vec![u64::from(port)], vec![1])
            .expect("ports map declared");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gallium_mir::interp::read_header_field;
    use gallium_mir::Interpreter;
    use gallium_net::{FiveTuple, IpProtocol, PacketBuilder, PortId, TcpFlags};

    const PROXY_IP: u32 = 0x0A090909;

    fn make() -> (Proxy, StateStore) {
        let p = proxy(PROXY_IP, 3128);
        let mut store = StateStore::new(&p.prog.states);
        p.intercept(&mut store, 80);
        p.intercept(&mut store, 8080);
        (p, store)
    }

    fn tcp(dport: u16) -> gallium_net::Packet {
        PacketBuilder::tcp(
            FiveTuple {
                saddr: 1,
                daddr: 0x08080808,
                sport: 5000,
                dport,
                proto: IpProtocol::Tcp,
            },
            TcpFlags(TcpFlags::ACK),
            100,
        )
        .build(PortId(1))
    }

    #[test]
    fn intercepted_port_redirected() {
        let (p, mut store) = make();
        let r = Interpreter::new(&p.prog)
            .run(&mut tcp(80), &mut store, 0)
            .unwrap();
        let sent = r.sent().unwrap();
        assert_eq!(
            read_header_field(sent.bytes(), HeaderField::IpDaddr),
            u64::from(PROXY_IP)
        );
        assert_eq!(read_header_field(sent.bytes(), HeaderField::DstPort), 3128);
    }

    #[test]
    fn other_ports_pass_untouched() {
        let (p, mut store) = make();
        let r = Interpreter::new(&p.prog)
            .run(&mut tcp(443), &mut store, 0)
            .unwrap();
        let sent = r.sent().unwrap();
        assert_eq!(
            read_header_field(sent.bytes(), HeaderField::IpDaddr),
            0x08080808
        );
        assert_eq!(read_header_field(sent.bytes(), HeaderField::DstPort), 443);
    }

    #[test]
    fn non_tcp_forwarded() {
        let (p, mut store) = make();
        let udp = PacketBuilder::udp(
            FiveTuple {
                saddr: 1,
                daddr: 2,
                sport: 53,
                dport: 80, // would match the list if it were TCP
                proto: IpProtocol::Udp,
            },
            80,
        )
        .build(PortId(1));
        let r = Interpreter::new(&p.prog)
            .run(&mut udp.clone(), &mut store, 0)
            .unwrap();
        assert_eq!(
            read_header_field(r.sent().unwrap().bytes(), HeaderField::IpDaddr),
            2
        );
    }
}
