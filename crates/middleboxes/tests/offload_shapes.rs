//! §6.2 "What's offloaded?" — partition-shape assertions for all five
//! middleboxes, plus deployed-vs-reference equivalence on mixed traffic.

use gallium_core::{compile, Deployment};
use gallium_middleboxes::{firewall, lb, mazunat, minilb, proxy, trojan};
use gallium_middleboxes::{EXTERNAL_PORT, INTERNAL_PORT};
use gallium_mir::interp::read_header_field;
use gallium_mir::{HeaderField, Interpreter, Op, PacketAction, Program, StateStore, ValueId};
use gallium_net::{FiveTuple, IpProtocol, Packet, PacketBuilder, PortId, TcpFlags};
use gallium_partition::{Partition, StatePlacement, SwitchModel};
use gallium_server::CostModel;
use gallium_switchsim::SwitchConfig;

fn compiled(prog: &Program) -> gallium_core::CompiledMiddlebox {
    compile(prog, &SwitchModel::tofino_like()).expect("compiles")
}

fn find_ops<F: Fn(&Op) -> bool>(prog: &Program, pred: F) -> Vec<ValueId> {
    (0..prog.func.insts.len() as u32)
        .map(ValueId)
        .filter(|v| pred(&prog.func.inst(*v).op))
        .collect()
}

#[test]
fn mazunat_offload_shape() {
    let nat = mazunat::mazunat();
    let c = compiled(&nat.prog);
    // "MazuNAT's address translation tables ... are offloaded to the
    // programmable switch" — replicated, since the server inserts.
    assert_eq!(
        c.staged.placement_of(nat.nat_out),
        StatePlacement::Replicated
    );
    assert_eq!(
        c.staged.placement_of(nat.nat_in),
        StatePlacement::Replicated
    );
    // "the counter used for port allocation is also offloaded to the
    // switch as a P4 register".
    assert_eq!(
        c.staged.placement_of(nat.port_ctr),
        StatePlacement::SwitchOnly
    );
    assert_eq!(c.p4.registers.len(), 1);
    assert_eq!(c.p4.tables.len(), 2);
    // Both lookups run in pre-processing.
    for v in find_ops(&nat.prog, |op| matches!(op, Op::MapGet { .. })) {
        assert_eq!(
            c.staged.partition_of(v),
            Partition::Pre,
            "{v} is a pre lookup"
        );
    }
    // The fetch-add runs on the switch and its value crosses to the server.
    let fadds = find_ops(&nat.prog, |op| matches!(op, Op::RegFetchAdd { .. }));
    assert_eq!(fadds.len(), 1);
    assert_eq!(c.staged.partition_of(fadds[0]), Partition::Pre);
    // Table updates stay on the server.
    for v in find_ops(&nat.prog, |op| matches!(op, Op::MapPut { .. })) {
        assert_eq!(c.staged.partition_of(v), Partition::NonOffloaded);
    }
    // Headers fit the 20-byte budget.
    c.staged.header_to_server.check_budget(20).unwrap();
    c.staged.header_to_switch.check_budget(20).unwrap();
}

#[test]
fn lb_offload_shape() {
    let lb = lb::load_balancer();
    let c = compiled(&lb.prog);
    // Connection map replicated, expiry map server-only (unannotated),
    // backends vector server-only.
    assert_eq!(c.staged.placement_of(lb.conn), StatePlacement::Replicated);
    assert_eq!(c.staged.placement_of(lb.expiry), StatePlacement::ServerOnly);
    assert_eq!(
        c.staged.placement_of(lb.backends),
        StatePlacement::ServerOnly
    );
    // The connection lookup is offloaded.
    let gets = find_ops(
        &lb.prog,
        |op| matches!(op, Op::MapGet { map, .. } if *map == lb.conn),
    );
    assert_eq!(gets.len(), 1);
    assert_eq!(c.staged.partition_of(gets[0]), Partition::Pre);
    // GC (map_del) and inserts are server work.
    for v in find_ops(&lb.prog, |op| {
        matches!(op, Op::MapPut { .. } | Op::MapDel { .. })
    }) {
        assert_eq!(c.staged.partition_of(v), Partition::NonOffloaded);
    }
}

#[test]
fn firewall_fully_offloaded_with_two_tables() {
    let fw = firewall::firewall();
    let c = compiled(&fw.prog);
    // "The P4 program generated for the firewall middlebox contains two
    // match-action tables"; all packet processing happens on the switch.
    assert_eq!(c.p4.tables.len(), 2);
    assert!(c.staged.fully_offloaded(), "no per-packet server work");
    assert_eq!(
        c.staged.placement_of(fw.allow_out),
        StatePlacement::SwitchOnly
    );
    assert_eq!(
        c.staged.placement_of(fw.allow_in),
        StatePlacement::SwitchOnly
    );
    assert!(c.staged.header_to_server.fields().is_empty());
}

#[test]
fn proxy_fully_offloaded() {
    let px = proxy::proxy(0x0A090909, 3128);
    let c = compiled(&px.prog);
    // "the pre-processing code contains one match-action table ... A packet
    // rewriting action is also included"; nothing runs on the server.
    assert_eq!(c.p4.tables.len(), 1);
    assert!(c.staged.fully_offloaded());
    assert_eq!(c.staged.placement_of(px.ports), StatePlacement::SwitchOnly);
}

#[test]
fn trojan_offload_shape() {
    let det = trojan::trojan_detector();
    let c = compiled(&det.prog);
    // "Gallium places Trojan detector's TCP flow state table on the
    // programmable switch" (replicated — server advances the stages).
    assert_eq!(
        c.staged.placement_of(det.host_state),
        StatePlacement::Replicated
    );
    let gets = find_ops(&det.prog, |op| matches!(op, Op::MapGet { .. }));
    assert_eq!(gets.len(), 1);
    assert_eq!(c.staged.partition_of(gets[0]), Partition::Pre);
    // DPI is never offloaded.
    for v in find_ops(&det.prog, |op| matches!(op, Op::PayloadMatch { .. })) {
        assert_eq!(c.staged.partition_of(v), Partition::NonOffloaded);
    }
}

#[test]
fn minilb_matches_paper_figure4() {
    let lb = minilb::minilb();
    let c = compiled(&lb.prog);
    use Partition::*;
    assert_eq!(
        c.staged.assignment,
        vec![
            Pre,
            Pre,
            Pre,
            Pre,
            Pre,
            Pre,
            Pre,
            Pre, // entry
            Pre,
            Pre,
            Pre, // hit branch
            NonOffloaded,
            NonOffloaded,
            NonOffloaded, // idx & backends[idx]
            Post,         // daddr write (miss)
            NonOffloaded, // map.insert
            Post,         // send (miss)
        ]
    );
}

// ---------------------------------------------------------------------
// Deployed-vs-reference equivalence on realistic packet mixes.
// ---------------------------------------------------------------------

struct Equiv {
    deployment: Deployment,
    reference: StateStore,
    prog: Program,
}

impl Equiv {
    fn new(prog: &Program, configure: impl Fn(&mut StateStore)) -> Self {
        let c = compiled(prog);
        let mut deployment =
            Deployment::new(&c, SwitchConfig::default(), CostModel::calibrated()).unwrap();
        deployment.configure(|s| configure(s)).unwrap();
        let mut reference = StateStore::new(&prog.states);
        configure(&mut reference);
        Equiv {
            deployment,
            reference,
            prog: prog.clone(),
        }
    }

    /// Feed `pkt` to both sides; panic on any divergence.
    fn step(&mut self, pkt: Packet, label: &str) {
        let interp = Interpreter::new(&self.prog);
        let mut ref_pkt = pkt.clone();
        let ref_out = interp.run(&mut ref_pkt, &mut self.reference, 0).unwrap();
        let expected: Vec<&Packet> = ref_out
            .actions
            .iter()
            .filter_map(|a| match a {
                PacketAction::Send(p) => Some(p),
                PacketAction::Drop => None,
            })
            .collect();
        let got = self.deployment.inject(pkt).unwrap();
        assert_eq!(got.len(), expected.len(), "{label}: emission count");
        for (i, ((_, g), e)) in got.iter().zip(&expected).enumerate() {
            assert_eq!(g.bytes(), e.bytes(), "{label}: emission {i} bytes");
        }
    }

    fn assert_state_equal(&self) {
        for i in 0..self.prog.states.len() {
            let sid = gallium_mir::StateId(i as u32);
            if let gallium_mir::StateKind::Map { .. } = self.prog.states[i].kind {
                assert_eq!(
                    self.deployment.server.store.map_entries(sid).unwrap(),
                    self.reference.map_entries(sid).unwrap(),
                    "map `{}` diverged",
                    self.prog.states[i].name
                );
            }
        }
        assert!(self.deployment.replicated_consistent());
    }
}

fn tcp(t: FiveTuple, flags: u8, ingress: u16, payload: &[u8]) -> Packet {
    let mut b = PacketBuilder::tcp(t, TcpFlags(flags), 120);
    if !payload.is_empty() {
        b = b.payload(payload.to_vec());
    }
    b.build(PortId(ingress))
}

#[test]
fn mazunat_deployment_equivalence() {
    let nat = mazunat::mazunat();
    let mut eq = Equiv::new(&nat.prog, |_| {});
    for i in 0..10u16 {
        let t = FiveTuple {
            saddr: 0x0A000002 + u32::from(i % 3),
            daddr: 0x08080808,
            sport: 2000 + i,
            dport: 443,
            proto: IpProtocol::Tcp,
        };
        eq.step(tcp(t, TcpFlags::SYN, INTERNAL_PORT, b""), "nat out syn");
        eq.step(
            tcp(t, TcpFlags::ACK, INTERNAL_PORT, b"data"),
            "nat out data",
        );
        // Reply from outside to the allocated port.
        let reply = FiveTuple {
            saddr: 0x08080808,
            daddr: mazunat::NAT_EXTERNAL_IP,
            sport: 443,
            dport: mazunat::NAT_PORT_BASE + i,
            proto: IpProtocol::Tcp,
        };
        eq.step(
            tcp(reply, TcpFlags::ACK, EXTERNAL_PORT, b""),
            "nat in reply",
        );
    }
    // Unsolicited inbound drops on both sides.
    let stray = FiveTuple {
        saddr: 0x01020304,
        daddr: mazunat::NAT_EXTERNAL_IP,
        sport: 1,
        dport: 65000,
        proto: IpProtocol::Tcp,
    };
    eq.step(tcp(stray, TcpFlags::ACK, EXTERNAL_PORT, b""), "nat stray");
    eq.assert_state_equal();
}

#[test]
fn lb_deployment_equivalence() {
    let lb = lb::load_balancer();
    let backends = lb.backends;
    let mut eq = Equiv::new(&lb.prog, move |s| {
        s.vec_set_all(backends, vec![0xC0A80001, 0xC0A80002, 0xC0A80003])
            .unwrap();
    });
    for i in 0..12u16 {
        let t = FiveTuple {
            saddr: 0x0A00000A + u32::from(i % 4),
            daddr: 0x0A0000FE,
            sport: 7000 + (i % 5),
            dport: 80,
            proto: IpProtocol::Tcp,
        };
        eq.step(tcp(t, TcpFlags::ACK, 1, b"x"), "lb data");
        if i % 4 == 3 {
            eq.step(tcp(t, TcpFlags::FIN | TcpFlags::ACK, 1, b""), "lb fin");
        }
    }
    eq.assert_state_equal();
}

#[test]
fn firewall_deployment_equivalence() {
    let fw = firewall::firewall();
    let allowed = FiveTuple {
        saddr: 0x0A000001,
        daddr: 0x08080808,
        sport: 5000,
        dport: 443,
        proto: IpProtocol::Tcp,
    };
    let fw2 = fw.clone();
    let mut eq = Equiv::new(&fw.prog, move |s| {
        fw2.allow(s, &allowed);
    });
    eq.step(tcp(allowed, TcpFlags::ACK, INTERNAL_PORT, b""), "fw pass");
    eq.step(
        tcp(allowed.reversed(), TcpFlags::ACK, EXTERNAL_PORT, b""),
        "fw reverse pass",
    );
    let mut blocked = allowed;
    blocked.dport = 80;
    eq.step(tcp(blocked, TcpFlags::ACK, INTERNAL_PORT, b""), "fw drop");
    eq.assert_state_equal();
    // The firewall never used the server.
    assert_eq!(eq.deployment.stats.slow_path, 0);
    assert_eq!(eq.deployment.fast_path_fraction(), 1.0);
}

#[test]
fn proxy_deployment_equivalence() {
    let px = proxy::proxy(0x0A090909, 3128);
    let px2 = px.clone();
    let mut eq = Equiv::new(&px.prog, move |s| {
        px2.intercept(s, 80);
    });
    let web = FiveTuple {
        saddr: 1,
        daddr: 0x08080808,
        sport: 1234,
        dport: 80,
        proto: IpProtocol::Tcp,
    };
    eq.step(tcp(web, TcpFlags::SYN, 1, b""), "proxy redirect");
    let other = FiveTuple { dport: 22, ..web };
    eq.step(tcp(other, TcpFlags::SYN, 1, b""), "proxy pass");
    assert_eq!(eq.deployment.stats.slow_path, 0);
}

#[test]
fn trojan_deployment_equivalence() {
    let det = trojan::trojan_detector();
    let mut eq = Equiv::new(&det.prog, |_| {});
    let host = |saddr: u32, dport: u16, flags: u8, payload: &[u8]| {
        tcp(
            FiveTuple {
                saddr,
                daddr: 0x08080808,
                sport: 4000,
                dport,
                proto: IpProtocol::Tcp,
            },
            flags,
            1,
            payload,
        )
    };
    // Host A: full trojan sequence. Host B: innocent bulk traffic.
    eq.step(host(0xA1, 22, TcpFlags::SYN, b""), "A ssh");
    for _ in 0..5 {
        eq.step(host(0xB2, 443, TcpFlags::ACK, b"tls"), "B bulk");
    }
    eq.step(host(0xA1, 80, TcpFlags::ACK, b"GET /x.html"), "A dl");
    eq.step(
        host(0xA1, trojan::IRC_PORT, TcpFlags::ACK, b"NICK t"),
        "A irc",
    );
    eq.assert_state_equal();
    assert_eq!(
        eq.deployment
            .server
            .store
            .map_get(det.host_state, &[0xA1])
            .unwrap(),
        Some(vec![trojan::STAGE_TROJAN])
    );
    // B's traffic stayed on the fast path (unknown host, no DPI).
    assert!(eq.deployment.stats.fast_path >= 5);
}

#[test]
fn deployed_emissions_on_fast_path_have_no_header() {
    let lb = minilb::minilb();
    let backends = lb.backends;
    let c = compiled(&lb.prog);
    let mut d = Deployment::new(&c, SwitchConfig::default(), CostModel::calibrated()).unwrap();
    d.configure(|s| {
        s.vec_set_all(backends, vec![5, 6]).unwrap();
    })
    .unwrap();
    let t = FiveTuple {
        saddr: 9,
        daddr: 10,
        sport: 1,
        dport: 2,
        proto: IpProtocol::Tcp,
    };
    let first = d.inject(tcp(t, TcpFlags::SYN, 1, b"")).unwrap();
    let second = d.inject(tcp(t, TcpFlags::ACK, 1, b"")).unwrap();
    assert_eq!(first[0].1.len(), 120);
    assert_eq!(second[0].1.len(), 120);
    let d2 = read_header_field(second[0].1.bytes(), HeaderField::IpDaddr);
    assert!(d2 == 5 || d2 == 6);
}
