//! Instructions, operations, and their static metadata (read/write sets,
//! P4 supportability).

use crate::func::BlockId;
use crate::func::ValueId;
use crate::state::{StateId, StateKind};
use crate::types::Ty;

/// Packet-header fields addressable by the IR.
///
/// Header accesses are P4-expressible; payload accesses are not ("S's access
/// of the packet, if any, is only to the packet header fields and not packet
/// payloads", §4.2.1 condition 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HeaderField {
    /// Ethernet source MAC (48 bits).
    EthSrc,
    /// Ethernet destination MAC (48 bits).
    EthDst,
    /// EtherType (16 bits).
    EthType,
    /// IPv4 source address (32 bits).
    IpSaddr,
    /// IPv4 destination address (32 bits).
    IpDaddr,
    /// IPv4 protocol number (8 bits).
    IpProto,
    /// IPv4 TTL (8 bits).
    IpTtl,
    /// IPv4 total length (16 bits).
    IpTotalLen,
    /// TCP/UDP source port (16 bits).
    SrcPort,
    /// TCP/UDP destination port (16 bits).
    DstPort,
    /// TCP sequence number (32 bits).
    TcpSeq,
    /// TCP acknowledgement number (32 bits).
    TcpAck,
    /// TCP flags byte (8 bits).
    TcpFlags,
}

impl HeaderField {
    /// Width of the field in bits.
    pub fn bits(self) -> u8 {
        use HeaderField::*;
        match self {
            EthSrc | EthDst => 48,
            EthType | IpTotalLen | SrcPort | DstPort => 16,
            IpSaddr | IpDaddr | TcpSeq | TcpAck => 32,
            IpProto | IpTtl | TcpFlags => 8,
        }
    }

    /// Stable textual name (used by the printer/parser and P4 codegen).
    pub fn name(self) -> &'static str {
        use HeaderField::*;
        match self {
            EthSrc => "eth.src",
            EthDst => "eth.dst",
            EthType => "eth.type",
            IpSaddr => "ip.saddr",
            IpDaddr => "ip.daddr",
            IpProto => "ip.proto",
            IpTtl => "ip.ttl",
            IpTotalLen => "ip.len",
            SrcPort => "l4.sport",
            DstPort => "l4.dport",
            TcpSeq => "tcp.seq",
            TcpAck => "tcp.ack",
            TcpFlags => "tcp.flags",
        }
    }

    /// Inverse of [`HeaderField::name`].
    pub fn from_name(s: &str) -> Option<Self> {
        use HeaderField::*;
        Some(match s {
            "eth.src" => EthSrc,
            "eth.dst" => EthDst,
            "eth.type" => EthType,
            "ip.saddr" => IpSaddr,
            "ip.daddr" => IpDaddr,
            "ip.proto" => IpProto,
            "ip.ttl" => IpTtl,
            "ip.len" => IpTotalLen,
            "l4.sport" => SrcPort,
            "l4.dport" => DstPort,
            "tcp.seq" => TcpSeq,
            "tcp.ack" => TcpAck,
            "tcp.flags" => TcpFlags,
            _ => return None,
        })
    }

    /// All fields, for exhaustive iteration in tests and codegen.
    pub const ALL: [HeaderField; 13] = [
        HeaderField::EthSrc,
        HeaderField::EthDst,
        HeaderField::EthType,
        HeaderField::IpSaddr,
        HeaderField::IpDaddr,
        HeaderField::IpProto,
        HeaderField::IpTtl,
        HeaderField::IpTotalLen,
        HeaderField::SrcPort,
        HeaderField::DstPort,
        HeaderField::TcpSeq,
        HeaderField::TcpAck,
        HeaderField::TcpFlags,
    ];
}

/// Binary ALU operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Left shift.
    Shl,
    /// Logical right shift.
    Shr,
    /// Equality (result is 1-bit).
    Eq,
    /// Inequality (result is 1-bit).
    Ne,
    /// Unsigned less-than (1-bit).
    Lt,
    /// Unsigned less-or-equal (1-bit).
    Le,
    /// Unsigned greater-than (1-bit).
    Gt,
    /// Unsigned greater-or-equal (1-bit).
    Ge,
    /// Multiplication — **not** P4-expressible.
    Mul,
    /// Division — **not** P4-expressible.
    Div,
    /// Modulo — **not** P4-expressible (this is what pins MiniLB's
    /// `hash32 % backends.size()` to the middlebox server, Figure 4).
    Mod,
}

impl BinOp {
    /// Whether the abstract switch of §2.2 can evaluate this operator
    /// ("integer addition, subtraction, bitwise operations … and
    /// comparison").
    pub fn p4_supported(self) -> bool {
        !matches!(self, BinOp::Mul | BinOp::Div | BinOp::Mod)
    }

    /// True for comparison operators (1-bit result).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Stable mnemonic.
    pub fn name(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::Eq => "eq",
            BinOp::Ne => "ne",
            BinOp::Lt => "lt",
            BinOp::Le => "le",
            BinOp::Gt => "gt",
            BinOp::Ge => "ge",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Mod => "mod",
        }
    }

    /// Inverse of [`BinOp::name`].
    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "add" => BinOp::Add,
            "sub" => BinOp::Sub,
            "and" => BinOp::And,
            "or" => BinOp::Or,
            "xor" => BinOp::Xor,
            "shl" => BinOp::Shl,
            "shr" => BinOp::Shr,
            "eq" => BinOp::Eq,
            "ne" => BinOp::Ne,
            "lt" => BinOp::Lt,
            "le" => BinOp::Le,
            "gt" => BinOp::Gt,
            "ge" => BinOp::Ge,
            "mul" => BinOp::Mul,
            "div" => BinOp::Div,
            "mod" => BinOp::Mod,
            _ => return None,
        })
    }

    /// Evaluate on `width`-bit operands (used by both the interpreter and
    /// the switch simulator so semantics cannot diverge).
    pub fn eval(self, a: u64, b: u64, width: u8) -> u64 {
        use crate::types::mask_to_width as mask;
        match self {
            BinOp::Add => mask(a.wrapping_add(b), width),
            BinOp::Sub => mask(a.wrapping_sub(b), width),
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => mask(if b >= 64 { 0 } else { a << b }, width),
            BinOp::Shr => {
                if b >= 64 {
                    0
                } else {
                    a >> b
                }
            }
            BinOp::Eq => u64::from(a == b),
            BinOp::Ne => u64::from(a != b),
            BinOp::Lt => u64::from(a < b),
            BinOp::Le => u64::from(a <= b),
            BinOp::Gt => u64::from(a > b),
            BinOp::Ge => u64::from(a >= b),
            BinOp::Mul => mask(a.wrapping_mul(b), width),
            BinOp::Div => a.checked_div(b).unwrap_or(0),
            BinOp::Mod => a.checked_rem(b).unwrap_or(0),
        }
    }
}

/// One IR operation. Each instruction evaluates at most one `Op` and defines
/// at most one SSA value.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// An integer constant of the given width.
    Const {
        /// The constant value (already masked to `width`).
        value: u64,
        /// Bit width of the result.
        width: u8,
    },
    /// Binary ALU operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        a: ValueId,
        /// Right operand.
        b: ValueId,
    },
    /// Bitwise NOT.
    Not {
        /// Operand.
        a: ValueId,
    },
    /// Truncate or zero-extend to a new width (e.g. the `(uint16_t)` cast
    /// in MiniLB).
    Cast {
        /// Operand.
        a: ValueId,
        /// Target width.
        width: u8,
    },
    /// SSA φ-node: selects a value based on the predecessor block.
    Phi {
        /// `(predecessor, value)` pairs.
        incoming: Vec<(BlockId, ValueId)>,
    },
    /// Read a packet-header field.
    ReadField {
        /// The field.
        field: HeaderField,
    },
    /// Write a packet-header field.
    WriteField {
        /// The field.
        field: HeaderField,
        /// New value.
        value: ValueId,
    },
    /// Read the switch ingress port (standard metadata; how MazuNAT tells
    /// the internal network from the external one).
    ReadPort,
    /// Deep-packet-inspection primitive: does the transport payload contain
    /// `pattern`? Payload access is never P4-expressible.
    PayloadMatch {
        /// Byte pattern searched for in the payload.
        pattern: Vec<u8>,
    },
    /// `HashMap::find` — returns a [`Ty::MapResult`].
    MapGet {
        /// The map.
        map: StateId,
        /// Key components.
        key: Vec<ValueId>,
    },
    /// Longest-prefix-match lookup (§7 extension; a native P4 match kind).
    /// Returns a [`Ty::MapResult`] like `MapGet`.
    LpmGet {
        /// The LPM table.
        table: StateId,
        /// The key (single scalar, e.g. an IPv4 address).
        key: ValueId,
    },
    /// Test whether a map lookup missed (the `bk_addr == NULL` check).
    IsNull {
        /// A `MapResult` value.
        a: ValueId,
    },
    /// Extract the `index`-th component of a map-lookup result. Faults at
    /// runtime when the lookup missed — dereferencing NULL.
    Extract {
        /// A `MapResult` value.
        a: ValueId,
        /// Component index.
        index: usize,
    },
    /// `HashMap::insert`. Control-plane-only on a switch, so never
    /// offloadable.
    MapPut {
        /// The map.
        map: StateId,
        /// Key components.
        key: Vec<ValueId>,
        /// Value components.
        value: Vec<ValueId>,
    },
    /// `HashMap::erase`. Control-plane-only on a switch.
    MapDel {
        /// The map.
        map: StateId,
        /// Key components.
        key: Vec<ValueId>,
    },
    /// `Vector::operator[]`. The paper's prototype has no P4 lowering for
    /// Vector (Figure 6 maps only Map/GlobalVar), so this is not offloadable
    /// — which is what keeps `backends[idx]` on the server in Figure 4.
    VecGet {
        /// The vector.
        vec: StateId,
        /// Element index.
        index: ValueId,
    },
    /// `Vector::size()`.
    VecLen {
        /// The vector.
        vec: StateId,
    },
    /// Read a global scalar register.
    RegRead {
        /// The register.
        reg: StateId,
    },
    /// Write a global scalar register.
    RegWrite {
        /// The register.
        reg: StateId,
        /// New value.
        value: ValueId,
    },
    /// Fused fetch-and-add on a register — a single stateful-ALU access,
    /// which is how MazuNAT's port-allocation counter stays offloadable
    /// under Constraint 3.
    RegFetchAdd {
        /// The register.
        reg: StateId,
        /// Added value.
        delta: ValueId,
    },
    /// Hardware hash of the operands ("computation primitives … and
    /// hashing", §2.1). Result has `width` bits.
    Hash {
        /// Hashed operand list.
        inputs: Vec<ValueId>,
        /// Result width.
        width: u8,
    },
    /// Current time in nanoseconds. Not offloaded in this model (the L4
    /// load balancer's idle-timeout GC runs on the server).
    Now,
    /// Recompute the IPv4 header checksum (switch deparsers do this in
    /// hardware, so it is P4-supported).
    UpdateChecksum,
    /// Emit the packet (Click's `pkt->send()`).
    Send,
    /// Drop the packet.
    Drop,
}

/// An abstract memory location, used to build read/write sets (§4.1).
///
/// SSA operand flow is tracked separately through use-def edges; `Loc`
/// covers the mutable program state two statements can conflict on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Loc {
    /// One packet-header field.
    Header(HeaderField),
    /// The packet payload.
    Payload,
    /// The packet's ingress-port metadata.
    Port,
    /// A global state (map/vector/register).
    State(StateId),
    /// The middlebox output stream — `Send`/`Drop` order matters.
    Output,
    /// The wall clock.
    Clock,
}

/// A single instruction: an [`Op`] plus its result type.
#[derive(Debug, Clone, PartialEq)]
pub struct Inst {
    /// The operation.
    pub op: Op,
    /// Type of the defined SSA value ([`Ty::Unit`] for pure effects).
    pub ty: Ty,
}

impl Op {
    /// SSA values this operation uses.
    pub fn uses(&self) -> Vec<ValueId> {
        match self {
            Op::Const { .. }
            | Op::ReadField { .. }
            | Op::ReadPort
            | Op::PayloadMatch { .. }
            | Op::VecLen { .. }
            | Op::RegRead { .. }
            | Op::Now
            | Op::UpdateChecksum
            | Op::Send
            | Op::Drop => vec![],
            Op::Bin { a, b, .. } => vec![*a, *b],
            Op::Not { a } | Op::Cast { a, .. } | Op::IsNull { a } | Op::Extract { a, .. } => {
                vec![*a]
            }
            Op::Phi { incoming } => incoming.iter().map(|(_, v)| *v).collect(),
            Op::WriteField { value, .. } | Op::RegWrite { value, .. } => vec![*value],
            Op::RegFetchAdd { delta, .. } => vec![*delta],
            Op::MapGet { key, .. } | Op::MapDel { key, .. } => key.clone(),
            Op::LpmGet { key, .. } => vec![*key],
            Op::MapPut { key, value, .. } => key.iter().chain(value.iter()).copied().collect(),
            Op::VecGet { index, .. } => vec![*index],
            Op::Hash { inputs, .. } => inputs.clone(),
        }
    }

    /// Locations this operation reads.
    pub fn reads(&self) -> Vec<Loc> {
        match self {
            Op::ReadField { field } => vec![Loc::Header(*field)],
            Op::ReadPort => vec![Loc::Port],
            Op::PayloadMatch { .. } => vec![Loc::Payload],
            Op::MapGet { map, .. } => vec![Loc::State(*map)],
            Op::LpmGet { table, .. } => vec![Loc::State(*table)],
            Op::VecGet { vec, .. } | Op::VecLen { vec } => vec![Loc::State(*vec)],
            Op::RegRead { reg } | Op::RegFetchAdd { reg, .. } => vec![Loc::State(*reg)],
            Op::Now => vec![Loc::Clock],
            // A sent packet exposes every header field and the payload: the
            // send "reads" them all, creating dependencies on earlier writes.
            Op::Send => {
                let mut v: Vec<Loc> = HeaderField::ALL.iter().map(|f| Loc::Header(*f)).collect();
                v.push(Loc::Payload);
                v
            }
            Op::UpdateChecksum => HeaderField::ALL.iter().map(|f| Loc::Header(*f)).collect(),
            _ => vec![],
        }
    }

    /// Locations this operation writes.
    pub fn writes(&self) -> Vec<Loc> {
        match self {
            Op::WriteField { field, .. } => vec![Loc::Header(*field)],
            Op::MapPut { map, .. } | Op::MapDel { map, .. } => vec![Loc::State(*map)],
            Op::RegWrite { reg, .. } | Op::RegFetchAdd { reg, .. } => vec![Loc::State(*reg)],
            Op::Send | Op::Drop => vec![Loc::Output],
            // The checksum is itself a header-derived header field; model the
            // write as touching the IP header region via a representative
            // field (total_len shares the header but we use a dedicated
            // convention: checksum writes are absorbed into the send).
            Op::UpdateChecksum => vec![],
            _ => vec![],
        }
    }

    /// Global states touched (read or written) by this operation, for
    /// label-removing rules 3/4 and Constraint 3.
    pub fn states_touched(&self) -> Vec<StateId> {
        self.reads()
            .into_iter()
            .chain(self.writes())
            .filter_map(|l| match l {
                Loc::State(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    /// Whether the abstract P4 switch can execute this operation
    /// (§4.2.1's three conditions).
    ///
    /// `states` supplies the declarations, because a map may only go on the
    /// switch when its maximum size is annotated (§4.3.1).
    pub fn p4_supported(&self, states: &[crate::state::GlobalState]) -> bool {
        match self {
            Op::Const { .. }
            | Op::Not { .. }
            | Op::Cast { .. }
            | Op::Phi { .. }
            | Op::ReadField { .. }
            | Op::WriteField { .. }
            | Op::ReadPort
            | Op::IsNull { .. }
            | Op::Extract { .. }
            | Op::RegRead { .. }
            | Op::RegWrite { .. }
            | Op::RegFetchAdd { .. }
            | Op::Hash { .. }
            | Op::UpdateChecksum
            | Op::Send
            | Op::Drop => true,
            Op::Bin { op, .. } => op.p4_supported(),
            Op::MapGet { map, .. } => match states.get(map.0 as usize).map(|s| &s.kind) {
                Some(StateKind::Map { max_entries, .. }) => max_entries.is_some(),
                _ => false,
            },
            // LPM is a native P4 match kind; needs the size annotation like
            // any offloaded table.
            Op::LpmGet { table, .. } => match states.get(table.0 as usize).map(|s| &s.kind) {
                Some(StateKind::LpmMap { max_entries, .. }) => max_entries.is_some(),
                _ => false,
            },
            // Data-plane table writes do not exist; inserts/deletes go
            // through the control plane, i.e. the server.
            Op::MapPut { .. } | Op::MapDel { .. } => false,
            // No Vector lowering in the prototype (Figure 6, §7).
            Op::VecGet { .. } | Op::VecLen { .. } => false,
            Op::PayloadMatch { .. } => false,
            Op::Now => false,
        }
    }

    /// True for operations whose only effect is defining their SSA value.
    pub fn is_pure(&self) -> bool {
        self.writes().is_empty() && !matches!(self, Op::Send | Op::Drop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::GlobalState;

    fn annotated_map() -> Vec<GlobalState> {
        vec![GlobalState {
            name: "m".into(),
            kind: StateKind::Map {
                key_widths: vec![16],
                value_widths: vec![32],
                max_entries: Some(1024),
            },
        }]
    }

    fn unannotated_map() -> Vec<GlobalState> {
        vec![GlobalState {
            name: "m".into(),
            kind: StateKind::Map {
                key_widths: vec![16],
                value_widths: vec![32],
                max_entries: None,
            },
        }]
    }

    #[test]
    fn header_field_names_roundtrip() {
        for f in HeaderField::ALL {
            assert_eq!(HeaderField::from_name(f.name()), Some(f));
        }
        assert_eq!(HeaderField::from_name("bogus"), None);
    }

    #[test]
    fn binop_names_roundtrip() {
        for op in [
            BinOp::Add,
            BinOp::Sub,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::Shr,
            BinOp::Eq,
            BinOp::Ne,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Mod,
        ] {
            assert_eq!(BinOp::from_name(op.name()), Some(op));
        }
    }

    #[test]
    fn p4_expressiveness_matches_paper() {
        assert!(BinOp::Add.p4_supported());
        assert!(BinOp::Xor.p4_supported());
        assert!(BinOp::Lt.p4_supported());
        assert!(!BinOp::Mod.p4_supported()); // pins MiniLB's idx to the server
        assert!(!BinOp::Mul.p4_supported());
        assert!(!BinOp::Div.p4_supported());
    }

    #[test]
    fn map_get_needs_size_annotation() {
        let get = Op::MapGet {
            map: StateId(0),
            key: vec![ValueId(0)],
        };
        assert!(get.p4_supported(&annotated_map()));
        assert!(!get.p4_supported(&unannotated_map()));
    }

    #[test]
    fn map_put_never_offloadable() {
        let put = Op::MapPut {
            map: StateId(0),
            key: vec![ValueId(0)],
            value: vec![ValueId(1)],
        };
        assert!(!put.p4_supported(&annotated_map()));
    }

    #[test]
    fn vector_and_payload_not_offloadable() {
        let states = vec![GlobalState {
            name: "v".into(),
            kind: StateKind::Vector {
                elem_width: 32,
                capacity: 8,
            },
        }];
        assert!(!Op::VecGet {
            vec: StateId(0),
            index: ValueId(0)
        }
        .p4_supported(&states));
        assert!(!Op::VecLen { vec: StateId(0) }.p4_supported(&states));
        assert!(!Op::PayloadMatch {
            pattern: b"SSH-".to_vec()
        }
        .p4_supported(&states));
        assert!(!Op::Now.p4_supported(&states));
    }

    #[test]
    fn eval_wraps_and_masks() {
        assert_eq!(BinOp::Add.eval(0xFF, 1, 8), 0);
        assert_eq!(BinOp::Sub.eval(0, 1, 16), 0xFFFF);
        assert_eq!(BinOp::Shl.eval(1, 70, 32), 0);
        assert_eq!(BinOp::Mod.eval(7, 0, 32), 0); // div-by-zero defined as 0
        assert_eq!(BinOp::Lt.eval(3, 5, 32), 1);
        assert_eq!(BinOp::Mod.eval(10, 3, 32), 1);
    }

    #[test]
    fn send_reads_all_headers() {
        let reads = Op::Send.reads();
        assert!(reads.contains(&Loc::Header(HeaderField::IpDaddr)));
        assert!(reads.contains(&Loc::Payload));
        assert_eq!(Op::Send.writes(), vec![Loc::Output]);
    }

    #[test]
    fn fetch_add_is_single_state_touch_but_read_write() {
        let op = Op::RegFetchAdd {
            reg: StateId(0),
            delta: ValueId(1),
        };
        assert_eq!(op.reads(), vec![Loc::State(StateId(0))]);
        assert_eq!(op.writes(), vec![Loc::State(StateId(0))]);
        assert_eq!(op.states_touched().len(), 2); // read + write entries
    }

    #[test]
    fn uses_cover_operands() {
        let op = Op::MapPut {
            map: StateId(0),
            key: vec![ValueId(1), ValueId(2)],
            value: vec![ValueId(3)],
        };
        assert_eq!(op.uses(), vec![ValueId(1), ValueId(2), ValueId(3)]);
    }
}
