//! Textual form of MIR programs.
//!
//! The printer and [`crate::parser`] round-trip: `parse(print(p))`
//! structurally equals `p` (property-tested). The textual form is used in
//! documentation, golden tests, and the compiler's diagnostic dumps.

use crate::func::{Program, Terminator};
use crate::inst::Op;
use crate::state::StateKind;
use std::fmt::Write;

/// Render `prog` in the canonical textual form.
pub fn print_program(prog: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "program {} {{", prog.name);
    for s in &prog.states {
        match &s.kind {
            StateKind::Map {
                key_widths,
                value_widths,
                max_entries,
            } => {
                let ks = widths(key_widths);
                let vs = widths(value_widths);
                match max_entries {
                    Some(n) => {
                        let _ = writeln!(out, "  state {} : map<{ks} -> {vs}> max {n}", s.name);
                    }
                    None => {
                        let _ = writeln!(out, "  state {} : map<{ks} -> {vs}>", s.name);
                    }
                }
            }
            StateKind::Vector {
                elem_width,
                capacity,
            } => {
                let _ = writeln!(
                    out,
                    "  state {} : vec<u{elem_width}> cap {capacity}",
                    s.name
                );
            }
            StateKind::Register { width } => {
                let _ = writeln!(out, "  state {} : reg<u{width}>", s.name);
            }
            StateKind::LpmMap {
                key_width,
                value_widths,
                max_entries,
            } => {
                let vs = widths(value_widths);
                match max_entries {
                    Some(n) => {
                        let _ = writeln!(
                            out,
                            "  state {} : lpm<u{key_width} -> {vs}> max {n}",
                            s.name
                        );
                    }
                    None => {
                        let _ = writeln!(out, "  state {} : lpm<u{key_width} -> {vs}>", s.name);
                    }
                }
            }
        }
    }
    for b in &prog.func.blocks {
        let _ = writeln!(out, "  {}:", b.id);
        for &v in &b.insts {
            let _ = writeln!(out, "    {}", print_inst(prog, v));
        }
        let term = match &b.term {
            Terminator::Jump(t) => format!("jmp {t}"),
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => format!("br {cond}, {then_bb}, {else_bb}"),
            Terminator::Return => "ret".to_string(),
        };
        let _ = writeln!(out, "    {term}");
    }
    out.push_str("}\n");
    out
}

fn widths(ws: &[u8]) -> String {
    ws.iter()
        .map(|w| format!("u{w}"))
        .collect::<Vec<_>>()
        .join(",")
}

fn vlist(vs: &[crate::func::ValueId]) -> String {
    let inner = vs
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    format!("[{inner}]")
}

/// Render one instruction (without indentation).
pub fn print_inst(prog: &Program, v: crate::func::ValueId) -> String {
    let inst = prog.func.inst(v);
    let sname = |s: crate::state::StateId| prog.states[s.0 as usize].name.clone();
    match &inst.op {
        Op::Const { value, width } => format!("{v} = const {value} : u{width}"),
        Op::Bin { op, a, b } => format!("{v} = {} {a}, {b}", op.name()),
        Op::Not { a } => format!("{v} = not {a}"),
        Op::Cast { a, width } => format!("{v} = cast {a} : u{width}"),
        Op::Phi { incoming } => {
            let inner = incoming
                .iter()
                .map(|(b, iv)| format!("{b}: {iv}"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("{v} = phi [{inner}]")
        }
        Op::ReadField { field } => format!("{v} = readfield {}", field.name()),
        Op::WriteField { field, value } => format!("writefield {}, {value}", field.name()),
        Op::ReadPort => format!("{v} = readport"),
        Op::PayloadMatch { pattern } => {
            format!("{v} = payloadmatch \"{}\"", escape_bytes(pattern))
        }
        Op::MapGet { map, key } => format!("{v} = mapget {}, {}", sname(*map), vlist(key)),
        Op::LpmGet { table, key } => format!("{v} = lpmget {}, {key}", sname(*table)),
        Op::IsNull { a } => format!("{v} = isnull {a}"),
        Op::Extract { a, index } => format!("{v} = extract {a}, {index}"),
        Op::MapPut { map, key, value } => {
            format!("mapput {}, {}, {}", sname(*map), vlist(key), vlist(value))
        }
        Op::MapDel { map, key } => format!("mapdel {}, {}", sname(*map), vlist(key)),
        Op::VecGet { vec, index } => format!("{v} = vecget {}, {index}", sname(*vec)),
        Op::VecLen { vec } => format!("{v} = veclen {}", sname(*vec)),
        Op::RegRead { reg } => format!("{v} = regread {}", sname(*reg)),
        Op::RegWrite { reg, value } => format!("regwrite {}, {value}", sname(*reg)),
        Op::RegFetchAdd { reg, delta } => {
            format!("{v} = regfetchadd {}, {delta}", sname(*reg))
        }
        Op::Hash { inputs, width } => format!("{v} = hash {} : u{width}", vlist(inputs)),
        Op::Now => format!("{v} = now"),
        Op::UpdateChecksum => "updatechecksum".to_string(),
        Op::Send => "send".to_string(),
        Op::Drop => "drop".to_string(),
    }
}

/// Escape a byte string for the textual form: printable ASCII except `"` and
/// `\` passes through, everything else becomes `\xNN`.
pub fn escape_bytes(bytes: &[u8]) -> String {
    let mut s = String::new();
    for &b in bytes {
        if (0x20..0x7F).contains(&b) && b != b'"' && b != b'\\' {
            s.push(b as char);
        } else {
            let _ = write!(s, "\\x{b:02x}");
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::inst::{BinOp, HeaderField};

    #[test]
    fn prints_minilb_shape() {
        let mut b = FuncBuilder::new("mini");
        let m = b.decl_map("map", vec![16], vec![32], Some(65536));
        let s = b.read_field(HeaderField::IpSaddr);
        let d = b.read_field(HeaderField::IpDaddr);
        let x = b.bin(BinOp::Xor, s, d);
        let x16 = b.cast(x, 16);
        let r = b.map_get(m, vec![x16]);
        let n = b.is_null(r);
        let _ = n;
        b.send();
        b.ret();
        let p = b.finish().unwrap();
        let text = print_program(&p);
        assert!(text.contains("program mini {"));
        assert!(text.contains("state map : map<u16 -> u32> max 65536"));
        assert!(text.contains("v2 = xor v0, v1"));
        assert!(text.contains("v4 = mapget map, [v3]"));
        assert!(text.contains("v5 = isnull v4"));
        assert!(text.contains("send"));
        assert!(text.trim_end().ends_with('}'));
    }

    #[test]
    fn escapes_non_printable() {
        assert_eq!(escape_bytes(b"SSH-"), "SSH-");
        assert_eq!(escape_bytes(b"\x00\xff"), "\\x00\\xff");
        assert_eq!(escape_bytes(b"a\"b\\c"), "a\\x22b\\x5cc");
    }
}
