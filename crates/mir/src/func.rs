//! Functions, basic blocks, and whole programs.

use crate::inst::Inst;
use crate::state::GlobalState;

/// Identifier of an SSA value — equivalently, of the instruction defining it.
/// Instructions live in a per-function arena; blocks reference them by id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

impl std::fmt::Display for ValueId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifier of a basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct BlockId(pub u32);

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// How control leaves a basic block.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way conditional branch on a 1-bit value.
    Branch {
        /// The condition (nonzero = then).
        cond: ValueId,
        /// Target when true.
        then_bb: BlockId,
        /// Target when false.
        else_bb: BlockId,
    },
    /// Packet processing ends.
    Return,
}

impl Terminator {
    /// Successor blocks.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Return => vec![],
        }
    }
}

/// A basic block: a straight-line instruction sequence plus a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct BasicBlock {
    /// This block's id.
    pub id: BlockId,
    /// Instructions in execution order (ids into the function arena).
    pub insts: Vec<ValueId>,
    /// The terminator.
    pub term: Terminator,
}

/// The packet-processing function of a middlebox (the paper inlines all
/// calls before analysis, so a middlebox is a single function over one
/// implicit packet argument).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Function {
    /// Instruction arena, indexed by [`ValueId`].
    pub insts: Vec<Inst>,
    /// Basic blocks, indexed by [`BlockId`].
    pub blocks: Vec<BasicBlock>,
    /// Entry block.
    pub entry: BlockId,
}

impl Function {
    /// The instruction defining `v`.
    pub fn inst(&self, v: ValueId) -> &Inst {
        &self.insts[v.0 as usize]
    }

    /// The block with id `b`.
    pub fn block(&self, b: BlockId) -> &BasicBlock {
        &self.blocks[b.0 as usize]
    }

    /// Total instruction count — the "lines of code" metric of Table 1 at
    /// the granularity the paper actually partitions at (LLVM instructions).
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True when the function has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Iterate `(block, position-in-block, value)` over every instruction in
    /// layout order.
    pub fn iter_insts(&self) -> impl Iterator<Item = (BlockId, usize, ValueId)> + '_ {
        self.blocks
            .iter()
            .flat_map(|b| b.insts.iter().enumerate().map(move |(i, v)| (b.id, i, *v)))
    }

    /// Locate the block and intra-block index of an instruction, if it is
    /// placed in any block.
    pub fn position_of(&self, v: ValueId) -> Option<(BlockId, usize)> {
        self.iter_insts()
            .find(|(_, _, iv)| *iv == v)
            .map(|(b, i, _)| (b, i))
    }
}

/// A complete middlebox program: global state declarations plus the
/// packet-processing function.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Middlebox name (e.g. `"minilb"`).
    pub name: String,
    /// Global state declarations ([`crate::StateId`] indexes this).
    pub states: Vec<GlobalState>,
    /// The packet-processing function.
    pub func: Function,
}

impl Program {
    /// Find a state id by its source-level name.
    pub fn state_by_name(&self, name: &str) -> Option<crate::state::StateId> {
        self.states
            .iter()
            .position(|s| s.name == name)
            .map(|i| crate::state::StateId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Op;
    use crate::types::Ty;

    #[test]
    fn terminator_successors() {
        assert_eq!(Terminator::Return.successors(), vec![]);
        assert_eq!(Terminator::Jump(BlockId(3)).successors(), vec![BlockId(3)]);
        assert_eq!(
            Terminator::Branch {
                cond: ValueId(0),
                then_bb: BlockId(1),
                else_bb: BlockId(2)
            }
            .successors(),
            vec![BlockId(1), BlockId(2)]
        );
    }

    #[test]
    fn iteration_and_position() {
        let mut f = Function::default();
        f.insts.push(Inst {
            op: Op::Const { value: 1, width: 8 },
            ty: Ty::Int(8),
        });
        f.insts.push(Inst {
            op: Op::Drop,
            ty: Ty::Unit,
        });
        f.blocks.push(BasicBlock {
            id: BlockId(0),
            insts: vec![ValueId(0), ValueId(1)],
            term: Terminator::Return,
        });
        assert_eq!(f.len(), 2);
        assert_eq!(f.position_of(ValueId(1)), Some((BlockId(0), 1)));
        assert_eq!(f.iter_insts().count(), 2);
    }
}
