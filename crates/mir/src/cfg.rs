//! Control-flow-graph utilities: reachability ("can happen after", §4.1),
//! dominators, postdominators, and block-level control dependence.

use crate::func::{BlockId, Function, Terminator};
use std::collections::HashSet;

/// Precomputed CFG adjacency for a [`Function`].
#[derive(Debug, Clone)]
pub struct Cfg {
    succs: Vec<Vec<BlockId>>,
    preds: Vec<Vec<BlockId>>,
    entry: BlockId,
    exits: Vec<BlockId>,
}

impl Cfg {
    /// Build the adjacency lists.
    pub fn new(f: &Function) -> Self {
        let n = f.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        let mut exits = Vec::new();
        for b in &f.blocks {
            let ss = b.term.successors();
            if ss.is_empty() {
                exits.push(b.id);
            }
            for s in &ss {
                preds[s.0 as usize].push(b.id);
            }
            succs[b.id.0 as usize] = ss;
        }
        Cfg {
            succs,
            preds,
            entry: f.entry,
            exits,
        }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// True for an empty function.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Successor blocks of `b`.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.0 as usize]
    }

    /// Predecessor blocks of `b`.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.0 as usize]
    }

    /// Entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Blocks with no successors (Return blocks).
    pub fn exits(&self) -> &[BlockId] {
        &self.exits
    }

    /// All blocks reachable from `from` (inclusive).
    pub fn reachable_from(&self, from: BlockId) -> HashSet<BlockId> {
        let mut seen = HashSet::new();
        let mut stack = vec![from];
        while let Some(b) = stack.pop() {
            if seen.insert(b) {
                stack.extend(self.succs(b).iter().copied());
            }
        }
        seen
    }

    /// Whether `to` is reachable from `from` following CFG edges (allowing
    /// the empty path — a block reaches itself).
    pub fn reaches(&self, from: BlockId, to: BlockId) -> bool {
        self.reachable_from(from).contains(&to)
    }

    /// Whether `to` is reachable from `from` via a *non-empty* path (needed
    /// for "S can happen after itself", which holds only inside loops).
    pub fn reaches_nonempty(&self, from: BlockId, to: BlockId) -> bool {
        self.succs(from).iter().any(|s| self.reaches(*s, to))
    }

    /// Reverse postorder starting at the entry.
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let mut order = Vec::new();
        let mut seen = vec![false; self.len()];
        self.dfs_post(self.entry, &mut seen, &mut order);
        order.reverse();
        order
    }

    fn dfs_post(&self, b: BlockId, seen: &mut [bool], out: &mut Vec<BlockId>) {
        if std::mem::replace(&mut seen[b.0 as usize], true) {
            return;
        }
        for s in self.succs(b).to_vec() {
            self.dfs_post(s, seen, out);
        }
        out.push(b);
    }

    /// Immediate dominators (Cooper–Harvey–Kennedy). `idom[entry] = entry`;
    /// unreachable blocks get `None`.
    pub fn dominators(&self) -> Vec<Option<BlockId>> {
        let rpo = self.reverse_postorder();
        let mut rpo_index = vec![usize::MAX; self.len()];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.0 as usize] = i;
        }
        let mut idom: Vec<Option<BlockId>> = vec![None; self.len()];
        idom[self.entry.0 as usize] = Some(self.entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in self.preds(b) {
                    if idom[p.0 as usize].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(cur, p, &idom, &rpo_index),
                    });
                }
                if new_idom.is_some() && idom[b.0 as usize] != new_idom {
                    idom[b.0 as usize] = new_idom;
                    changed = true;
                }
            }
        }
        idom
    }

    /// Whether `a` dominates `b` (reflexive), given an idom array.
    pub fn dominates(&self, idom: &[Option<BlockId>], a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match idom[cur.0 as usize] {
                Some(next) if next != cur => cur = next,
                _ => return false,
            }
        }
    }

    /// Immediate postdominators computed against a virtual exit joining all
    /// Return blocks. Blocks that cannot reach any exit get `None`.
    /// `Some(b) == b` marks blocks whose immediate postdominator is the
    /// virtual exit itself.
    pub fn postdominators(&self) -> Vec<Option<BlockId>> {
        // Work on the reverse graph with a virtual exit of index n.
        let n = self.len();
        let virt = n;
        let mut rsuccs: Vec<Vec<usize>> = vec![Vec::new(); n + 1]; // reverse edges
        for b in 0..n {
            for s in &self.succs[b] {
                rsuccs[s.0 as usize].push(b);
            }
        }
        for e in &self.exits {
            rsuccs[virt].push(e.0 as usize);
        }
        // Postorder on the reverse graph from virt.
        let mut order = Vec::new();
        let mut seen = vec![false; n + 1];
        let mut stack = vec![(virt, 0usize)];
        seen[virt] = true;
        while let Some((node, i)) = stack.pop() {
            if i < rsuccs[node].len() {
                stack.push((node, i + 1));
                let nxt = rsuccs[node][i];
                if !seen[nxt] {
                    seen[nxt] = true;
                    stack.push((nxt, 0));
                }
            } else {
                order.push(node);
            }
        }
        order.reverse(); // reverse postorder on the reverse graph
        let mut rpo_index = vec![usize::MAX; n + 1];
        for (i, b) in order.iter().enumerate() {
            rpo_index[*b] = i;
        }
        let mut ipdom: Vec<Option<usize>> = vec![None; n + 1];
        ipdom[virt] = Some(virt);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in order.iter().skip(1) {
                // predecessors in the reverse graph = successors in the CFG
                let preds: Vec<usize> = if b < n {
                    let mut v: Vec<usize> = self.succs[b].iter().map(|s| s.0 as usize).collect();
                    if self.exits.iter().any(|e| e.0 as usize == b) {
                        v.push(virt);
                    }
                    v
                } else {
                    continue;
                };
                let mut new_ipdom: Option<usize> = None;
                for p in preds {
                    if ipdom[p].is_none() {
                        continue;
                    }
                    new_ipdom = Some(match new_ipdom {
                        None => p,
                        Some(cur) => intersect_usize(cur, p, &ipdom, &rpo_index),
                    });
                }
                if new_ipdom.is_some() && ipdom[b] != new_ipdom {
                    ipdom[b] = new_ipdom;
                    changed = true;
                }
            }
        }
        (0..n)
            .map(|b| {
                ipdom[b].map(|p| {
                    if p == virt {
                        BlockId(b as u32) // convention: virtual exit -> self
                    } else {
                        BlockId(p as u32)
                    }
                })
            })
            .collect()
    }

    /// Whether block `a` postdominates block `b` (reflexive).
    pub fn postdominates(&self, ipdom: &[Option<BlockId>], a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match ipdom[cur.0 as usize] {
                Some(next) if next != cur => cur = next,
                _ => return false,
            }
        }
    }

    /// Block-level control dependence (Ferrante–Ottenstein–Warren): block X
    /// is control-dependent on branch block B iff B has a successor S with
    /// X postdominating S, and X does not postdominate B.
    pub fn control_deps(&self, f: &Function) -> Vec<Vec<BlockId>> {
        let ipdom = self.postdominators();
        let mut deps = vec![Vec::new(); self.len()];
        for b in &f.blocks {
            if !matches!(b.term, Terminator::Branch { .. }) {
                continue;
            }
            for &s in self.succs(b.id) {
                // Walk the postdominator chain from s up to (but excluding)
                // b's immediate postdominator: those blocks are control
                // dependent on b.
                let mut cur = s;
                loop {
                    // Strict postdomination ends the walk; a loop header is
                    // control-dependent on itself (cur == b.id does not
                    // terminate), per Ferrante–Ottenstein–Warren.
                    if cur != b.id && self.postdominates(&ipdom, cur, b.id) {
                        break;
                    }
                    if !deps[cur.0 as usize].contains(&b.id) {
                        deps[cur.0 as usize].push(b.id);
                    }
                    match ipdom[cur.0 as usize] {
                        Some(next) if next != cur => cur = next,
                        _ => break,
                    }
                }
            }
        }
        deps
    }
}

fn intersect(a: BlockId, b: BlockId, idom: &[Option<BlockId>], rpo_index: &[usize]) -> BlockId {
    let (mut fa, mut fb) = (a, b);
    while fa != fb {
        while rpo_index[fa.0 as usize] > rpo_index[fb.0 as usize] {
            fa = idom[fa.0 as usize].expect("processed");
        }
        while rpo_index[fb.0 as usize] > rpo_index[fa.0 as usize] {
            fb = idom[fb.0 as usize].expect("processed");
        }
    }
    fa
}

fn intersect_usize(a: usize, b: usize, idom: &[Option<usize>], rpo_index: &[usize]) -> usize {
    let (mut fa, mut fb) = (a, b);
    while fa != fb {
        while rpo_index[fa] > rpo_index[fb] {
            fa = idom[fa].expect("processed");
        }
        while rpo_index[fb] > rpo_index[fa] {
            fb = idom[fb].expect("processed");
        }
    }
    fa
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::func::Program;
    use crate::inst::{BinOp, HeaderField};

    /// Diamond: b0 -> {b1, b2} -> b3.
    fn diamond() -> Program {
        let mut b = FuncBuilder::new("d");
        let x = b.read_field(HeaderField::IpTtl);
        let z = b.cnst(0, 8);
        let c = b.bin(BinOp::Eq, x, z);
        let t = b.new_block();
        let e = b.new_block();
        let m = b.new_block();
        b.branch(c, t, e);
        b.switch_to(t);
        b.jump(m);
        b.switch_to(e);
        b.jump(m);
        b.switch_to(m);
        b.send();
        b.ret();
        b.finish().unwrap()
    }

    /// Loop: b0 -> b1 <-> b2, b1 -> b3(ret).
    fn looped() -> Program {
        let mut b = FuncBuilder::new("l");
        let hdr = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(hdr);
        b.switch_to(hdr);
        let x = b.read_field(HeaderField::IpTtl);
        let z = b.cnst(0, 8);
        let c = b.bin(BinOp::Eq, x, z);
        b.branch(c, exit, body);
        b.switch_to(body);
        b.jump(hdr);
        b.switch_to(exit);
        b.ret();
        b.finish().unwrap()
    }

    #[test]
    fn diamond_reachability() {
        let p = diamond();
        let cfg = Cfg::new(&p.func);
        assert!(cfg.reaches(BlockId(0), BlockId(3)));
        assert!(!cfg.reaches(BlockId(1), BlockId(2)));
        assert!(!cfg.reaches_nonempty(BlockId(0), BlockId(0)));
        assert_eq!(cfg.exits(), &[BlockId(3)]);
    }

    #[test]
    fn loop_self_reachability() {
        let p = looped();
        let cfg = Cfg::new(&p.func);
        assert!(cfg.reaches_nonempty(BlockId(1), BlockId(1)));
        assert!(cfg.reaches_nonempty(BlockId(2), BlockId(2)));
        assert!(!cfg.reaches_nonempty(BlockId(3), BlockId(3)));
    }

    #[test]
    fn diamond_dominators() {
        let p = diamond();
        let cfg = Cfg::new(&p.func);
        let idom = cfg.dominators();
        assert_eq!(idom[1], Some(BlockId(0)));
        assert_eq!(idom[2], Some(BlockId(0)));
        assert_eq!(idom[3], Some(BlockId(0)));
        assert!(cfg.dominates(&idom, BlockId(0), BlockId(3)));
        assert!(!cfg.dominates(&idom, BlockId(1), BlockId(3)));
    }

    #[test]
    fn diamond_postdominators() {
        let p = diamond();
        let cfg = Cfg::new(&p.func);
        let ipdom = cfg.postdominators();
        assert_eq!(ipdom[0], Some(BlockId(3)));
        assert_eq!(ipdom[1], Some(BlockId(3)));
        assert_eq!(ipdom[2], Some(BlockId(3)));
        assert!(cfg.postdominates(&ipdom, BlockId(3), BlockId(0)));
        assert!(!cfg.postdominates(&ipdom, BlockId(1), BlockId(0)));
    }

    #[test]
    fn diamond_control_deps() {
        let p = diamond();
        let cfg = Cfg::new(&p.func);
        let cd = cfg.control_deps(&p.func);
        assert_eq!(cd[1], vec![BlockId(0)]);
        assert_eq!(cd[2], vec![BlockId(0)]);
        assert!(cd[3].is_empty()); // merge block always executes
        assert!(cd[0].is_empty());
    }

    #[test]
    fn loop_control_deps() {
        let p = looped();
        let cfg = Cfg::new(&p.func);
        let cd = cfg.control_deps(&p.func);
        // The loop body depends on the header's branch; so does the header
        // itself (it re-executes only if the branch takes the back edge).
        assert!(cd[2].contains(&BlockId(1)));
        assert!(cd[1].contains(&BlockId(1)));
        assert!(cd[3].is_empty()); // exit postdominates everything
    }

    #[test]
    fn rpo_starts_at_entry() {
        let p = diamond();
        let cfg = Cfg::new(&p.func);
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[3], BlockId(3));
    }
}
