//! # gallium-mir — the middlebox intermediate representation
//!
//! The paper runs Clang on C++/Click middlebox sources and performs all of
//! its analyses "on LLVM Intermediate Representation … because LLVM's syntax
//! is simpler than C++" and "LLVM IR itself is in a Static Single Assignment
//! (SSA) form" (§5). This crate is the equivalent substrate for the Rust
//! reproduction: a small SSA IR whose instruction inventory is exactly the
//! vocabulary the paper's passes consume after inlining —
//!
//! * ALU operations (add, sub, bitwise ops, shifts, comparisons — plus the
//!   deliberately *unsupported* mul/div/mod, which force statements onto the
//!   middlebox server just as they do in the paper's MiniLB example),
//! * packet-header reads/writes and payload inspection,
//! * abstract-data-structure calls: `HashMap::find/insert/remove`,
//!   `Vector::operator[]`, `Vector::size()` — the two Click structures the
//!   paper supports (§7) — and registers with a fused fetch-add (the NAT's
//!   port-allocation counter, which Tofino's stateful ALU executes as a
//!   single table access),
//! * control flow (branches, loops, φ-nodes) and packet actions
//!   (send/drop).
//!
//! Alongside the IR live:
//!
//! * a [`builder::FuncBuilder`] used by the Click-element frontend,
//! * a structural + SSA [`validate`] pass,
//! * a [`printer`]/[`parser`] pair for a stable textual form,
//! * a reference [`interp`]reter — the functional-equivalence oracle that
//!   plays the role of the unmodified input middlebox in every experiment,
//! * a runtime [`state::StateStore`] holding the global maps / vectors /
//!   registers a middlebox keeps across packets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod cfg;
pub mod func;
pub mod inst;
pub mod interp;
pub mod parser;
pub mod printer;
pub mod state;
pub mod types;
pub mod validate;

pub use builder::FuncBuilder;
pub use func::{BasicBlock, BlockId, Function, Program, Terminator, ValueId};
pub use inst::{BinOp, HeaderField, Inst, Loc, Op};
pub use interp::{ExecResult, Interpreter, PacketAction, RegFile, RtVal, StateMutation};
pub use state::{GlobalState, StateId, StateKind, StateStore};
pub use types::Ty;

/// Errors raised while constructing, validating, parsing, or executing MIR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MirError {
    /// A ValueId/BlockId/StateId referred to an entity that does not exist.
    DanglingRef(String),
    /// SSA or type discipline violated; the string names the rule.
    Invalid(String),
    /// The textual parser rejected the input.
    Parse {
        /// 1-based line of the offending token.
        line: usize,
        /// 1-based column of the offending token within that line.
        col: usize,
        /// Human-readable description.
        msg: String,
    },
    /// The builder was driven through an ill-typed or ill-formed sequence.
    Build {
        /// Index of the instruction at (or just after) which the mistake
        /// occurred — the builder's equivalent of a source span.
        inst: u32,
        /// Human-readable description.
        msg: String,
    },
    /// The interpreter exceeded its step budget (runaway loop).
    StepBudgetExceeded,
    /// The interpreter hit a dynamic fault (e.g. vector index out of range).
    Fault(String),
}

impl std::fmt::Display for MirError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MirError::DanglingRef(s) => write!(f, "dangling reference: {s}"),
            MirError::Invalid(s) => write!(f, "invalid MIR: {s}"),
            MirError::Parse { line, col, msg } => {
                write!(f, "parse error at line {line}, column {col}: {msg}")
            }
            MirError::Build { inst, msg } => {
                write!(f, "builder error at instruction %{inst}: {msg}")
            }
            MirError::StepBudgetExceeded => write!(f, "interpreter step budget exceeded"),
            MirError::Fault(s) => write!(f, "runtime fault: {s}"),
        }
    }
}

impl std::error::Error for MirError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, MirError>;
