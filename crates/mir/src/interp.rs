//! The reference interpreter — the "input middlebox".
//!
//! Functional equivalence (goal 1 in §3.1) is defined against this
//! interpreter: for any packet sequence, the deployed switch+server pipeline
//! must emit the same packets and leave the global state equal to what this
//! interpreter produces when running the *unpartitioned* program. It is also
//! the execution engine of the FastClick baseline in the evaluation.

use crate::func::{BlockId, Program, Terminator, ValueId};
use crate::inst::{HeaderField, Op};
use crate::state::StateStore;
use crate::types::mask_to_width;
use crate::{MirError, Result};
use gallium_net::{
    EtherType, EthernetView, Ipv4View, Packet, TcpView, UdpView, ETHERNET_HEADER_LEN,
    IPV4_HEADER_LEN,
};

/// A runtime value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtVal {
    /// Scalar integer.
    Int(u64),
    /// Map-lookup result: `None` = miss.
    MapRes(Option<Vec<u64>>),
    /// No value (effect-only instruction).
    Unit,
}

impl RtVal {
    /// The integer payload, or an error for non-scalars.
    pub fn as_int(&self) -> Result<u64> {
        match self {
            RtVal::Int(v) => Ok(*v),
            other => Err(MirError::Fault(format!("expected int, got {other:?}"))),
        }
    }
}

/// What the middlebox did with (copies of) the packet.
#[derive(Debug, Clone, PartialEq)]
pub enum PacketAction {
    /// The packet was emitted; the snapshot holds its bytes at send time.
    Send(Packet),
    /// The packet was dropped.
    Drop,
}

/// One observable global-state event during interpretation. The mutation
/// entries drive state synchronization when the server *replays* a whole
/// packet (the §7 table-cache extension); the query entries drive
/// cache-fill decisions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateMutation {
    /// Map insert/overwrite.
    MapPut {
        /// The state.
        state: crate::StateId,
        /// Key components.
        key: Vec<u64>,
        /// Value components.
        value: Vec<u64>,
    },
    /// Map delete.
    MapDel {
        /// The state.
        state: crate::StateId,
        /// Key components.
        key: Vec<u64>,
    },
    /// Register write (post-update value).
    RegSet {
        /// The state.
        state: crate::StateId,
        /// New value.
        value: u64,
    },
    /// A map lookup was performed (not a mutation; recorded for cache
    /// fills).
    MapQueried {
        /// The state.
        state: crate::StateId,
        /// Key components.
        key: Vec<u64>,
        /// Whether the lookup hit.
        hit: bool,
    },
}

/// Result of interpreting one packet.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecResult {
    /// Emissions/drops in program order.
    pub actions: Vec<PacketAction>,
    /// Every instruction executed, in order — used for fast-path accounting
    /// and per-partition cycle attribution in the evaluation.
    pub executed: Vec<ValueId>,
    /// Global-state events in execution order.
    pub mutations: Vec<StateMutation>,
}

impl ExecResult {
    /// Convenience: the single sent packet, if exactly one was sent.
    pub fn sent(&self) -> Option<&Packet> {
        let mut found = None;
        for a in &self.actions {
            if let PacketAction::Send(p) = a {
                if found.is_some() {
                    return None;
                }
                found = Some(p);
            }
        }
        found
    }

    /// True when any action dropped the packet.
    pub fn dropped(&self) -> bool {
        self.actions.iter().any(|a| matches!(a, PacketAction::Drop))
    }
}

/// Deterministic hash used by the `hash` instruction. Shared between the
/// interpreter and the switch simulator so both sides compute identical
/// values (FNV-1a over the operand words).
pub fn hash_values(inputs: &[u64], width: u8) -> u64 {
    hash_values_iter(inputs.iter().copied(), width)
}

/// Streaming form of [`hash_values`]: identical digest, but inputs arrive
/// from an iterator so callers (e.g. the switch plan's register file) need
/// not materialize a slice.
pub fn hash_values_iter(inputs: impl IntoIterator<Item = u64>, width: u8) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for v in inputs {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    mask_to_width(h, width)
}

/// Read a header field out of a plain (non-encapsulated) frame. Fields not
/// present (short packet / non-TCP) read as zero — both the reference and
/// the deployed pipeline behave identically, preserving equivalence.
pub fn read_header_field(bytes: &[u8], field: HeaderField) -> u64 {
    let eth = match EthernetView::new(bytes) {
        Ok(e) => e,
        Err(_) => return 0,
    };
    use HeaderField::*;
    match field {
        EthSrc => return eth.src().to_u64(),
        EthDst => return eth.dst().to_u64(),
        EthType => return u64::from(u16::from(eth.ethertype())),
        _ => {}
    }
    if eth.ethertype() != EtherType::Ipv4 {
        return 0;
    }
    let ip = match Ipv4View::new(eth.payload()) {
        Ok(v) => v,
        Err(_) => return 0,
    };
    match field {
        IpSaddr => return u64::from(ip.saddr()),
        IpDaddr => return u64::from(ip.daddr()),
        IpProto => return u64::from(u8::from(ip.protocol())),
        IpTtl => return u64::from(ip.ttl()),
        IpTotalLen => return u64::from(ip.total_len()),
        _ => {}
    }
    // Transport fields: sport/dport share offsets for TCP and UDP.
    let tp = ip.payload();
    match field {
        SrcPort => TcpView::new(tp).map(|t| u64::from(t.sport())).unwrap_or(0),
        DstPort => TcpView::new(tp).map(|t| u64::from(t.dport())).unwrap_or(0),
        TcpSeq => TcpView::new(tp).map(|t| u64::from(t.seq())).unwrap_or(0),
        TcpAck => TcpView::new(tp).map(|t| u64::from(t.ack_no())).unwrap_or(0),
        TcpFlags => TcpView::new(tp)
            .map(|t| u64::from(t.flags().0))
            .unwrap_or(0),
        _ => 0,
    }
}

/// Write a header field into a plain frame. Writes to absent fields are
/// silently ignored (mirroring [`read_header_field`]).
pub fn write_header_field(bytes: &mut [u8], field: HeaderField, value: u64) {
    use HeaderField::*;
    let Ok(mut eth) = EthernetView::new(&mut *bytes) else {
        return;
    };
    match field {
        EthSrc => {
            eth.set_src(gallium_net::MacAddr::from_u64(value));
            return;
        }
        EthDst => {
            eth.set_dst(gallium_net::MacAddr::from_u64(value));
            return;
        }
        EthType => {
            eth.set_ethertype(EtherType::from(value as u16));
            return;
        }
        _ => {}
    }
    if eth.ethertype() != EtherType::Ipv4 {
        return;
    }
    let ip_bytes = &mut bytes[ETHERNET_HEADER_LEN..];
    let Ok(mut ip) = Ipv4View::new(&mut *ip_bytes) else {
        return;
    };
    match field {
        IpSaddr => {
            ip.set_saddr(value as u32);
            return;
        }
        IpDaddr => {
            ip.set_daddr(value as u32);
            return;
        }
        IpProto => {
            ip.set_protocol(gallium_net::IpProtocol::from(value as u8));
            return;
        }
        IpTtl => {
            ip.set_ttl(value as u8);
            return;
        }
        IpTotalLen => {
            ip.set_total_len(value as u16);
            return;
        }
        _ => {}
    }
    let proto = ip.protocol();
    let tp = &mut ip_bytes[IPV4_HEADER_LEN..];
    match (field, proto) {
        (SrcPort, gallium_net::IpProtocol::Udp) => {
            if let Ok(mut u) = UdpView::new(tp) {
                u.set_sport(value as u16);
            }
        }
        (DstPort, gallium_net::IpProtocol::Udp) => {
            if let Ok(mut u) = UdpView::new(tp) {
                u.set_dport(value as u16);
            }
        }
        (SrcPort, _) => {
            if let Ok(mut t) = TcpView::new(tp) {
                t.set_sport(value as u16);
            }
        }
        (DstPort, _) => {
            if let Ok(mut t) = TcpView::new(tp) {
                t.set_dport(value as u16);
            }
        }
        (TcpSeq, _) => {
            if let Ok(mut t) = TcpView::new(tp) {
                t.set_seq(value as u32);
            }
        }
        (TcpAck, _) => {
            if let Ok(mut t) = TcpView::new(tp) {
                t.set_ack_no(value as u32);
            }
        }
        (TcpFlags, _) => {
            if let Ok(mut t) = TcpView::new(tp) {
                t.set_flags(gallium_net::TcpFlags(value as u8));
            }
        }
        _ => {}
    }
}

/// Locate the transport payload of a plain frame (empty when absent).
pub fn transport_payload(bytes: &[u8]) -> &[u8] {
    let payload_off = (|| {
        let eth = EthernetView::new(bytes).ok()?;
        if eth.ethertype() != EtherType::Ipv4 {
            return None;
        }
        let ip = Ipv4View::new(eth.payload()).ok()?;
        let ip_off = ETHERNET_HEADER_LEN + usize::from(ip.ihl()) * 4;
        match ip.protocol() {
            gallium_net::IpProtocol::Tcp => {
                let t = TcpView::new(&bytes[ip_off.min(bytes.len())..]).ok()?;
                Some(ip_off + usize::from(t.data_offset()) * 4)
            }
            gallium_net::IpProtocol::Udp => Some(ip_off + gallium_net::UDP_HEADER_LEN),
            _ => None,
        }
    })();
    match payload_off {
        Some(off) if off <= bytes.len() => &bytes[off..],
        _ => &[],
    }
}

/// Recompute the IPv4 header checksum of a plain frame, if it is IPv4.
pub fn refresh_ip_checksum(bytes: &mut [u8]) {
    let Ok(eth) = EthernetView::new(&*bytes) else {
        return;
    };
    if eth.ethertype() != EtherType::Ipv4 {
        return;
    }
    if let Ok(mut ip) = Ipv4View::new(&mut bytes[ETHERNET_HEADER_LEN..]) {
        ip.fill_checksum();
    }
}

/// A reusable register file for [`Interpreter::run_with`].
///
/// The interpreter stores one `Option<RtVal>` per MIR instruction while a
/// packet executes. Allocating that vector per packet dominates the
/// per-packet heap traffic of batch callers (`ReferenceServer::
/// process_batch`, cache-miss replay), so the file lives outside the
/// interpreter: callers hold one and thread it through every `run_with`,
/// paying the allocation once and a `clear`+`resize` (capacity reuse)
/// thereafter. The φ-node staging buffer is pooled here for the same
/// reason.
#[derive(Debug, Default)]
pub struct RegFile {
    vals: Vec<Option<RtVal>>,
    phi_scratch: Vec<(ValueId, RtVal)>,
}

impl RegFile {
    /// Empty register file; sized lazily on first use.
    pub fn new() -> Self {
        RegFile::default()
    }

    /// Reset to `n` unset slots, reusing existing capacity.
    fn reset(&mut self, n: usize) {
        self.vals.clear();
        self.vals.resize(n, None);
        self.phi_scratch.clear();
    }
}

/// The reference interpreter.
#[derive(Debug)]
pub struct Interpreter<'p> {
    prog: &'p Program,
    step_budget: usize,
}

impl<'p> Interpreter<'p> {
    /// Interpreter over `prog` with the default step budget.
    pub fn new(prog: &'p Program) -> Self {
        Interpreter {
            prog,
            step_budget: 100_000,
        }
    }

    /// Override the runaway-loop guard.
    pub fn with_step_budget(mut self, budget: usize) -> Self {
        self.step_budget = budget;
        self
    }

    /// Process one packet against `store` at time `now_ns`.
    ///
    /// Allocates a fresh [`RegFile`] per call; batch callers should hold
    /// one and use [`Interpreter::run_with`] instead.
    pub fn run(&self, pkt: &mut Packet, store: &mut StateStore, now_ns: u64) -> Result<ExecResult> {
        self.run_with(pkt, store, now_ns, &mut RegFile::new())
    }

    /// Process one packet, reusing `regs` as the per-instruction value
    /// file. Behaviorally identical to [`Interpreter::run`]; the register
    /// file's contents on entry are discarded.
    pub fn run_with(
        &self,
        pkt: &mut Packet,
        store: &mut StateStore,
        now_ns: u64,
        regs: &mut RegFile,
    ) -> Result<ExecResult> {
        let f = &self.prog.func;
        regs.reset(f.insts.len());
        let RegFile { vals, phi_scratch } = regs;
        let mut result = ExecResult {
            actions: Vec::new(),
            executed: Vec::new(),
            mutations: Vec::new(),
        };
        let mut steps = 0usize;
        let mut prev: Option<BlockId> = None;
        let mut cur = f.entry;
        loop {
            let block = f.block(cur);
            // φ-nodes read their operands against `prev` *before* any of
            // this block's definitions overwrite them; evaluate in a batch.
            let leading_phis = block
                .insts
                .iter()
                .take_while(|v| matches!(f.inst(**v).op, Op::Phi { .. }))
                .count();
            phi_scratch.clear();
            for &v in &block.insts[..leading_phis] {
                let Op::Phi { incoming } = &f.inst(v).op else {
                    unreachable!()
                };
                let pb = prev.ok_or_else(|| MirError::Fault(format!("{v}: phi in entry block")))?;
                let (_, pv) = incoming
                    .iter()
                    .find(|(ib, _)| *ib == pb)
                    .ok_or_else(|| MirError::Fault(format!("{v}: no phi edge from {pb}")))?;
                let val = vals[pv.0 as usize]
                    .clone()
                    .ok_or_else(|| MirError::Fault(format!("{v}: phi operand {pv} unset")))?;
                phi_scratch.push((v, val));
            }
            for (v, val) in phi_scratch.drain(..) {
                vals[v.0 as usize] = Some(val);
                result.executed.push(v);
                steps += 1;
            }
            for &v in &block.insts[leading_phis..] {
                steps += 1;
                if steps > self.step_budget {
                    return Err(MirError::StepBudgetExceeded);
                }
                let val = self.eval(v, vals, pkt, store, now_ns, &mut result)?;
                vals[v.0 as usize] = Some(val);
                result.executed.push(v);
            }
            match &block.term {
                Terminator::Return => break,
                Terminator::Jump(b) => {
                    prev = Some(cur);
                    cur = *b;
                }
                Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let c = vals[cond.0 as usize]
                        .as_ref()
                        .ok_or_else(|| MirError::Fault(format!("branch cond {cond} unset")))?
                        .as_int()?;
                    prev = Some(cur);
                    cur = if c != 0 { *then_bb } else { *else_bb };
                }
            }
            if steps > self.step_budget {
                return Err(MirError::StepBudgetExceeded);
            }
        }
        Ok(result)
    }

    fn eval(
        &self,
        v: ValueId,
        vals: &[Option<RtVal>],
        pkt: &mut Packet,
        store: &mut StateStore,
        now_ns: u64,
        result: &mut ExecResult,
    ) -> Result<RtVal> {
        let f = &self.prog.func;
        let inst = f.inst(v);
        let get = |u: ValueId| -> Result<&RtVal> {
            vals[u.0 as usize]
                .as_ref()
                .ok_or_else(|| MirError::Fault(format!("{v}: operand {u} unset")))
        };
        let get_int = |u: ValueId| -> Result<u64> { get(u)?.as_int() };
        Ok(match &inst.op {
            Op::Const { value, .. } => RtVal::Int(*value),
            Op::Bin { op, a, b } => {
                let width = inst.ty.int_width().unwrap_or(64);
                RtVal::Int(op.eval(get_int(*a)?, get_int(*b)?, width))
            }
            Op::Not { a } => {
                let w = inst.ty.int_width().unwrap_or(64);
                RtVal::Int(mask_to_width(!get_int(*a)?, w))
            }
            Op::Cast { a, width } => RtVal::Int(mask_to_width(get_int(*a)?, *width)),
            Op::Phi { .. } => unreachable!("phis evaluated at block entry"),
            Op::ReadField { field } => RtVal::Int(read_header_field(pkt.bytes(), *field)),
            Op::WriteField { field, value } => {
                let val = mask_to_width(get_int(*value)?, field.bits());
                write_header_field(pkt.bytes_mut(), *field, val);
                RtVal::Unit
            }
            Op::ReadPort => RtVal::Int(u64::from(pkt.ingress.0)),
            Op::PayloadMatch { pattern } => {
                let payload = transport_payload(pkt.bytes());
                let found = !pattern.is_empty()
                    && payload
                        .windows(pattern.len())
                        .any(|w| w == pattern.as_slice());
                RtVal::Int(u64::from(found))
            }
            Op::MapGet { map, key } => {
                let k: Vec<u64> = key.iter().map(|u| get_int(*u)).collect::<Result<_>>()?;
                let r = store.map_get(*map, &k)?;
                result.mutations.push(StateMutation::MapQueried {
                    state: *map,
                    key: k,
                    hit: r.is_some(),
                });
                RtVal::MapRes(r)
            }
            Op::LpmGet { table, key } => {
                let k = get_int(*key)?;
                let key_width = match &self.prog.states[table.0 as usize].kind {
                    crate::StateKind::LpmMap { key_width, .. } => *key_width,
                    _ => 64,
                };
                RtVal::MapRes(store.lpm_get(*table, k, key_width)?)
            }
            Op::IsNull { a } => match get(*a)? {
                RtVal::MapRes(r) => RtVal::Int(u64::from(r.is_none())),
                other => return Err(MirError::Fault(format!("{v}: is_null on {other:?}"))),
            },
            Op::Extract { a, index } => match get(*a)? {
                RtVal::MapRes(Some(r)) => RtVal::Int(
                    *r.get(*index)
                        .ok_or_else(|| MirError::Fault(format!("{v}: extract out of range")))?,
                ),
                RtVal::MapRes(None) => {
                    return Err(MirError::Fault(format!(
                        "{v}: null dereference of map result"
                    )))
                }
                other => return Err(MirError::Fault(format!("{v}: extract on {other:?}"))),
            },
            Op::MapPut { map, key, value } => {
                let k: Vec<u64> = key.iter().map(|u| get_int(*u)).collect::<Result<_>>()?;
                let val: Vec<u64> = value.iter().map(|u| get_int(*u)).collect::<Result<_>>()?;
                store.map_put(*map, k.clone(), val.clone())?;
                result.mutations.push(StateMutation::MapPut {
                    state: *map,
                    key: k,
                    value: val,
                });
                RtVal::Unit
            }
            Op::MapDel { map, key } => {
                let k: Vec<u64> = key.iter().map(|u| get_int(*u)).collect::<Result<_>>()?;
                store.map_del(*map, &k)?;
                result.mutations.push(StateMutation::MapDel {
                    state: *map,
                    key: k,
                });
                RtVal::Unit
            }
            Op::VecGet { vec, index } => {
                let i = get_int(*index)? as usize;
                RtVal::Int(store.vec_get(*vec, i)?)
            }
            Op::VecLen { vec } => RtVal::Int(store.vec_len(*vec)? as u64),
            Op::RegRead { reg } => RtVal::Int(store.reg_read(*reg)?),
            Op::RegWrite { reg, value } => {
                let x = get_int(*value)?;
                store.reg_write(*reg, x)?;
                result.mutations.push(StateMutation::RegSet {
                    state: *reg,
                    value: x,
                });
                RtVal::Unit
            }
            Op::RegFetchAdd { reg, delta } => {
                let old = store.reg_fetch_add(*reg, get_int(*delta)?)?;
                result.mutations.push(StateMutation::RegSet {
                    state: *reg,
                    value: store.reg_read(*reg)?,
                });
                RtVal::Int(old)
            }
            Op::Hash { inputs, width } => {
                let ins: Vec<u64> = inputs.iter().map(|u| get_int(*u)).collect::<Result<_>>()?;
                RtVal::Int(hash_values(&ins, *width))
            }
            Op::Now => RtVal::Int(now_ns),
            Op::UpdateChecksum => {
                refresh_ip_checksum(pkt.bytes_mut());
                RtVal::Unit
            }
            Op::Send => {
                result.actions.push(PacketAction::Send(pkt.clone()));
                RtVal::Unit
            }
            Op::Drop => {
                result.actions.push(PacketAction::Drop);
                RtVal::Unit
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::inst::BinOp;
    use gallium_net::{FiveTuple, IpProtocol, PacketBuilder, PortId, TcpFlags};

    fn tcp_packet(saddr: u32, daddr: u32) -> Packet {
        PacketBuilder::tcp(
            FiveTuple {
                saddr,
                daddr,
                sport: 1000,
                dport: 80,
                proto: IpProtocol::Tcp,
            },
            TcpFlags(TcpFlags::ACK),
            100,
        )
        .build(PortId(1))
    }

    /// The MiniLB program from §4, built with the FuncBuilder.
    pub fn minilb() -> Program {
        let mut b = FuncBuilder::new("minilb");
        let map = b.decl_map("map", vec![16], vec![32], Some(65536));
        let backends = b.decl_vector("backends", 32, 16);
        let saddr = b.read_field(HeaderField::IpSaddr);
        let daddr = b.read_field(HeaderField::IpDaddr);
        let hash32 = b.bin(BinOp::Xor, saddr, daddr);
        let mask = b.cnst(0xFFFF, 32);
        let low = b.bin(BinOp::And, hash32, mask);
        let key = b.cast(low, 16);
        let res = b.map_get(map, vec![key]);
        let null = b.is_null(res);
        let hit = b.new_block();
        let miss = b.new_block();
        b.branch(null, miss, hit);
        b.switch_to(hit);
        let bk = b.extract(res, 0);
        b.write_field(HeaderField::IpDaddr, bk);
        b.send();
        b.ret();
        b.switch_to(miss);
        let len = b.vec_len(backends);
        let idx = b.bin(BinOp::Mod, hash32, len);
        let bk2 = b.vec_get(backends, idx);
        b.write_field(HeaderField::IpDaddr, bk2);
        b.map_put(map, vec![key], vec![bk2]);
        b.send();
        b.ret();
        b.finish().unwrap()
    }

    #[test]
    fn minilb_miss_then_hit() {
        let prog = minilb();
        let mut store = StateStore::new(&prog.states);
        let backends = prog.state_by_name("backends").unwrap();
        store
            .vec_set_all(backends, vec![0xC0A80001, 0xC0A80002, 0xC0A80003])
            .unwrap();
        let interp = Interpreter::new(&prog);

        let mut p1 = tcp_packet(0x0A000001, 0x0A000099);
        let r1 = interp.run(&mut p1, &mut store, 0).unwrap();
        let sent1 = r1.sent().expect("packet sent");
        let d1 = read_header_field(sent1.bytes(), HeaderField::IpDaddr);
        assert!((0xC0A80001..=0xC0A80003).contains(&(d1 as u32)));
        let map = prog.state_by_name("map").unwrap();
        assert_eq!(store.map_len(map).unwrap(), 1);

        // Same flow again: must hit and go to the same backend.
        let mut p2 = tcp_packet(0x0A000001, 0x0A000099);
        let r2 = interp.run(&mut p2, &mut store, 1).unwrap();
        let d2 = read_header_field(r2.sent().unwrap().bytes(), HeaderField::IpDaddr);
        assert_eq!(d1, d2);
        assert_eq!(store.map_len(map).unwrap(), 1);
        // The hit path executes fewer instructions than the miss path.
        assert!(r2.executed.len() < r1.executed.len());
    }

    #[test]
    fn header_rw_roundtrip() {
        let mut p = tcp_packet(7, 9);
        for field in HeaderField::ALL {
            let val = mask_to_width(0xA5A5_A5A5_A5A5_A5A5, field.bits());
            write_header_field(p.bytes_mut(), field, val);
            assert_eq!(
                read_header_field(p.bytes(), field),
                val,
                "field {}",
                field.name()
            );
            if field == HeaderField::EthType {
                // Restore IPv4 so the remaining (IP/TCP) fields resolve.
                write_header_field(p.bytes_mut(), field, 0x0800);
            }
        }
    }

    #[test]
    fn payload_match_finds_pattern() {
        let t = FiveTuple {
            saddr: 1,
            daddr: 2,
            sport: 22,
            dport: 1022,
            proto: IpProtocol::Tcp,
        };
        let pkt = PacketBuilder::tcp(t, TcpFlags(TcpFlags::ACK), 0)
            .payload(b"SSH-2.0-OpenSSH_8.9".to_vec())
            .build(PortId(0));
        assert_eq!(transport_payload(pkt.bytes()), b"SSH-2.0-OpenSSH_8.9");

        let mut b = FuncBuilder::new("dpi");
        let m = b.payload_match(b"SSH-");
        let w = b.cast(m, 8);
        b.write_field(HeaderField::IpTtl, w);
        b.ret();
        let prog = b.finish().unwrap();
        let mut store = StateStore::new(&prog.states);
        let mut p = pkt.clone();
        Interpreter::new(&prog).run(&mut p, &mut store, 0).unwrap();
        assert_eq!(read_header_field(p.bytes(), HeaderField::IpTtl), 1);
    }

    #[test]
    fn loop_hits_step_budget() {
        let mut b = FuncBuilder::new("spin");
        let l = b.new_block();
        b.jump(l);
        b.switch_to(l);
        let one = b.cnst(1, 1);
        let _ = one;
        b.jump(l);
        let prog = b.finish().unwrap();
        let mut store = StateStore::new(&prog.states);
        let mut p = tcp_packet(1, 2);
        let err = Interpreter::new(&prog)
            .with_step_budget(100)
            .run(&mut p, &mut store, 0)
            .unwrap_err();
        assert_eq!(err, MirError::StepBudgetExceeded);
    }

    #[test]
    fn null_dereference_faults() {
        let mut b = FuncBuilder::new("deref");
        let m = b.decl_map("m", vec![16], vec![32], Some(8));
        let k = b.cnst(1, 16);
        let r = b.map_get(m, vec![k]);
        let _x = b.extract(r, 0); // no null check
        b.ret();
        let prog = b.finish().unwrap();
        let mut store = StateStore::new(&prog.states);
        let mut p = tcp_packet(1, 2);
        assert!(matches!(
            Interpreter::new(&prog).run(&mut p, &mut store, 0),
            Err(MirError::Fault(_))
        ));
    }

    #[test]
    fn fetch_add_allocates_monotonic_ports() {
        let mut b = FuncBuilder::new("alloc");
        let ctr = b.decl_register("ctr", 16);
        let one = b.cnst(1, 16);
        let old = b.reg_fetch_add(ctr, one);
        b.write_field(HeaderField::SrcPort, old);
        b.send();
        b.ret();
        let prog = b.finish().unwrap();
        let mut store = StateStore::new(&prog.states);
        let interp = Interpreter::new(&prog);
        let mut seen = Vec::new();
        for _ in 0..3 {
            let mut p = tcp_packet(1, 2);
            let r = interp.run(&mut p, &mut store, 0).unwrap();
            seen.push(read_header_field(
                r.sent().unwrap().bytes(),
                HeaderField::SrcPort,
            ));
        }
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn hash_is_deterministic_and_masked() {
        let a = hash_values(&[1, 2, 3], 16);
        let b = hash_values(&[1, 2, 3], 16);
        assert_eq!(a, b);
        assert!(a <= 0xFFFF);
        assert_ne!(hash_values(&[1, 2, 3], 32), hash_values(&[3, 2, 1], 32));
    }

    #[test]
    fn drop_records_action() {
        let mut b = FuncBuilder::new("dropper");
        b.drop_pkt();
        b.ret();
        let prog = b.finish().unwrap();
        let mut store = StateStore::new(&prog.states);
        let mut p = tcp_packet(1, 2);
        let r = Interpreter::new(&prog).run(&mut p, &mut store, 0).unwrap();
        assert!(r.dropped());
        assert_eq!(r.sent(), None);
    }
}
