//! Value types.

/// The type of an SSA value.
///
/// Everything a middlebox computes on is an unsigned integer of at most 64
/// bits (the paper's switches "support integers only but not floating-point
/// numbers", §2.2). Booleans are 1-bit integers. A map lookup produces a
/// [`Ty::MapResult`] — the IR analogue of the nullable pointer returned by
/// `HashMap::find` in the paper's MiniLB, inspected with `isnull` and
/// `extract` instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ty {
    /// An unsigned integer of the given bit width (1..=64).
    Int(u8),
    /// Result of a map lookup: either absent, or a record whose components
    /// have the given bit widths.
    MapResult(Vec<u8>),
    /// Produced by instructions executed purely for effect.
    Unit,
}

impl Ty {
    /// 1-bit integer (booleans).
    pub const BOOL: Ty = Ty::Int(1);

    /// Bit width of the value as carried in per-packet metadata or the
    /// transfer header. A `MapResult` needs one presence bit plus its
    /// component widths; `Unit` occupies nothing.
    pub fn meta_bits(&self) -> usize {
        match self {
            Ty::Int(w) => usize::from(*w),
            Ty::MapResult(ws) => 1 + ws.iter().map(|w| usize::from(*w)).sum::<usize>(),
            Ty::Unit => 0,
        }
    }

    /// True for scalar integers.
    pub fn is_int(&self) -> bool {
        matches!(self, Ty::Int(_))
    }

    /// The width if this is an integer type.
    pub fn int_width(&self) -> Option<u8> {
        match self {
            Ty::Int(w) => Some(*w),
            _ => None,
        }
    }
}

impl std::fmt::Display for Ty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ty::Int(w) => write!(f, "u{w}"),
            Ty::MapResult(ws) => {
                write!(f, "mapres<")?;
                for (i, w) in ws.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "u{w}")?;
                }
                write!(f, ">")
            }
            Ty::Unit => write!(f, "unit"),
        }
    }
}

/// Mask a value down to `width` bits (width 64 passes through).
pub fn mask_to_width(value: u64, width: u8) -> u64 {
    if width >= 64 {
        value
    } else {
        value & ((1u64 << width) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_bits_int() {
        assert_eq!(Ty::Int(32).meta_bits(), 32);
        assert_eq!(Ty::BOOL.meta_bits(), 1);
        assert_eq!(Ty::Unit.meta_bits(), 0);
    }

    #[test]
    fn meta_bits_mapresult_includes_presence_bit() {
        assert_eq!(Ty::MapResult(vec![32]).meta_bits(), 33);
        assert_eq!(Ty::MapResult(vec![32, 16]).meta_bits(), 49);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Ty::Int(16).to_string(), "u16");
        assert_eq!(Ty::MapResult(vec![32, 16]).to_string(), "mapres<u32,u16>");
        assert_eq!(Ty::Unit.to_string(), "unit");
    }

    #[test]
    fn masking() {
        assert_eq!(mask_to_width(0x1FF, 8), 0xFF);
        assert_eq!(mask_to_width(u64::MAX, 64), u64::MAX);
        assert_eq!(mask_to_width(0b101, 1), 1);
    }
}
