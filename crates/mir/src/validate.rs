//! Structural, SSA, and type validation of MIR programs.
//!
//! Every program accepted by the compiler passes through here first, so the
//! analyses and the partitioner can rely on the invariants: block/value/state
//! references resolve, every instruction is placed in exactly one block,
//! definitions dominate uses, and operand types are consistent with the
//! state declarations.

use crate::cfg::Cfg;
use crate::func::{Program, Terminator, ValueId};
use crate::inst::Op;
use crate::state::StateKind;
use crate::types::Ty;
use crate::{MirError, Result};

/// Validate `prog`, returning the first violation found.
pub fn validate(prog: &Program) -> Result<()> {
    let f = &prog.func;
    let nblocks = f.blocks.len();
    let ninsts = f.insts.len();

    if nblocks == 0 {
        return Err(MirError::Invalid("function has no blocks".into()));
    }
    if f.entry.0 as usize >= nblocks {
        return Err(MirError::DanglingRef(format!("entry {}", f.entry)));
    }
    for (i, b) in f.blocks.iter().enumerate() {
        if b.id.0 as usize != i {
            return Err(MirError::Invalid(format!(
                "block at index {i} has id {}",
                b.id
            )));
        }
        for t in b.term.successors() {
            if t.0 as usize >= nblocks {
                return Err(MirError::DanglingRef(format!("terminator target {t}")));
            }
        }
    }

    // Placement: every instruction in exactly one block, exactly once.
    let mut placed = vec![0usize; ninsts];
    for b in &f.blocks {
        for v in &b.insts {
            if v.0 as usize >= ninsts {
                return Err(MirError::DanglingRef(format!("instruction {v}")));
            }
            placed[v.0 as usize] += 1;
        }
    }
    for (i, count) in placed.iter().enumerate() {
        if *count != 1 {
            return Err(MirError::Invalid(format!(
                "instruction v{i} placed {count} times (must be exactly 1)"
            )));
        }
    }

    // Per-instruction checks.
    let cfg = Cfg::new(f);
    let idom = cfg.dominators();
    let pos_of = |v: ValueId| f.position_of(v).expect("placement verified above");

    for b in &f.blocks {
        for (i, &v) in b.insts.iter().enumerate() {
            let inst = f.inst(v);
            check_op(prog, v)?;
            match &inst.op {
                Op::Phi { incoming } => {
                    // φ-nodes must be at the top of the block, with one
                    // incoming entry per CFG predecessor.
                    let leading_phis = b
                        .insts
                        .iter()
                        .take_while(|iv| matches!(f.inst(**iv).op, Op::Phi { .. }))
                        .count();
                    if i >= leading_phis {
                        return Err(MirError::Invalid(format!(
                            "{v}: phi not at top of block {}",
                            b.id
                        )));
                    }
                    let preds = cfg.preds(b.id);
                    if incoming.len() != preds.len()
                        || !preds.iter().all(|p| incoming.iter().any(|(ib, _)| ib == p))
                    {
                        return Err(MirError::Invalid(format!(
                            "{v}: phi incoming blocks do not match predecessors of {}",
                            b.id
                        )));
                    }
                    // Incoming value must be available at the end of its
                    // predecessor: its defining block must dominate the pred.
                    for (pb, pv) in incoming {
                        let (def_block, _) = pos_of(*pv);
                        if !cfg.dominates(&idom, def_block, *pb) {
                            return Err(MirError::Invalid(format!(
                                "{v}: phi incoming {pv} does not dominate predecessor {pb}"
                            )));
                        }
                    }
                }
                op => {
                    for u in op.uses() {
                        if u.0 as usize >= ninsts {
                            return Err(MirError::DanglingRef(format!("{v} uses {u}")));
                        }
                        let (ub, ui) = pos_of(u);
                        let ok = if ub == b.id {
                            ui < i
                        } else {
                            cfg.dominates(&idom, ub, b.id)
                        };
                        if !ok {
                            return Err(MirError::Invalid(format!(
                                "{v}: use of {u} not dominated by its definition"
                            )));
                        }
                    }
                }
            }
        }
        if let Terminator::Branch { cond, .. } = &b.term {
            if cond.0 as usize >= ninsts {
                return Err(MirError::DanglingRef(format!("branch cond {cond}")));
            }
            if !f.inst(*cond).ty.is_int() {
                return Err(MirError::Invalid(format!(
                    "branch condition {cond} is not an integer"
                )));
            }
            let (cb, _) = pos_of(*cond);
            if !cfg.dominates(&idom, cb, b.id) {
                return Err(MirError::Invalid(format!(
                    "branch condition {cond} does not dominate block {}",
                    b.id
                )));
            }
        }
    }
    Ok(())
}

/// Per-op structural checks: state references, arities, component indices.
fn check_op(prog: &Program, v: ValueId) -> Result<()> {
    let f = &prog.func;
    let inst = f.inst(v);
    let state = |s: crate::state::StateId| {
        prog.states
            .get(s.0 as usize)
            .ok_or_else(|| MirError::DanglingRef(format!("{v} references state {s}")))
    };
    match &inst.op {
        Op::MapGet { map, key } | Op::MapDel { map, key } => match &state(*map)?.kind {
            StateKind::Map { key_widths, .. } => {
                if key.len() != key_widths.len() {
                    return Err(MirError::Invalid(format!(
                        "{v}: key arity {} does not match map declaration {}",
                        key.len(),
                        key_widths.len()
                    )));
                }
            }
            _ => {
                return Err(MirError::Invalid(format!("{v}: state {map} is not a map")));
            }
        },
        Op::MapPut { map, key, value } => match &state(*map)?.kind {
            StateKind::Map {
                key_widths,
                value_widths,
                ..
            } => {
                if key.len() != key_widths.len() || value.len() != value_widths.len() {
                    return Err(MirError::Invalid(format!(
                        "{v}: map_put arity mismatch for {map}"
                    )));
                }
            }
            _ => {
                return Err(MirError::Invalid(format!("{v}: state {map} is not a map")));
            }
        },
        Op::LpmGet { table, .. } if !matches!(state(*table)?.kind, StateKind::LpmMap { .. }) => {
            return Err(MirError::Invalid(format!(
                "{v}: state {table} is not an LPM table"
            )));
        }
        Op::VecGet { vec, .. } | Op::VecLen { vec }
            if !matches!(state(*vec)?.kind, StateKind::Vector { .. }) =>
        {
            return Err(MirError::Invalid(format!(
                "{v}: state {vec} is not a vector"
            )));
        }
        Op::RegRead { reg } | Op::RegWrite { reg, .. } | Op::RegFetchAdd { reg, .. }
            if !matches!(state(*reg)?.kind, StateKind::Register { .. }) =>
        {
            return Err(MirError::Invalid(format!(
                "{v}: state {reg} is not a register"
            )));
        }
        Op::Extract { a, index } => match &f.inst(*a).ty {
            Ty::MapResult(ws) => {
                if *index >= ws.len() {
                    return Err(MirError::Invalid(format!(
                        "{v}: extract index {index} out of range"
                    )));
                }
            }
            _ => {
                return Err(MirError::Invalid(format!(
                    "{v}: extract on non-map-result {a}"
                )));
            }
        },
        Op::IsNull { a } if !matches!(f.inst(*a).ty, Ty::MapResult(_)) => {
            return Err(MirError::Invalid(format!(
                "{v}: is_null on non-map-result {a}"
            )));
        }
        _ => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{BasicBlock, BlockId, Function};
    use crate::inst::{HeaderField, Inst};
    use crate::FuncBuilder;

    fn raw_program(blocks: Vec<BasicBlock>, insts: Vec<Inst>) -> Program {
        Program {
            name: "raw".into(),
            states: vec![],
            func: Function {
                insts,
                blocks,
                entry: BlockId(0),
            },
        }
    }

    #[test]
    fn accepts_builder_output() {
        let mut b = FuncBuilder::new("ok");
        let x = b.read_field(HeaderField::IpSaddr);
        b.write_field(HeaderField::IpDaddr, x);
        b.ret();
        // finish() runs validate internally; no error expected.
        b.finish().unwrap();
    }

    #[test]
    fn rejects_empty_function() {
        let p = raw_program(vec![], vec![]);
        assert!(matches!(validate(&p), Err(MirError::Invalid(_))));
    }

    #[test]
    fn rejects_unplaced_instruction() {
        let insts = vec![Inst {
            op: Op::Drop,
            ty: Ty::Unit,
        }];
        let p = raw_program(
            vec![BasicBlock {
                id: BlockId(0),
                insts: vec![], // v0 exists but is not placed
                term: Terminator::Return,
            }],
            insts,
        );
        assert!(matches!(validate(&p), Err(MirError::Invalid(_))));
    }

    #[test]
    fn rejects_dangling_branch_target() {
        let insts = vec![Inst {
            op: Op::Const { value: 1, width: 1 },
            ty: Ty::Int(1),
        }];
        let p = raw_program(
            vec![BasicBlock {
                id: BlockId(0),
                insts: vec![ValueId(0)],
                term: Terminator::Branch {
                    cond: ValueId(0),
                    then_bb: BlockId(7),
                    else_bb: BlockId(0),
                },
            }],
            insts,
        );
        assert!(matches!(validate(&p), Err(MirError::DanglingRef(_))));
    }

    #[test]
    fn rejects_use_before_def_across_blocks() {
        // b0 branches to b1/b2; b1 defines v, b2 uses it.
        let insts = vec![
            Inst {
                op: Op::Const { value: 1, width: 1 },
                ty: Ty::Int(1),
            },
            Inst {
                op: Op::Const { value: 9, width: 8 },
                ty: Ty::Int(8),
            },
            Inst {
                op: Op::WriteField {
                    field: HeaderField::IpTtl,
                    value: ValueId(1),
                },
                ty: Ty::Unit,
            },
        ];
        let p = raw_program(
            vec![
                BasicBlock {
                    id: BlockId(0),
                    insts: vec![ValueId(0)],
                    term: Terminator::Branch {
                        cond: ValueId(0),
                        then_bb: BlockId(1),
                        else_bb: BlockId(2),
                    },
                },
                BasicBlock {
                    id: BlockId(1),
                    insts: vec![ValueId(1)],
                    term: Terminator::Return,
                },
                BasicBlock {
                    id: BlockId(2),
                    insts: vec![ValueId(2)], // uses v1 defined in sibling b1
                    term: Terminator::Return,
                },
            ],
            insts,
        );
        assert!(matches!(validate(&p), Err(MirError::Invalid(_))));
    }

    #[test]
    fn rejects_phi_with_wrong_preds() {
        let mut b = FuncBuilder::new("t");
        let c = b.cnst(1, 1);
        let t = b.new_block();
        let e = b.new_block();
        let m = b.new_block();
        b.branch(c, t, e);
        b.switch_to(t);
        let v1 = b.cnst(1, 8);
        b.jump(m);
        b.switch_to(e);
        b.jump(m);
        b.switch_to(m);
        // Phi claims only one incoming, but m has two predecessors.
        let _ph = b.phi(vec![(t, v1)]);
        b.ret();
        assert!(matches!(b.finish(), Err(MirError::Invalid(_))));
    }

    #[test]
    fn rejects_wrong_key_arity() {
        let mut b = FuncBuilder::new("t");
        let m = b.decl_map("m", vec![16, 16], vec![32], Some(8));
        let k = b.cnst(1, 16);
        // Builder would panic on type mismatch only for state kind; arity
        // slips through builder, caught by validate.
        let _r = b.map_get(m, vec![k]);
        b.ret();
        assert!(matches!(b.finish(), Err(MirError::Invalid(_))));
    }
}
