//! Parser for the textual MIR form produced by [`crate::printer`].
//!
//! Every rejection is a [`MirError::Parse`] carrying a 1-based line *and*
//! column: error sites hand the offending token (always a subslice of the
//! raw input line) to [`At::err`], which recovers the column from the
//! token's offset within the line.

use crate::func::{BasicBlock, BlockId, Function, Program, Terminator, ValueId};
use crate::inst::{BinOp, HeaderField, Inst, Op};
use crate::state::{GlobalState, StateId, StateKind};
use crate::types::{mask_to_width, Ty};
use crate::{MirError, Result};
use std::collections::HashMap;

/// Parse a program in the canonical textual form and validate it.
pub fn parse_program(text: &str) -> Result<Program> {
    Parser::new(text).parse()
}

/// A source location: 1-based line number plus the raw (untrimmed) line.
#[derive(Copy, Clone)]
struct At<'a> {
    line: usize,
    raw: &'a str,
}

impl At<'_> {
    /// Build a parse error anchored at `tok`. When `tok` is a subslice of
    /// this line (the common case — all parsing here slices the input),
    /// the column is the token's 1-based offset; otherwise it falls back
    /// to the line's first non-whitespace column.
    fn error(self, tok: &str, msg: impl Into<String>) -> MirError {
        MirError::Parse {
            line: self.line,
            col: self.col(tok),
            msg: msg.into(),
        }
    }

    /// [`At::error`] wrapped in `Err`.
    fn err<T>(self, tok: &str, msg: impl Into<String>) -> Result<T> {
        Err(self.error(tok, msg))
    }

    fn col(self, tok: &str) -> usize {
        let r = self.raw.as_ptr() as usize;
        let t = tok.as_ptr() as usize;
        if t >= r && t.saturating_add(tok.len()) <= r + self.raw.len() {
            t - r + 1
        } else {
            self.raw.len() - self.raw.trim_start().len() + 1
        }
    }
}

struct Parser<'a> {
    /// (location, trimmed content) for each non-blank, non-comment line.
    lines: Vec<(At<'a>, &'a str)>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        let lines = text
            .lines()
            .enumerate()
            .map(|(i, raw)| (At { line: i + 1, raw }, raw.trim()))
            .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'))
            .collect();
        Parser { lines, pos: 0 }
    }

    fn peek(&self) -> Option<(At<'a>, &'a str)> {
        self.lines.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<(At<'a>, &'a str)> {
        let l = self.peek();
        if l.is_some() {
            self.pos += 1;
        }
        l
    }

    /// Location of the last line, for errors about truncated input.
    fn eof_at(&self) -> At<'a> {
        self.lines
            .last()
            .map(|(at, _)| *at)
            .unwrap_or(At { line: 1, raw: "" })
    }

    fn parse(mut self) -> Result<Program> {
        let Some((at, header)) = self.next() else {
            return Err(MirError::Parse {
                line: 1,
                col: 1,
                msg: "empty input".into(),
            });
        };
        let name = header
            .strip_prefix("program ")
            .and_then(|r| r.strip_suffix('{'))
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty());
        let Some(name) = name else {
            return at.err(header, "expected `program <name> {`");
        };

        let mut states = Vec::new();
        let mut state_ids: HashMap<String, StateId> = HashMap::new();
        while let Some((at, l)) = self.peek() {
            if let Some(rest) = l.strip_prefix("state ") {
                self.pos += 1;
                let Some(st) = parse_state(rest) else {
                    return at.err(rest, format!("bad state declaration `{l}`"));
                };
                state_ids.insert(st.name.clone(), StateId(states.len() as u32));
                states.push(st);
            } else {
                break;
            }
        }

        // First pass: scan block structure to pre-assign value and block ids
        // so loops and φ forward references resolve.
        let body_start = self.pos;
        let mut value_ids: HashMap<String, ValueId> = HashMap::new();
        let mut block_ids: HashMap<String, BlockId> = HashMap::new();
        let mut next_value = 0u32;
        let mut scan_pos = self.pos;
        while scan_pos < self.lines.len() {
            let (_, l) = self.lines[scan_pos];
            scan_pos += 1;
            if l == "}" {
                break;
            }
            if let Some(label) = l.strip_suffix(':') {
                let id = BlockId(block_ids.len() as u32);
                block_ids.insert(label.trim().to_string(), id);
            } else if let Some((def, _)) = l.split_once('=') {
                let def = def.trim().to_string();
                value_ids.insert(def, ValueId(next_value));
                next_value += 1;
            } else if is_effect_line(l) {
                next_value += 1; // effect instructions occupy arena slots too
            }
        }

        // Second pass: build instructions.
        self.pos = body_start;
        let mut insts: Vec<Inst> = Vec::new();
        let mut blocks: Vec<BasicBlock> = Vec::new();
        let mut cur: Option<(BlockId, Vec<ValueId>)> = None;
        let mut closed = false;

        let lookup_state = |name: &str, at: At| -> Result<StateId> {
            state_ids
                .get(name)
                .copied()
                .ok_or_else(|| at.error(name, format!("unknown state `{name}`")))
        };
        let lookup_value = |name: &str, at: At| -> Result<ValueId> {
            value_ids
                .get(name)
                .copied()
                .ok_or_else(|| at.error(name, format!("unknown value `{name}`")))
        };
        let lookup_block = |name: &str, at: At| -> Result<BlockId> {
            block_ids
                .get(name)
                .copied()
                .ok_or_else(|| at.error(name, format!("unknown block `{name}`")))
        };

        while let Some((at, l)) = self.next() {
            if l == "}" {
                closed = true;
                break;
            }
            if let Some(label) = l.strip_suffix(':') {
                if let Some((id, is_insts)) = cur.take() {
                    return at.err(
                        l,
                        format!(
                            "block b{}({} insts) not terminated before `{label}`",
                            id.0,
                            is_insts.len()
                        ),
                    );
                }
                cur = Some((lookup_block(label.trim(), at)?, Vec::new()));
                continue;
            }

            // Terminators close the current block.
            let term = if l == "ret" {
                Some(Terminator::Return)
            } else if let Some(rest) = l.strip_prefix("jmp ") {
                Some(Terminator::Jump(lookup_block(rest.trim(), at)?))
            } else if let Some(rest) = l.strip_prefix("br ") {
                let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
                if parts.len() != 3 {
                    return at.err(rest, "br expects `br v, bT, bE`");
                }
                Some(Terminator::Branch {
                    cond: lookup_value(parts[0], at)?,
                    then_bb: lookup_block(parts[1], at)?,
                    else_bb: lookup_block(parts[2], at)?,
                })
            } else {
                None
            };
            if let Some(term) = term {
                let Some((id, insts_v)) = cur.take() else {
                    return at.err(l, format!("terminator `{l}` outside any block"));
                };
                blocks.push(BasicBlock {
                    id,
                    insts: insts_v,
                    term,
                });
                continue;
            }

            let Some((_, ref mut block_insts)) = cur else {
                return at.err(l, format!("instruction `{l}` outside any block"));
            };

            // Instructions. Either `vN = <op...>` or a bare effect op.
            let (def, body) = match l.split_once('=') {
                Some((d, b)) => (Some(d.trim()), b.trim()),
                None => (None, l),
            };
            let id = match def {
                Some(d) => lookup_value(d, at)?,
                None => {
                    // Effect instruction: its arena slot was reserved in the
                    // scan pass in file order; recover it by counting.
                    ValueId(insts.len() as u32)
                }
            };
            // Keep the arena aligned: instructions must appear in id order
            // because the scan pass numbered them by appearance.
            if id.0 as usize != insts.len() {
                return at.err(
                    def.unwrap_or(l),
                    format!("value {} out of order (expected v{})", id, insts.len()),
                );
            }
            let (op, ty) = parse_op(
                body,
                at,
                &states,
                &lookup_state,
                &lookup_value,
                &lookup_block,
                &insts,
            )?;
            insts.push(Inst { op, ty });
            block_insts.push(id);
        }

        if !closed {
            let at = self.eof_at();
            return at.err(at.raw, "missing closing `}`");
        }
        if let Some((id, _)) = cur {
            let at = self.eof_at();
            return at.err(at.raw, format!("block b{} not terminated", id.0));
        }

        let prog = Program {
            name,
            states,
            func: Function {
                insts,
                blocks,
                entry: BlockId(0),
            },
        };
        crate::validate::validate(&prog)?;
        Ok(prog)
    }
}

#[allow(clippy::too_many_arguments)]
fn parse_op<'a>(
    body: &'a str,
    at: At<'a>,
    states: &[GlobalState],
    lookup_state: &dyn Fn(&str, At<'a>) -> Result<StateId>,
    lookup_value: &dyn Fn(&str, At<'a>) -> Result<ValueId>,
    lookup_block: &dyn Fn(&str, At<'a>) -> Result<BlockId>,
    insts: &[Inst],
) -> Result<(Op, Ty)> {
    let ty_of = |v: ValueId, tok: &str| -> Result<Ty> {
        insts
            .get(v.0 as usize)
            .map(|i| i.ty.clone())
            .ok_or_else(|| at.error(tok, format!("{v} used before definition")))
    };
    let int_width = |v: ValueId, tok: &str| -> Result<u8> {
        ty_of(v, tok)?
            .int_width()
            .ok_or_else(|| at.error(tok, format!("{v} is not an integer")))
    };
    let (mnemonic, rest) = match body.split_once(' ') {
        Some((m, r)) => (m, r.trim()),
        None => (body, ""),
    };
    let parse_vlist = |s: &str| -> Result<Vec<ValueId>> {
        let Some(inner) = s.strip_prefix('[').and_then(|x| x.strip_suffix(']')) else {
            return at.err(s, format!("expected [v...], got `{s}`"));
        };
        if inner.trim().is_empty() {
            return Ok(vec![]);
        }
        inner
            .split(',')
            .map(|p| lookup_value(p.trim(), at))
            .collect()
    };

    Ok(match mnemonic {
        "const" => {
            let (val, w) = split_typed(rest, at)?;
            let Some(value) = parse_u64(val) else {
                return at.err(val, format!("bad constant `{val}`"));
            };
            (
                Op::Const {
                    value: mask_to_width(value, w),
                    width: w,
                },
                Ty::Int(w),
            )
        }
        "not" => {
            let a = lookup_value(rest, at)?;
            let w = int_width(a, rest)?;
            (Op::Not { a }, Ty::Int(w))
        }
        "cast" => {
            let (val, w) = split_typed(rest, at)?;
            let a = lookup_value(val, at)?;
            (Op::Cast { a, width: w }, Ty::Int(w))
        }
        "phi" => {
            let Some(inner) = rest.strip_prefix('[').and_then(|x| x.strip_suffix(']')) else {
                return at.err(rest, "phi expects [b: v, ...]");
            };
            let mut incoming = Vec::new();
            for pair in inner.split(',') {
                let Some((b, v)) = pair.split_once(':') else {
                    return at.err(pair, format!("bad phi edge `{pair}`"));
                };
                incoming.push((lookup_block(b.trim(), at)?, lookup_value(v.trim(), at)?));
            }
            let ty = match incoming.first() {
                Some((_, v)) => ty_of(*v, rest)?,
                None => Ty::Unit,
            };
            (Op::Phi { incoming }, ty)
        }
        "readfield" => {
            let Some(field) = HeaderField::from_name(rest) else {
                return at.err(rest, format!("unknown header field `{rest}`"));
            };
            (Op::ReadField { field }, Ty::Int(field.bits()))
        }
        "writefield" => {
            let Some((fname, v)) = rest.split_once(',') else {
                return at.err(rest, "writefield expects `field, v`");
            };
            let Some(field) = HeaderField::from_name(fname.trim()) else {
                return at.err(fname.trim(), format!("unknown header field `{fname}`"));
            };
            (
                Op::WriteField {
                    field,
                    value: lookup_value(v.trim(), at)?,
                },
                Ty::Unit,
            )
        }
        "readport" => (Op::ReadPort, Ty::Int(16)),
        "payloadmatch" => {
            let Some(pattern) = unescape_quoted(rest) else {
                return at.err(rest, format!("bad pattern `{rest}`"));
            };
            (Op::PayloadMatch { pattern }, Ty::BOOL)
        }
        "mapget" => {
            let Some((sname, keys)) = rest.split_once(',') else {
                return at.err(rest, "mapget expects `state, [keys]`");
            };
            let sname = sname.trim();
            let map = lookup_state(sname, at)?;
            let key = parse_vlist(keys.trim())?;
            let value_widths = match states.get(map.0 as usize).map(|s| &s.kind) {
                Some(StateKind::Map { value_widths, .. }) => value_widths.clone(),
                _ => {
                    return at.err(sname, format!("state `{sname}` is not a map"));
                }
            };
            (Op::MapGet { map, key }, Ty::MapResult(value_widths))
        }
        "lpmget" => {
            let Some((sname, v)) = rest.split_once(',') else {
                return at.err(rest, "lpmget expects `state, v`");
            };
            let sname = sname.trim();
            let table = lookup_state(sname, at)?;
            let value_widths = match states.get(table.0 as usize).map(|s| &s.kind) {
                Some(StateKind::LpmMap { value_widths, .. }) => value_widths.clone(),
                _ => {
                    return at.err(sname, format!("state `{sname}` is not an LPM table"));
                }
            };
            (
                Op::LpmGet {
                    table,
                    key: lookup_value(v.trim(), at)?,
                },
                Ty::MapResult(value_widths),
            )
        }
        "isnull" => (
            Op::IsNull {
                a: lookup_value(rest, at)?,
            },
            Ty::BOOL,
        ),
        "extract" => {
            let Some((v, idx)) = rest.split_once(',') else {
                return at.err(rest, "extract expects `v, index`");
            };
            let a = lookup_value(v.trim(), at)?;
            let Ok(index) = idx.trim().parse::<usize>() else {
                return at.err(idx.trim(), format!("bad index `{idx}`"));
            };
            let w = match ty_of(a, v.trim())? {
                Ty::MapResult(ws) => match ws.get(index).copied() {
                    Some(w) => w,
                    None => {
                        return at.err(idx.trim(), format!("extract index {index} out of range"));
                    }
                },
                _ => {
                    return at.err(v.trim(), format!("extract on non-mapresult {a}"));
                }
            };
            (Op::Extract { a, index }, Ty::Int(w))
        }
        "mapput" => {
            let parts = split_top(rest);
            if parts.len() != 3 {
                return at.err(rest, "mapput expects `state, [keys], [values]`");
            }
            (
                Op::MapPut {
                    map: lookup_state(&parts[0], at)?,
                    key: parse_vlist(&parts[1])?,
                    value: parse_vlist(&parts[2])?,
                },
                Ty::Unit,
            )
        }
        "mapdel" => {
            let parts = split_top(rest);
            if parts.len() != 2 {
                return at.err(rest, "mapdel expects `state, [keys]`");
            }
            (
                Op::MapDel {
                    map: lookup_state(&parts[0], at)?,
                    key: parse_vlist(&parts[1])?,
                },
                Ty::Unit,
            )
        }
        "vecget" => {
            let Some((sname, v)) = rest.split_once(',') else {
                return at.err(rest, "vecget expects `state, v`");
            };
            let sname = sname.trim();
            let vec = lookup_state(sname, at)?;
            let w = match states.get(vec.0 as usize).map(|s| &s.kind) {
                Some(StateKind::Vector { elem_width, .. }) => *elem_width,
                _ => {
                    return at.err(sname, format!("state `{sname}` is not a vector"));
                }
            };
            (
                Op::VecGet {
                    vec,
                    index: lookup_value(v.trim(), at)?,
                },
                Ty::Int(w),
            )
        }
        "veclen" => (
            Op::VecLen {
                vec: lookup_state(rest, at)?,
            },
            Ty::Int(32),
        ),
        "regread" => {
            let reg = lookup_state(rest, at)?;
            let w = reg_width(states, reg, rest, at)?;
            (Op::RegRead { reg }, Ty::Int(w))
        }
        "regwrite" => {
            let Some((sname, v)) = rest.split_once(',') else {
                return at.err(rest, "regwrite expects `state, v`");
            };
            (
                Op::RegWrite {
                    reg: lookup_state(sname.trim(), at)?,
                    value: lookup_value(v.trim(), at)?,
                },
                Ty::Unit,
            )
        }
        "regfetchadd" => {
            let Some((sname, v)) = rest.split_once(',') else {
                return at.err(rest, "regfetchadd expects `state, v`");
            };
            let sname = sname.trim();
            let reg = lookup_state(sname, at)?;
            let w = reg_width(states, reg, sname, at)?;
            (
                Op::RegFetchAdd {
                    reg,
                    delta: lookup_value(v.trim(), at)?,
                },
                Ty::Int(w),
            )
        }
        "hash" => {
            let (vs, w) = split_typed(rest, at)?;
            (
                Op::Hash {
                    inputs: parse_vlist(vs.trim())?,
                    width: w,
                },
                Ty::Int(w),
            )
        }
        "now" => (Op::Now, Ty::Int(64)),
        "updatechecksum" => (Op::UpdateChecksum, Ty::Unit),
        "send" => (Op::Send, Ty::Unit),
        "drop" => (Op::Drop, Ty::Unit),
        _ => {
            // Binary operators.
            if let Some(op) = BinOp::from_name(mnemonic) {
                let Some((a, b)) = rest.split_once(',') else {
                    return at.err(rest, format!("{mnemonic} expects two operands"));
                };
                let a_tok = a.trim();
                let a = lookup_value(a_tok, at)?;
                let b = lookup_value(b.trim(), at)?;
                let ty = if op.is_comparison() {
                    Ty::BOOL
                } else {
                    Ty::Int(int_width(a, a_tok)?)
                };
                (Op::Bin { op, a, b }, ty)
            } else {
                return at.err(mnemonic, format!("unknown mnemonic `{mnemonic}`"));
            }
        }
    })
}

/// Does this non-definition line consume an arena slot (i.e., is it an
/// effect instruction rather than a terminator or label)?
fn is_effect_line(l: &str) -> bool {
    let mnemonic = l.split_whitespace().next().unwrap_or("");
    matches!(
        mnemonic,
        "writefield" | "mapput" | "mapdel" | "regwrite" | "updatechecksum" | "send" | "drop"
    )
}

fn parse_u64(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Split `"<lhs> : uW"` into the lhs and width.
fn split_typed<'a>(s: &'a str, at: At<'a>) -> Result<(&'a str, u8)> {
    let Some((lhs, ty)) = s.rsplit_once(':') else {
        return at.err(s, format!("expected `... : uW` in `{s}`"));
    };
    let w = ty
        .trim()
        .strip_prefix('u')
        .and_then(|x| x.parse::<u8>().ok())
        .filter(|w| (1..=64).contains(w));
    match w {
        Some(w) => Ok((lhs.trim(), w)),
        None => at.err(ty.trim(), format!("bad width `{ty}`")),
    }
}

/// Split on commas that are not inside brackets.
fn split_top(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '[' => {
                depth += 1;
                cur.push(c);
            }
            ']' => {
                depth = depth.saturating_sub(1);
                cur.push(c);
            }
            ',' if depth == 0 => {
                parts.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur.trim().to_string());
    }
    parts
}

/// Parse a `"..."` literal with `\xNN` escapes back into bytes.
fn unescape_quoted(s: &str) -> Option<Vec<u8>> {
    let inner = s.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = Vec::new();
    let mut chars = inner.bytes().peekable();
    while let Some(b) = chars.next() {
        if b == b'\\' {
            if chars.next()? != b'x' {
                return None;
            }
            let hi = chars.next()?;
            let lo = chars.next()?;
            let hex = [hi, lo];
            let hex = std::str::from_utf8(&hex).ok()?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
        } else {
            out.push(b);
        }
    }
    Some(out)
}

fn reg_width(states: &[GlobalState], reg: StateId, tok: &str, at: At) -> Result<u8> {
    match states.get(reg.0 as usize).map(|s| &s.kind) {
        Some(StateKind::Register { width }) => Ok(*width),
        _ => at.err(tok, format!("state {reg} is not a register")),
    }
}

fn parse_state(rest: &str) -> Option<GlobalState> {
    let (name, decl) = rest.split_once(':')?;
    let name = name.trim().to_string();
    let decl = decl.trim();
    if let Some(body) = decl.strip_prefix("map<") {
        // `->` contains `>`, so split at the *last* `>` which closes the
        // type parameter list.
        let (inner, tail) = body.rsplit_once('>')?;
        let (k, v) = inner.split_once("->")?;
        let key_widths = parse_width_list(k)?;
        let value_widths = parse_width_list(v)?;
        let tail = tail.trim();
        let max_entries = if tail.is_empty() {
            None
        } else {
            Some(tail.strip_prefix("max")?.trim().parse().ok()?)
        };
        return Some(GlobalState {
            name,
            kind: StateKind::Map {
                key_widths,
                value_widths,
                max_entries,
            },
        });
    }
    if let Some(body) = decl.strip_prefix("vec<") {
        let (inner, tail) = body.split_once('>')?;
        let elem_width = parse_width(inner)?;
        let capacity = tail.trim().strip_prefix("cap")?.trim().parse().ok()?;
        return Some(GlobalState {
            name,
            kind: StateKind::Vector {
                elem_width,
                capacity,
            },
        });
    }
    if let Some(body) = decl.strip_prefix("lpm<") {
        let (inner, tail) = body.rsplit_once('>')?;
        let (k, v) = inner.split_once("->")?;
        let key_width = parse_width(k)?;
        let value_widths = parse_width_list(v)?;
        let tail = tail.trim();
        let max_entries = if tail.is_empty() {
            None
        } else {
            Some(tail.strip_prefix("max")?.trim().parse().ok()?)
        };
        return Some(GlobalState {
            name,
            kind: StateKind::LpmMap {
                key_width,
                value_widths,
                max_entries,
            },
        });
    }
    if let Some(body) = decl.strip_prefix("reg<") {
        let inner = body.strip_suffix('>')?;
        return Some(GlobalState {
            name,
            kind: StateKind::Register {
                width: parse_width(inner)?,
            },
        });
    }
    None
}

fn parse_width(s: &str) -> Option<u8> {
    s.trim()
        .strip_prefix('u')?
        .parse::<u8>()
        .ok()
        .filter(|w| (1..=64).contains(w))
}

fn parse_width_list(s: &str) -> Option<Vec<u8>> {
    s.split(',').map(parse_width).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_program;

    const MINILB: &str = r#"
program minilb {
  state map : map<u16 -> u32> max 65536
  state backends : vec<u32> cap 16
  b0:
    v0 = readfield ip.saddr
    v1 = readfield ip.daddr
    v2 = xor v0, v1
    v3 = const 0xFFFF : u32
    v4 = and v2, v3
    v5 = cast v4 : u16
    v6 = mapget map, [v5]
    v7 = isnull v6
    br v7, b2, b1
  b1:
    v8 = extract v6, 0
    writefield ip.daddr, v8
    send
    ret
  b2:
    v12 = veclen backends
    v13 = mod v2, v12
    v14 = vecget backends, v13
    writefield ip.daddr, v14
    mapput map, [v5], [v14]
    send
    ret
}
"#;

    #[test]
    fn parses_minilb() {
        let p = parse_program(MINILB).expect("minilb parses");
        assert_eq!(p.name, "minilb");
        assert_eq!(p.states.len(), 2);
        assert_eq!(p.func.blocks.len(), 3);
        assert_eq!(p.func.len(), 17);
    }

    #[test]
    fn print_parse_roundtrip() {
        let p = parse_program(MINILB).expect("minilb parses");
        let text = print_program(&p);
        let p2 = parse_program(&text).expect("printed form parses");
        assert_eq!(p, p2);
    }

    #[test]
    fn parses_loop_with_phi() {
        let text = r#"
program looper {
  b0:
    v0 = const 0 : u32
    jmp b1
  b1:
    v1 = phi [b0: v0, b1: v2]
    v2 = const 1 : u32
    v3 = lt v1, v2
    br v3, b1, b2
  b2:
    ret
}
"#;
        let p = parse_program(text).expect("looper parses");
        let text2 = print_program(&p);
        assert_eq!(parse_program(&text2).expect("printed form parses"), p);
    }

    #[test]
    fn payload_pattern_roundtrip() {
        let text = "program dpi {\n  b0:\n    v0 = payloadmatch \"GET \\x00\"\n    ret\n}\n";
        let p = parse_program(text).expect("dpi parses");
        assert_eq!(
            p.func.inst(crate::func::ValueId(0)).op,
            Op::PayloadMatch {
                pattern: b"GET \x00".to_vec()
            }
        );
        let p2 = parse_program(&print_program(&p)).expect("printed form parses");
        assert_eq!(p, p2);
    }

    #[test]
    fn rejects_unknown_mnemonic_with_span() {
        let text = "program x {\n  b0:\n    v0 = frobnicate v1\n    ret\n}\n";
        let err = parse_program(text).expect_err("unknown mnemonic must be rejected");
        assert_eq!(
            err,
            MirError::Parse {
                line: 3,
                col: 10, // `frobnicate` starts at column 10
                msg: "unknown mnemonic `frobnicate`".into()
            }
        );
    }

    #[test]
    fn rejects_unterminated_block() {
        let text = "program x {\n  b0:\n    v0 = const 1 : u8\n  b1:\n    ret\n}\n";
        assert!(matches!(parse_program(text), Err(MirError::Parse { .. })));
    }

    #[test]
    fn rejects_unknown_state_with_span() {
        let text = "program x {\n  b0:\n    v0 = veclen nosuch\n    ret\n}\n";
        let err = parse_program(text).expect_err("unknown state must be rejected");
        assert_eq!(
            err,
            MirError::Parse {
                line: 3,
                col: 17, // `nosuch` starts at column 17
                msg: "unknown state `nosuch`".into()
            }
        );
    }

    #[test]
    fn rejects_missing_close_brace() {
        let text = "program x {\n  b0:\n    ret\n";
        assert!(matches!(parse_program(text), Err(MirError::Parse { .. })));
    }

    #[test]
    fn hex_and_decimal_constants() {
        let text =
            "program x {\n  b0:\n    v0 = const 0xff : u8\n    v1 = const 255 : u8\n    ret\n}\n";
        let p = parse_program(text).expect("constants parse");
        assert_eq!(
            p.func.inst(crate::func::ValueId(0)).op,
            p.func.inst(crate::func::ValueId(1)).op
        );
    }
}
