//! Parser for the textual MIR form produced by [`crate::printer`].

use crate::func::{BasicBlock, BlockId, Function, Program, Terminator, ValueId};
use crate::inst::{BinOp, HeaderField, Inst, Op};
use crate::state::{GlobalState, StateId, StateKind};
use crate::types::{mask_to_width, Ty};
use crate::{MirError, Result};
use std::collections::HashMap;

/// Parse a program in the canonical textual form and validate it.
pub fn parse_program(text: &str) -> Result<Program> {
    Parser::new(text).parse()
}

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>, // (1-based line number, trimmed content)
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        let lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'))
            .collect();
        Parser { lines, pos: 0 }
    }

    fn err<T>(&self, line: usize, msg: impl Into<String>) -> Result<T> {
        Err(MirError::Parse {
            line,
            msg: msg.into(),
        })
    }

    fn peek(&self) -> Option<(usize, &'a str)> {
        self.lines.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<(usize, &'a str)> {
        let l = self.peek();
        if l.is_some() {
            self.pos += 1;
        }
        l
    }

    fn parse(mut self) -> Result<Program> {
        let (ln, header) = self
            .next()
            .ok_or(MirError::Parse {
                line: 0,
                msg: "empty input".into(),
            })?;
        let name = header
            .strip_prefix("program ")
            .and_then(|r| r.strip_suffix('{'))
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty());
        let Some(name) = name else {
            return self.err(ln, "expected `program <name> {`");
        };

        let mut states = Vec::new();
        let mut state_ids: HashMap<String, StateId> = HashMap::new();
        while let Some((ln, l)) = self.peek() {
            if let Some(rest) = l.strip_prefix("state ") {
                self.pos += 1;
                let st = parse_state(rest).ok_or(MirError::Parse {
                    line: ln,
                    msg: format!("bad state declaration `{l}`"),
                })?;
                state_ids.insert(st.name.clone(), StateId(states.len() as u32));
                states.push(st);
            } else {
                break;
            }
        }

        // First pass: scan block structure to pre-assign value and block ids
        // so loops and φ forward references resolve.
        let body_start = self.pos;
        let mut value_ids: HashMap<String, ValueId> = HashMap::new();
        let mut block_ids: HashMap<String, BlockId> = HashMap::new();
        let mut next_value = 0u32;
        let mut scan_pos = self.pos;
        while scan_pos < self.lines.len() {
            let (_, l) = self.lines[scan_pos];
            scan_pos += 1;
            if l == "}" {
                break;
            }
            if let Some(label) = l.strip_suffix(':') {
                let id = BlockId(block_ids.len() as u32);
                block_ids.insert(label.trim().to_string(), id);
            } else if let Some((def, _)) = l.split_once('=') {
                let def = def.trim().to_string();
                value_ids.insert(def, ValueId(next_value));
                next_value += 1;
            } else if is_effect_line(l) {
                next_value += 1; // effect instructions occupy arena slots too
            }
        }

        // Second pass: build instructions.
        self.pos = body_start;
        let mut insts: Vec<Inst> = Vec::new();
        let mut blocks: Vec<BasicBlock> = Vec::new();
        let mut cur: Option<(BlockId, Vec<ValueId>)> = None;
        let mut closed = false;

        let lookup_state = |name: &str, ln: usize| -> Result<StateId> {
            state_ids.get(name).copied().ok_or(MirError::Parse {
                line: ln,
                msg: format!("unknown state `{name}`"),
            })
        };
        let lookup_value = |name: &str, ln: usize| -> Result<ValueId> {
            value_ids.get(name).copied().ok_or(MirError::Parse {
                line: ln,
                msg: format!("unknown value `{name}`"),
            })
        };
        let lookup_block = |name: &str, ln: usize| -> Result<BlockId> {
            block_ids.get(name).copied().ok_or(MirError::Parse {
                line: ln,
                msg: format!("unknown block `{name}`"),
            })
        };

        while let Some((ln, l)) = self.next() {
            if l == "}" {
                closed = true;
                break;
            }
            if let Some(label) = l.strip_suffix(':') {
                if let Some((id, is_insts)) = cur.take() {
                    return self.err(
                        ln,
                        format!(
                            "block b{}({} insts) not terminated before `{label}`",
                            id.0,
                            is_insts.len()
                        ),
                    );
                }
                cur = Some((lookup_block(label.trim(), ln)?, Vec::new()));
                continue;
            }
            let Some((_, ref mut block_insts)) = cur else {
                return self.err(ln, format!("instruction `{l}` outside any block"));
            };
            // Terminators.
            if l == "ret" {
                let (id, insts_v) = cur.take().expect("checked above");
                blocks.push(BasicBlock {
                    id,
                    insts: insts_v,
                    term: Terminator::Return,
                });
                continue;
            }
            if let Some(rest) = l.strip_prefix("jmp ") {
                let t = lookup_block(rest.trim(), ln)?;
                let (id, insts_v) = cur.take().expect("checked above");
                blocks.push(BasicBlock {
                    id,
                    insts: insts_v,
                    term: Terminator::Jump(t),
                });
                continue;
            }
            if let Some(rest) = l.strip_prefix("br ") {
                let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
                if parts.len() != 3 {
                    return self.err(ln, "br expects `br v, bT, bE`");
                }
                let cond = lookup_value(parts[0], ln)?;
                let then_bb = lookup_block(parts[1], ln)?;
                let else_bb = lookup_block(parts[2], ln)?;
                let (id, insts_v) = cur.take().expect("checked above");
                blocks.push(BasicBlock {
                    id,
                    insts: insts_v,
                    term: Terminator::Branch {
                        cond,
                        then_bb,
                        else_bb,
                    },
                });
                continue;
            }

            // Instructions. Either `vN = <op...>` or a bare effect op.
            let (def, body) = match l.split_once('=') {
                Some((d, b)) => (Some(d.trim()), b.trim()),
                None => (None, l),
            };
            let id = match def {
                Some(d) => lookup_value(d, ln)?,
                None => {
                    // Effect instruction: its arena slot was reserved in the
                    // scan pass in file order; recover it by counting.
                    ValueId(insts.len() as u32)
                }
            };
            // Keep the arena aligned: instructions must appear in id order
            // because the scan pass numbered them by appearance.
            if id.0 as usize != insts.len() {
                return self.err(
                    ln,
                    format!(
                        "value {} out of order (expected v{})",
                        id,
                        insts.len()
                    ),
                );
            }
            let (op, ty) = self.parse_op(
                body,
                ln,
                &states,
                &lookup_state,
                &lookup_value,
                &lookup_block,
                &insts,
            )?;
            insts.push(Inst { op, ty });
            block_insts.push(id);
        }

        if !closed {
            return self.err(
                self.lines.last().map(|(n, _)| *n).unwrap_or(0),
                "missing closing `}`",
            );
        }
        if let Some((id, _)) = cur {
            return self.err(0, format!("block b{} not terminated", id.0));
        }

        let prog = Program {
            name,
            states,
            func: Function {
                insts,
                blocks,
                entry: BlockId(0),
            },
        };
        crate::validate::validate(&prog)?;
        Ok(prog)
    }

    #[allow(clippy::too_many_arguments)]
    fn parse_op(
        &self,
        body: &str,
        ln: usize,
        states: &[GlobalState],
        lookup_state: &dyn Fn(&str, usize) -> Result<StateId>,
        lookup_value: &dyn Fn(&str, usize) -> Result<ValueId>,
        lookup_block: &dyn Fn(&str, usize) -> Result<BlockId>,
        insts: &[Inst],
    ) -> Result<(Op, Ty)> {
        let ty_of = |v: ValueId| -> &Ty { &insts[v.0 as usize].ty };
        let int_width = |v: ValueId| -> Result<u8> {
            ty_of(v).int_width().ok_or(MirError::Parse {
                line: ln,
                msg: format!("{v} is not an integer"),
            })
        };
        let (mnemonic, rest) = match body.split_once(' ') {
            Some((m, r)) => (m, r.trim()),
            None => (body, ""),
        };
        let parse_vlist = |s: &str| -> Result<Vec<ValueId>> {
            let inner = s
                .strip_prefix('[')
                .and_then(|x| x.strip_suffix(']'))
                .ok_or(MirError::Parse {
                    line: ln,
                    msg: format!("expected [v...], got `{s}`"),
                })?;
            if inner.trim().is_empty() {
                return Ok(vec![]);
            }
            inner
                .split(',')
                .map(|p| lookup_value(p.trim(), ln))
                .collect()
        };

        Ok(match mnemonic {
            "const" => {
                let (val, w) = split_typed(rest, ln)?;
                let value: u64 = parse_u64(val).ok_or(MirError::Parse {
                    line: ln,
                    msg: format!("bad constant `{val}`"),
                })?;
                (
                    Op::Const {
                        value: mask_to_width(value, w),
                        width: w,
                    },
                    Ty::Int(w),
                )
            }
            "not" => {
                let a = lookup_value(rest, ln)?;
                let w = int_width(a)?;
                (Op::Not { a }, Ty::Int(w))
            }
            "cast" => {
                let (val, w) = split_typed(rest, ln)?;
                let a = lookup_value(val, ln)?;
                (Op::Cast { a, width: w }, Ty::Int(w))
            }
            "phi" => {
                let inner = rest
                    .strip_prefix('[')
                    .and_then(|x| x.strip_suffix(']'))
                    .ok_or(MirError::Parse {
                        line: ln,
                        msg: "phi expects [b: v, ...]".into(),
                    })?;
                let mut incoming = Vec::new();
                for pair in inner.split(',') {
                    let (b, v) = pair.split_once(':').ok_or(MirError::Parse {
                        line: ln,
                        msg: format!("bad phi edge `{pair}`"),
                    })?;
                    incoming.push((lookup_block(b.trim(), ln)?, lookup_value(v.trim(), ln)?));
                }
                let ty = incoming
                    .first()
                    .map(|(_, v)| ty_of(*v).clone())
                    .unwrap_or(Ty::Unit);
                (Op::Phi { incoming }, ty)
            }
            "readfield" => {
                let field = HeaderField::from_name(rest).ok_or(MirError::Parse {
                    line: ln,
                    msg: format!("unknown header field `{rest}`"),
                })?;
                (Op::ReadField { field }, Ty::Int(field.bits()))
            }
            "writefield" => {
                let (fname, v) = rest.split_once(',').ok_or(MirError::Parse {
                    line: ln,
                    msg: "writefield expects `field, v`".into(),
                })?;
                let field = HeaderField::from_name(fname.trim()).ok_or(MirError::Parse {
                    line: ln,
                    msg: format!("unknown header field `{fname}`"),
                })?;
                (
                    Op::WriteField {
                        field,
                        value: lookup_value(v.trim(), ln)?,
                    },
                    Ty::Unit,
                )
            }
            "readport" => (Op::ReadPort, Ty::Int(16)),
            "payloadmatch" => {
                let pattern = unescape_quoted(rest).ok_or(MirError::Parse {
                    line: ln,
                    msg: format!("bad pattern `{rest}`"),
                })?;
                (Op::PayloadMatch { pattern }, Ty::BOOL)
            }
            "mapget" => {
                let (sname, keys) = rest.split_once(',').ok_or(MirError::Parse {
                    line: ln,
                    msg: "mapget expects `state, [keys]`".into(),
                })?;
                let map = lookup_state(sname.trim(), ln)?;
                let key = parse_vlist(keys.trim())?;
                let value_widths = match &states[map.0 as usize].kind {
                    StateKind::Map { value_widths, .. } => value_widths.clone(),
                    _ => {
                        return self.err(ln, format!("state `{sname}` is not a map"));
                    }
                };
                (Op::MapGet { map, key }, Ty::MapResult(value_widths))
            }
            "lpmget" => {
                let (sname, v) = rest.split_once(',').ok_or(MirError::Parse {
                    line: ln,
                    msg: "lpmget expects `state, v`".into(),
                })?;
                let table = lookup_state(sname.trim(), ln)?;
                let value_widths = match &states[table.0 as usize].kind {
                    StateKind::LpmMap { value_widths, .. } => value_widths.clone(),
                    _ => {
                        return self.err(ln, format!("state `{sname}` is not an LPM table"));
                    }
                };
                (
                    Op::LpmGet {
                        table,
                        key: lookup_value(v.trim(), ln)?,
                    },
                    Ty::MapResult(value_widths),
                )
            }
            "isnull" => (
                Op::IsNull {
                    a: lookup_value(rest, ln)?,
                },
                Ty::BOOL,
            ),
            "extract" => {
                let (v, idx) = rest.split_once(',').ok_or(MirError::Parse {
                    line: ln,
                    msg: "extract expects `v, index`".into(),
                })?;
                let a = lookup_value(v.trim(), ln)?;
                let index: usize = idx.trim().parse().map_err(|_| MirError::Parse {
                    line: ln,
                    msg: format!("bad index `{idx}`"),
                })?;
                let w = match ty_of(a) {
                    Ty::MapResult(ws) => ws.get(index).copied().ok_or(MirError::Parse {
                        line: ln,
                        msg: format!("extract index {index} out of range"),
                    })?,
                    _ => {
                        return self.err(ln, format!("extract on non-mapresult {a}"));
                    }
                };
                (Op::Extract { a, index }, Ty::Int(w))
            }
            "mapput" => {
                let parts = split_top(rest);
                if parts.len() != 3 {
                    return self.err(ln, "mapput expects `state, [keys], [values]`");
                }
                (
                    Op::MapPut {
                        map: lookup_state(&parts[0], ln)?,
                        key: parse_vlist(&parts[1])?,
                        value: parse_vlist(&parts[2])?,
                    },
                    Ty::Unit,
                )
            }
            "mapdel" => {
                let parts = split_top(rest);
                if parts.len() != 2 {
                    return self.err(ln, "mapdel expects `state, [keys]`");
                }
                (
                    Op::MapDel {
                        map: lookup_state(&parts[0], ln)?,
                        key: parse_vlist(&parts[1])?,
                    },
                    Ty::Unit,
                )
            }
            "vecget" => {
                let (sname, v) = rest.split_once(',').ok_or(MirError::Parse {
                    line: ln,
                    msg: "vecget expects `state, v`".into(),
                })?;
                let vec = lookup_state(sname.trim(), ln)?;
                let w = match &states[vec.0 as usize].kind {
                    StateKind::Vector { elem_width, .. } => *elem_width,
                    _ => {
                        return self.err(ln, format!("state `{sname}` is not a vector"));
                    }
                };
                (
                    Op::VecGet {
                        vec,
                        index: lookup_value(v.trim(), ln)?,
                    },
                    Ty::Int(w),
                )
            }
            "veclen" => (
                Op::VecLen {
                    vec: lookup_state(rest, ln)?,
                },
                Ty::Int(32),
            ),
            "regread" => {
                let reg = lookup_state(rest, ln)?;
                let w = reg_width(states, reg, ln)?;
                (Op::RegRead { reg }, Ty::Int(w))
            }
            "regwrite" => {
                let (sname, v) = rest.split_once(',').ok_or(MirError::Parse {
                    line: ln,
                    msg: "regwrite expects `state, v`".into(),
                })?;
                (
                    Op::RegWrite {
                        reg: lookup_state(sname.trim(), ln)?,
                        value: lookup_value(v.trim(), ln)?,
                    },
                    Ty::Unit,
                )
            }
            "regfetchadd" => {
                let (sname, v) = rest.split_once(',').ok_or(MirError::Parse {
                    line: ln,
                    msg: "regfetchadd expects `state, v`".into(),
                })?;
                let reg = lookup_state(sname.trim(), ln)?;
                let w = reg_width(states, reg, ln)?;
                (
                    Op::RegFetchAdd {
                        reg,
                        delta: lookup_value(v.trim(), ln)?,
                    },
                    Ty::Int(w),
                )
            }
            "hash" => {
                let (vs, w) = split_typed(rest, ln)?;
                (
                    Op::Hash {
                        inputs: parse_vlist(vs.trim())?,
                        width: w,
                    },
                    Ty::Int(w),
                )
            }
            "now" => (Op::Now, Ty::Int(64)),
            "updatechecksum" => (Op::UpdateChecksum, Ty::Unit),
            "send" => (Op::Send, Ty::Unit),
            "drop" => (Op::Drop, Ty::Unit),
            _ => {
                // Binary operators.
                if let Some(op) = BinOp::from_name(mnemonic) {
                    let (a, b) = rest.split_once(',').ok_or(MirError::Parse {
                        line: ln,
                        msg: format!("{mnemonic} expects two operands"),
                    })?;
                    let a = lookup_value(a.trim(), ln)?;
                    let b = lookup_value(b.trim(), ln)?;
                    let ty = if op.is_comparison() {
                        Ty::BOOL
                    } else {
                        Ty::Int(int_width(a)?)
                    };
                    (Op::Bin { op, a, b }, ty)
                } else {
                    return self.err(ln, format!("unknown mnemonic `{mnemonic}`"));
                }
            }
        })
    }
}

/// Does this non-definition line consume an arena slot (i.e., is it an
/// effect instruction rather than a terminator or label)?
fn is_effect_line(l: &str) -> bool {
    let mnemonic = l.split_whitespace().next().unwrap_or("");
    matches!(
        mnemonic,
        "writefield" | "mapput" | "mapdel" | "regwrite" | "updatechecksum" | "send" | "drop"
    )
}

fn parse_u64(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Split `"<lhs> : uW"` into the lhs and width.
fn split_typed(s: &str, ln: usize) -> Result<(&str, u8)> {
    let (lhs, ty) = s.rsplit_once(':').ok_or(MirError::Parse {
        line: ln,
        msg: format!("expected `... : uW` in `{s}`"),
    })?;
    let w = ty
        .trim()
        .strip_prefix('u')
        .and_then(|x| x.parse::<u8>().ok())
        .filter(|w| (1..=64).contains(w))
        .ok_or(MirError::Parse {
            line: ln,
            msg: format!("bad width `{ty}`"),
        })?;
    Ok((lhs.trim(), w))
}

/// Split on commas that are not inside brackets.
fn split_top(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '[' => {
                depth += 1;
                cur.push(c);
            }
            ']' => {
                depth = depth.saturating_sub(1);
                cur.push(c);
            }
            ',' if depth == 0 => {
                parts.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur.trim().to_string());
    }
    parts
}

/// Parse a `"..."` literal with `\xNN` escapes back into bytes.
fn unescape_quoted(s: &str) -> Option<Vec<u8>> {
    let inner = s.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = Vec::new();
    let mut chars = inner.bytes().peekable();
    while let Some(b) = chars.next() {
        if b == b'\\' {
            if chars.next()? != b'x' {
                return None;
            }
            let hi = chars.next()?;
            let lo = chars.next()?;
            let hex = [hi, lo];
            let hex = std::str::from_utf8(&hex).ok()?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
        } else {
            out.push(b);
        }
    }
    Some(out)
}

fn reg_width(states: &[GlobalState], reg: StateId, ln: usize) -> Result<u8> {
    match &states[reg.0 as usize].kind {
        StateKind::Register { width } => Ok(*width),
        _ => Err(MirError::Parse {
            line: ln,
            msg: format!("state {reg} is not a register"),
        }),
    }
}

fn parse_state(rest: &str) -> Option<GlobalState> {
    let (name, decl) = rest.split_once(':')?;
    let name = name.trim().to_string();
    let decl = decl.trim();
    if let Some(body) = decl.strip_prefix("map<") {
        // `->` contains `>`, so split at the *last* `>` which closes the
        // type parameter list.
        let (inner, tail) = body.rsplit_once('>')?;
        let (k, v) = inner.split_once("->")?;
        let key_widths = parse_width_list(k)?;
        let value_widths = parse_width_list(v)?;
        let tail = tail.trim();
        let max_entries = if tail.is_empty() {
            None
        } else {
            Some(tail.strip_prefix("max")?.trim().parse().ok()?)
        };
        return Some(GlobalState {
            name,
            kind: StateKind::Map {
                key_widths,
                value_widths,
                max_entries,
            },
        });
    }
    if let Some(body) = decl.strip_prefix("vec<") {
        let (inner, tail) = body.split_once('>')?;
        let elem_width = parse_width(inner)?;
        let capacity = tail.trim().strip_prefix("cap")?.trim().parse().ok()?;
        return Some(GlobalState {
            name,
            kind: StateKind::Vector {
                elem_width,
                capacity,
            },
        });
    }
    if let Some(body) = decl.strip_prefix("lpm<") {
        let (inner, tail) = body.rsplit_once('>')?;
        let (k, v) = inner.split_once("->")?;
        let key_width = parse_width(k)?;
        let value_widths = parse_width_list(v)?;
        let tail = tail.trim();
        let max_entries = if tail.is_empty() {
            None
        } else {
            Some(tail.strip_prefix("max")?.trim().parse().ok()?)
        };
        return Some(GlobalState {
            name,
            kind: StateKind::LpmMap {
                key_width,
                value_widths,
                max_entries,
            },
        });
    }
    if let Some(body) = decl.strip_prefix("reg<") {
        let inner = body.strip_suffix('>')?;
        return Some(GlobalState {
            name,
            kind: StateKind::Register {
                width: parse_width(inner)?,
            },
        });
    }
    None
}

fn parse_width(s: &str) -> Option<u8> {
    s.trim()
        .strip_prefix('u')?
        .parse::<u8>()
        .ok()
        .filter(|w| (1..=64).contains(w))
}

fn parse_width_list(s: &str) -> Option<Vec<u8>> {
    s.split(',').map(parse_width).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_program;

    const MINILB: &str = r#"
program minilb {
  state map : map<u16 -> u32> max 65536
  state backends : vec<u32> cap 16
  b0:
    v0 = readfield ip.saddr
    v1 = readfield ip.daddr
    v2 = xor v0, v1
    v3 = const 0xFFFF : u32
    v4 = and v2, v3
    v5 = cast v4 : u16
    v6 = mapget map, [v5]
    v7 = isnull v6
    br v7, b2, b1
  b1:
    v8 = extract v6, 0
    writefield ip.daddr, v8
    send
    ret
  b2:
    v12 = veclen backends
    v13 = mod v2, v12
    v14 = vecget backends, v13
    writefield ip.daddr, v14
    mapput map, [v5], [v14]
    send
    ret
}
"#;

    #[test]
    fn parses_minilb() {
        let p = parse_program(MINILB).unwrap();
        assert_eq!(p.name, "minilb");
        assert_eq!(p.states.len(), 2);
        assert_eq!(p.func.blocks.len(), 3);
        assert_eq!(p.func.len(), 17);
    }

    #[test]
    fn print_parse_roundtrip() {
        let p = parse_program(MINILB).unwrap();
        let text = print_program(&p);
        let p2 = parse_program(&text).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn parses_loop_with_phi() {
        let text = r#"
program looper {
  b0:
    v0 = const 0 : u32
    jmp b1
  b1:
    v1 = phi [b0: v0, b1: v2]
    v2 = const 1 : u32
    v3 = lt v1, v2
    br v3, b1, b2
  b2:
    ret
}
"#;
        let p = parse_program(text).unwrap();
        let text2 = print_program(&p);
        assert_eq!(parse_program(&text2).unwrap(), p);
    }

    #[test]
    fn payload_pattern_roundtrip() {
        let text = "program dpi {\n  b0:\n    v0 = payloadmatch \"GET \\x00\"\n    ret\n}\n";
        let p = parse_program(text).unwrap();
        match &p.func.inst(crate::func::ValueId(0)).op {
            Op::PayloadMatch { pattern } => assert_eq!(pattern, b"GET \x00"),
            other => panic!("unexpected {other:?}"),
        }
        let p2 = parse_program(&print_program(&p)).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn rejects_unknown_mnemonic() {
        let text = "program x {\n  b0:\n    v0 = frobnicate v1\n    ret\n}\n";
        assert!(matches!(
            parse_program(text),
            Err(MirError::Parse { .. })
        ));
    }

    #[test]
    fn rejects_unterminated_block() {
        let text = "program x {\n  b0:\n    v0 = const 1 : u8\n  b1:\n    ret\n}\n";
        assert!(matches!(parse_program(text), Err(MirError::Parse { .. })));
    }

    #[test]
    fn rejects_unknown_state() {
        let text = "program x {\n  b0:\n    v0 = veclen nosuch\n    ret\n}\n";
        assert!(matches!(parse_program(text), Err(MirError::Parse { .. })));
    }

    #[test]
    fn rejects_missing_close_brace() {
        let text = "program x {\n  b0:\n    ret\n";
        assert!(matches!(parse_program(text), Err(MirError::Parse { .. })));
    }

    #[test]
    fn hex_and_decimal_constants() {
        let text =
            "program x {\n  b0:\n    v0 = const 0xff : u8\n    v1 = const 255 : u8\n    ret\n}\n";
        let p = parse_program(text).unwrap();
        assert_eq!(
            p.func.inst(crate::func::ValueId(0)).op,
            p.func.inst(crate::func::ValueId(1)).op
        );
    }
}
