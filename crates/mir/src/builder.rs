//! Ergonomic construction of MIR programs.
//!
//! The Click-element frontend (`gallium-click`) and the hand-written
//! middleboxes use this builder; it tracks the current insertion block,
//! infers result types, and validates the finished function.
//!
//! Mistakes (type mismatches, appending to a terminated block, wrong
//! state kinds) do not panic: the builder records the **first** error as
//! a [`MirError::Build`] carrying the offending instruction index and
//! keeps returning well-typed placeholder values so construction can
//! continue structurally. [`FuncBuilder::finish`] surfaces the recorded
//! error instead of a program.

use crate::func::{BasicBlock, BlockId, Function, Program, Terminator, ValueId};
use crate::inst::{BinOp, HeaderField, Inst, Op};
use crate::state::{GlobalState, StateId, StateKind};
use crate::types::{mask_to_width, Ty};
use crate::{MirError, Result};

/// Builder for a [`Program`].
#[derive(Debug)]
pub struct FuncBuilder {
    name: String,
    states: Vec<GlobalState>,
    insts: Vec<Inst>,
    blocks: Vec<(BlockId, Vec<ValueId>, Option<Terminator>)>,
    current: BlockId,
    /// First construction mistake, reported by [`FuncBuilder::finish`].
    error: Option<MirError>,
}

impl FuncBuilder {
    /// Start building a program called `name`. An entry block `b0` is
    /// created and selected.
    pub fn new(name: impl Into<String>) -> Self {
        FuncBuilder {
            name: name.into(),
            states: Vec::new(),
            insts: Vec::new(),
            blocks: vec![(BlockId(0), Vec::new(), None)],
            current: BlockId(0),
            error: None,
        }
    }

    /// The first construction error recorded so far, if any.
    pub fn error(&self) -> Option<&MirError> {
        self.error.as_ref()
    }

    /// Record a construction mistake at the next instruction slot. Only
    /// the first error is kept: later mistakes are usually cascades of
    /// the placeholder values handed out after the first one.
    fn fail(&mut self, msg: impl Into<String>) {
        if self.error.is_none() {
            self.error = Some(MirError::Build {
                inst: self.insts.len() as u32,
                msg: msg.into(),
            });
        }
    }

    // ---- state declarations -------------------------------------------

    /// Declare a hash map. `max_entries` is the offloading size annotation.
    pub fn decl_map(
        &mut self,
        name: &str,
        key_widths: Vec<u8>,
        value_widths: Vec<u8>,
        max_entries: Option<usize>,
    ) -> StateId {
        self.states.push(GlobalState {
            name: name.into(),
            kind: StateKind::Map {
                key_widths,
                value_widths,
                max_entries,
            },
        });
        StateId(self.states.len() as u32 - 1)
    }

    /// Declare a vector.
    pub fn decl_vector(&mut self, name: &str, elem_width: u8, capacity: usize) -> StateId {
        self.states.push(GlobalState {
            name: name.into(),
            kind: StateKind::Vector {
                elem_width,
                capacity,
            },
        });
        StateId(self.states.len() as u32 - 1)
    }

    /// Declare a longest-prefix-match table (§7 extension).
    pub fn decl_lpm(
        &mut self,
        name: &str,
        key_width: u8,
        value_widths: Vec<u8>,
        max_entries: Option<usize>,
    ) -> StateId {
        self.states.push(GlobalState {
            name: name.into(),
            kind: StateKind::LpmMap {
                key_width,
                value_widths,
                max_entries,
            },
        });
        StateId(self.states.len() as u32 - 1)
    }

    /// Declare a scalar register.
    pub fn decl_register(&mut self, name: &str, width: u8) -> StateId {
        self.states.push(GlobalState {
            name: name.into(),
            kind: StateKind::Register { width },
        });
        StateId(self.states.len() as u32 - 1)
    }

    fn state_kind(&mut self, s: StateId, ctx: &str) -> Option<StateKind> {
        match self.states.get(s.0 as usize) {
            Some(g) => Some(g.kind.clone()),
            None => {
                self.fail(format!("{ctx}: unknown state {s}"));
                None
            }
        }
    }

    // ---- blocks ---------------------------------------------------------

    /// Create a new (empty, unterminated) block.
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push((id, Vec::new(), None));
        id
    }

    /// Select the insertion block.
    pub fn switch_to(&mut self, b: BlockId) {
        if (b.0 as usize) >= self.blocks.len() {
            self.fail(format!("switch_to unknown block {b}"));
            return;
        }
        self.current = b;
    }

    /// The currently selected block.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    fn push(&mut self, op: Op, ty: Ty) -> ValueId {
        let id = ValueId(self.insts.len() as u32);
        let cur = self.current.0 as usize;
        if self.blocks[cur].2.is_some() {
            self.fail(format!("appending to terminated block {}", self.current));
            // Still allocate the instruction so the returned id resolves;
            // finish() will report the recorded error.
            self.insts.push(Inst { op, ty });
            return id;
        }
        self.insts.push(Inst { op, ty });
        self.blocks[cur].1.push(id);
        id
    }

    fn ty_of(&self, v: ValueId) -> Option<&Ty> {
        self.insts.get(v.0 as usize).map(|i| &i.ty)
    }

    /// Integer width of `v`, or 1 (with an error recorded) when `v` is
    /// dangling or not an integer.
    fn int_width(&mut self, v: ValueId, ctx: &str) -> u8 {
        match self.ty_of(v).and_then(Ty::int_width) {
            Some(w) => w,
            None => {
                self.fail(format!("{ctx}: operand {v} is not an integer"));
                1
            }
        }
    }

    // ---- instructions ---------------------------------------------------

    /// Integer constant.
    pub fn cnst(&mut self, value: u64, width: u8) -> ValueId {
        self.push(
            Op::Const {
                value: mask_to_width(value, width),
                width,
            },
            Ty::Int(width),
        )
    }

    /// Binary operation. Operand widths must match (except shifts, where
    /// the shift amount may have any width). Comparisons produce `u1`.
    pub fn bin(&mut self, op: BinOp, a: ValueId, b: ValueId) -> ValueId {
        let wa = self.int_width(a, "bin");
        let wb = self.int_width(b, "bin");
        if !matches!(op, BinOp::Shl | BinOp::Shr) && wa != wb {
            self.fail(format!(
                "bin {}: operand widths differ ({wa} vs {wb})",
                op.name()
            ));
        }
        let ty = if op.is_comparison() {
            Ty::BOOL
        } else {
            Ty::Int(wa)
        };
        self.push(Op::Bin { op, a, b }, ty)
    }

    /// Bitwise NOT.
    pub fn not(&mut self, a: ValueId) -> ValueId {
        let w = self.int_width(a, "not");
        self.push(Op::Not { a }, Ty::Int(w))
    }

    /// Width cast (truncate / zero-extend).
    pub fn cast(&mut self, a: ValueId, width: u8) -> ValueId {
        self.int_width(a, "cast");
        self.push(Op::Cast { a, width }, Ty::Int(width))
    }

    /// φ-node. All incoming values must share a type.
    pub fn phi(&mut self, incoming: Vec<(BlockId, ValueId)>) -> ValueId {
        let Some(first) = incoming.first() else {
            self.fail("phi needs at least one incoming");
            return self.push(Op::Phi { incoming }, Ty::Unit);
        };
        let ty = match self.ty_of(first.1) {
            Some(t) => t.clone(),
            None => {
                self.fail(format!("phi: incoming {} is dangling", first.1));
                Ty::Unit
            }
        };
        for (_, v) in &incoming {
            if self.ty_of(*v) != Some(&ty) {
                self.fail(format!("phi incoming types differ at {v}"));
                break;
            }
        }
        self.push(Op::Phi { incoming }, ty)
    }

    /// Read a header field.
    pub fn read_field(&mut self, field: HeaderField) -> ValueId {
        self.push(Op::ReadField { field }, Ty::Int(field.bits()))
    }

    /// Write a header field. The value is truncated to the field width at
    /// runtime if wider.
    pub fn write_field(&mut self, field: HeaderField, value: ValueId) {
        self.push(Op::WriteField { field, value }, Ty::Unit);
    }

    /// Read the ingress port.
    pub fn read_port(&mut self) -> ValueId {
        self.push(Op::ReadPort, Ty::Int(16))
    }

    /// Payload pattern match (DPI).
    pub fn payload_match(&mut self, pattern: &[u8]) -> ValueId {
        self.push(
            Op::PayloadMatch {
                pattern: pattern.to_vec(),
            },
            Ty::BOOL,
        )
    }

    /// Map lookup.
    pub fn map_get(&mut self, map: StateId, key: Vec<ValueId>) -> ValueId {
        let value_widths = match self.state_kind(map, "map_get") {
            Some(StateKind::Map { value_widths, .. }) => value_widths,
            Some(_) => {
                self.fail("map_get on non-map state");
                Vec::new()
            }
            None => Vec::new(),
        };
        self.push(Op::MapGet { map, key }, Ty::MapResult(value_widths))
    }

    /// Longest-prefix-match lookup.
    pub fn lpm_get(&mut self, table: StateId, key: ValueId) -> ValueId {
        let value_widths = match self.state_kind(table, "lpm_get") {
            Some(StateKind::LpmMap { value_widths, .. }) => value_widths,
            Some(_) => {
                self.fail("lpm_get on non-LPM state");
                Vec::new()
            }
            None => Vec::new(),
        };
        self.push(Op::LpmGet { table, key }, Ty::MapResult(value_widths))
    }

    /// NULL check on a map-lookup result.
    pub fn is_null(&mut self, a: ValueId) -> ValueId {
        if !matches!(self.ty_of(a), Some(Ty::MapResult(_))) {
            self.fail(format!("is_null on non-mapresult {a}"));
        }
        self.push(Op::IsNull { a }, Ty::BOOL)
    }

    /// Extract a component from a map-lookup result.
    pub fn extract(&mut self, a: ValueId, index: usize) -> ValueId {
        let w = match self.ty_of(a) {
            Some(Ty::MapResult(ws)) => match ws.get(index) {
                Some(w) => *w,
                None => {
                    self.fail(format!("extract index {index} out of range"));
                    1
                }
            },
            _ => {
                self.fail(format!("extract on non-mapresult {a}"));
                1
            }
        };
        self.push(Op::Extract { a, index }, Ty::Int(w))
    }

    /// Map insert.
    pub fn map_put(&mut self, map: StateId, key: Vec<ValueId>, value: Vec<ValueId>) {
        self.push(Op::MapPut { map, key, value }, Ty::Unit);
    }

    /// Map delete.
    pub fn map_del(&mut self, map: StateId, key: Vec<ValueId>) {
        self.push(Op::MapDel { map, key }, Ty::Unit);
    }

    /// Vector element read.
    pub fn vec_get(&mut self, vec: StateId, index: ValueId) -> ValueId {
        let w = match self.state_kind(vec, "vec_get") {
            Some(StateKind::Vector { elem_width, .. }) => elem_width,
            Some(_) => {
                self.fail("vec_get on non-vector state");
                1
            }
            None => 1,
        };
        self.push(Op::VecGet { vec, index }, Ty::Int(w))
    }

    /// Vector length.
    pub fn vec_len(&mut self, vec: StateId) -> ValueId {
        match self.state_kind(vec, "vec_len") {
            Some(StateKind::Vector { .. }) | None => {}
            Some(_) => self.fail("vec_len on non-vector state"),
        }
        self.push(Op::VecLen { vec }, Ty::Int(32))
    }

    /// Register read.
    pub fn reg_read(&mut self, reg: StateId) -> ValueId {
        let w = match self.state_kind(reg, "reg_read") {
            Some(StateKind::Register { width }) => width,
            Some(_) => {
                self.fail("reg_read on non-register state");
                1
            }
            None => 1,
        };
        self.push(Op::RegRead { reg }, Ty::Int(w))
    }

    /// Register write.
    pub fn reg_write(&mut self, reg: StateId, value: ValueId) {
        self.push(Op::RegWrite { reg, value }, Ty::Unit);
    }

    /// Fused register fetch-and-add.
    pub fn reg_fetch_add(&mut self, reg: StateId, delta: ValueId) -> ValueId {
        let w = match self.state_kind(reg, "reg_fetch_add") {
            Some(StateKind::Register { width }) => width,
            Some(_) => {
                self.fail("reg_fetch_add on non-register state");
                1
            }
            None => 1,
        };
        self.push(Op::RegFetchAdd { reg, delta }, Ty::Int(w))
    }

    /// Hardware hash.
    pub fn hash(&mut self, inputs: Vec<ValueId>, width: u8) -> ValueId {
        self.push(Op::Hash { inputs, width }, Ty::Int(width))
    }

    /// Current time (ns).
    pub fn now(&mut self) -> ValueId {
        self.push(Op::Now, Ty::Int(64))
    }

    /// Recompute the IP checksum.
    pub fn update_checksum(&mut self) {
        self.push(Op::UpdateChecksum, Ty::Unit);
    }

    /// Emit the packet.
    pub fn send(&mut self) {
        self.push(Op::Send, Ty::Unit);
    }

    /// Drop the packet.
    pub fn drop_pkt(&mut self) {
        self.push(Op::Drop, Ty::Unit);
    }

    // ---- terminators ------------------------------------------------------

    /// Terminate the current block with an unconditional jump.
    pub fn jump(&mut self, to: BlockId) {
        self.terminate(Terminator::Jump(to));
    }

    /// Terminate the current block with a conditional branch.
    pub fn branch(&mut self, cond: ValueId, then_bb: BlockId, else_bb: BlockId) {
        self.terminate(Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        });
    }

    /// Terminate the current block with a return.
    pub fn ret(&mut self) {
        self.terminate(Terminator::Return);
    }

    fn terminate(&mut self, t: Terminator) {
        let cur = self.current.0 as usize;
        if self.blocks[cur].2.is_some() {
            self.fail(format!("block {} already terminated", self.current));
            return;
        }
        self.blocks[cur].2 = Some(t);
    }

    /// Finish and validate the program. Any mistake recorded during
    /// construction is returned here instead of a program.
    pub fn finish(self) -> Result<Program> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for (id, insts, term) in self.blocks {
            let term =
                term.ok_or_else(|| MirError::Invalid(format!("block {id} has no terminator")))?;
            blocks.push(BasicBlock { id, insts, term });
        }
        let prog = Program {
            name: self.name,
            states: self.states,
            func: Function {
                insts: self.insts,
                blocks,
                entry: BlockId(0),
            },
        };
        crate::validate::validate(&prog)?;
        Ok(prog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_program() {
        let mut b = FuncBuilder::new("t");
        let s = b.read_field(HeaderField::IpSaddr);
        let d = b.read_field(HeaderField::IpDaddr);
        let x = b.bin(BinOp::Xor, s, d);
        b.write_field(HeaderField::IpDaddr, x);
        b.send();
        b.ret();
        let p = b.finish().expect("valid program");
        assert_eq!(p.func.len(), 5);
        assert_eq!(p.func.blocks.len(), 1);
    }

    #[test]
    fn branchy_program_with_phi() {
        let mut b = FuncBuilder::new("t");
        let cond_src = b.read_field(HeaderField::IpTtl);
        let zero = b.cnst(0, 8);
        let c = b.bin(BinOp::Eq, cond_src, zero);
        let t = b.new_block();
        let e = b.new_block();
        let m = b.new_block();
        b.branch(c, t, e);
        b.switch_to(t);
        let v1 = b.cnst(1, 32);
        b.jump(m);
        b.switch_to(e);
        let v2 = b.cnst(2, 32);
        b.jump(m);
        b.switch_to(m);
        let ph = b.phi(vec![(t, v1), (e, v2)]);
        let ph16 = b.cast(ph, 16);
        b.write_field(HeaderField::DstPort, ph16);
        b.send();
        b.ret();
        let p = b.finish().expect("valid program");
        assert_eq!(p.func.blocks.len(), 4);
    }

    #[test]
    fn map_typed_operations() {
        let mut b = FuncBuilder::new("t");
        let m = b.decl_map("m", vec![16], vec![32, 16], Some(10));
        let k = b.cnst(5, 16);
        let r = b.map_get(m, vec![k]);
        let null = b.is_null(r);
        let v0 = b.extract(r, 0);
        let v1 = b.extract(r, 1);
        assert_eq!(b.ty_of(v0), Some(&Ty::Int(32)));
        assert_eq!(b.ty_of(v1), Some(&Ty::Int(16)));
        assert_eq!(b.ty_of(null), Some(&Ty::BOOL));
        b.ret();
        b.finish().expect("valid program");
    }

    #[test]
    fn mismatched_widths_reported_with_inst() {
        let mut b = FuncBuilder::new("t");
        let a = b.cnst(1, 16);
        let c = b.cnst(1, 32);
        b.bin(BinOp::Add, a, c);
        b.ret();
        let err = b.finish().expect_err("width mismatch must be rejected");
        // The span is the `bin` instruction itself (index 2).
        assert!(
            matches!(err, MirError::Build { inst: 2, .. }),
            "got {err:?}"
        );
        assert!(format!("{err}").contains("operand widths differ"), "{err}");
    }

    #[test]
    fn unterminated_block_rejected() {
        let b = FuncBuilder::new("t");
        assert!(matches!(b.finish(), Err(MirError::Invalid(_))));
    }

    #[test]
    fn double_terminate_reported() {
        let mut b = FuncBuilder::new("t");
        b.ret();
        b.ret();
        let err = b.finish().expect_err("double terminate must be rejected");
        assert!(matches!(err, MirError::Build { .. }), "got {err:?}");
        assert!(format!("{err}").contains("already terminated"));
    }

    #[test]
    fn wrong_state_kind_reported() {
        let mut b = FuncBuilder::new("t");
        let r = b.decl_register("r", 32);
        let i = b.cnst(0, 32);
        b.vec_get(r, i); // register used as a vector
        b.ret();
        let err = b.finish().expect_err("wrong state kind must be rejected");
        assert!(format!("{err}").contains("vec_get on non-vector state"));
    }

    #[test]
    fn first_error_wins() {
        let mut b = FuncBuilder::new("t");
        let a = b.cnst(1, 16);
        let c = b.cnst(1, 32);
        b.bin(BinOp::Add, a, c); // first mistake: widths differ
        b.ret();
        b.ret(); // second mistake: double terminate
        let err = b.finish().expect_err("first error surfaces");
        assert!(format!("{err}").contains("operand widths differ"), "{err}");
    }
}
