//! Global middlebox state: declarations and the runtime store.

use crate::{MirError, Result};
use std::collections::HashMap;

/// Index of a global state declaration within a [`crate::Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub u32);

impl std::fmt::Display for StateId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// The shape of one piece of global state.
///
/// These mirror the two Click data structures the paper supports (`HashMap`,
/// `Vector`, §7) plus scalar registers (the NAT's port-allocation counter).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateKind {
    /// A hash map from a multi-word key to a multi-word value.
    ///
    /// `max_entries` is the developer annotation the paper requires before a
    /// map may be placed on the switch ("Gallium requires a middlebox
    /// developer to annotate a maximum size for each HashMap that the
    /// developer wishes to offload", §4.3.1). `None` means unannotated — the
    /// map can then never be offloaded.
    Map {
        /// Bit widths of the key components.
        key_widths: Vec<u8>,
        /// Bit widths of the value components.
        value_widths: Vec<u8>,
        /// Developer-annotated maximum entry count.
        max_entries: Option<usize>,
    },
    /// A fixed-capacity vector of scalars (e.g. the backend list).
    Vector {
        /// Bit width of each element.
        elem_width: u8,
        /// Maximum number of elements.
        capacity: usize,
    },
    /// A scalar register (e.g. a counter).
    Register {
        /// Bit width of the register.
        width: u8,
    },
    /// A longest-prefix-match table (§7 extension: LPM is a native P4
    /// match kind that classic Click middleboxes never exposed). Read-only
    /// from the packet path; entries are installed at configuration time.
    LpmMap {
        /// Bit width of the key (e.g. 32 for IPv4 prefixes).
        key_width: u8,
        /// Bit widths of the value components.
        value_widths: Vec<u8>,
        /// Annotated maximum entries (required for offloading).
        max_entries: Option<usize>,
    },
}

impl StateKind {
    /// Worst-case switch-memory footprint in bits, used for Constraint 1
    /// (§4.2.2: "the total size of the global state maintained by the switch
    /// does not exceed the size of the switch memory").
    ///
    /// Returns `None` when the footprint is unbounded (unannotated map).
    pub fn memory_bits(&self) -> Option<usize> {
        match self {
            StateKind::Map {
                key_widths,
                value_widths,
                max_entries,
            } => {
                let per: usize = key_widths
                    .iter()
                    .chain(value_widths.iter())
                    .map(|w| usize::from(*w))
                    .sum();
                max_entries.map(|n| n * per)
            }
            StateKind::Vector {
                elem_width,
                capacity,
            } => Some(usize::from(*elem_width) * capacity),
            StateKind::Register { width } => Some(usize::from(*width)),
            StateKind::LpmMap {
                key_width,
                value_widths,
                max_entries,
            } => {
                let per: usize = usize::from(*key_width)
                    + 8 // prefix length
                    + value_widths.iter().map(|w| usize::from(*w)).sum::<usize>();
                max_entries.map(|n| n * per)
            }
        }
    }
}

/// A named global state declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalState {
    /// Source-level name (e.g. `map`, `backends`).
    pub name: String,
    /// Shape and annotations.
    pub kind: StateKind,
}

/// Runtime values for every global state of a program.
///
/// Both the reference interpreter (the "input middlebox") and the middlebox
/// server runtime use this store; the switch simulator keeps its own table /
/// register representation and is kept in sync by the state-synchronization
/// engine.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StateStore {
    maps: Vec<HashMap<Vec<u64>, Vec<u64>>>,
    vectors: Vec<Vec<u64>>,
    registers: Vec<u64>,
    /// `(prefix value, prefix length, value)` triples per LPM table.
    lpms: Vec<Vec<(u64, u8, Vec<u64>)>>,
    /// Maps StateId index -> (kind tag, index into the per-kind vec).
    index: Vec<(SlotKind, usize)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotKind {
    Map,
    Vector,
    Register,
    Lpm,
}

impl StateStore {
    /// Create an empty store shaped after `decls`.
    pub fn new(decls: &[GlobalState]) -> Self {
        let mut store = StateStore::default();
        for d in decls {
            match &d.kind {
                StateKind::Map { .. } => {
                    store.index.push((SlotKind::Map, store.maps.len()));
                    store.maps.push(HashMap::new());
                }
                StateKind::Vector { .. } => {
                    store.index.push((SlotKind::Vector, store.vectors.len()));
                    store.vectors.push(Vec::new());
                }
                StateKind::Register { .. } => {
                    store
                        .index
                        .push((SlotKind::Register, store.registers.len()));
                    store.registers.push(0);
                }
                StateKind::LpmMap { .. } => {
                    store.index.push((SlotKind::Lpm, store.lpms.len()));
                    store.lpms.push(Vec::new());
                }
            }
        }
        store
    }

    fn slot(&self, id: StateId, want: SlotKind) -> Result<usize> {
        match self.index.get(id.0 as usize) {
            Some((kind, idx)) if *kind == want => Ok(*idx),
            Some(_) => Err(MirError::Invalid(format!(
                "state {id} accessed with wrong kind"
            ))),
            None => Err(MirError::DanglingRef(format!("state {id}"))),
        }
    }

    /// Look up a map entry.
    pub fn map_get(&self, id: StateId, key: &[u64]) -> Result<Option<Vec<u64>>> {
        let idx = self.slot(id, SlotKind::Map)?;
        Ok(self.maps[idx].get(key).cloned())
    }

    /// Insert or overwrite a map entry.
    pub fn map_put(&mut self, id: StateId, key: Vec<u64>, value: Vec<u64>) -> Result<()> {
        let idx = self.slot(id, SlotKind::Map)?;
        self.maps[idx].insert(key, value);
        Ok(())
    }

    /// Remove a map entry (no-op when absent).
    pub fn map_del(&mut self, id: StateId, key: &[u64]) -> Result<()> {
        let idx = self.slot(id, SlotKind::Map)?;
        self.maps[idx].remove(key);
        Ok(())
    }

    /// Number of entries currently in a map.
    pub fn map_len(&self, id: StateId) -> Result<usize> {
        let idx = self.slot(id, SlotKind::Map)?;
        Ok(self.maps[idx].len())
    }

    /// Iterate over a map's entries (sorted by key, for determinism).
    pub fn map_entries(&self, id: StateId) -> Result<Vec<(Vec<u64>, Vec<u64>)>> {
        let idx = self.slot(id, SlotKind::Map)?;
        let mut v: Vec<_> = self.maps[idx]
            .iter()
            .map(|(k, val)| (k.clone(), val.clone()))
            .collect();
        v.sort();
        Ok(v)
    }

    /// Read a vector element.
    pub fn vec_get(&self, id: StateId, i: usize) -> Result<u64> {
        let idx = self.slot(id, SlotKind::Vector)?;
        self.vectors[idx]
            .get(i)
            .copied()
            .ok_or_else(|| MirError::Fault(format!("vector {id} index {i} out of range")))
    }

    /// Current length of a vector.
    pub fn vec_len(&self, id: StateId) -> Result<usize> {
        let idx = self.slot(id, SlotKind::Vector)?;
        Ok(self.vectors[idx].len())
    }

    /// Replace the full contents of a vector (configuration-time API, e.g.
    /// installing the backend list).
    pub fn vec_set_all(&mut self, id: StateId, values: Vec<u64>) -> Result<()> {
        let idx = self.slot(id, SlotKind::Vector)?;
        self.vectors[idx] = values;
        Ok(())
    }

    /// Read a register.
    pub fn reg_read(&self, id: StateId) -> Result<u64> {
        let idx = self.slot(id, SlotKind::Register)?;
        Ok(self.registers[idx])
    }

    /// Write a register.
    pub fn reg_write(&mut self, id: StateId, v: u64) -> Result<()> {
        let idx = self.slot(id, SlotKind::Register)?;
        self.registers[idx] = v;
        Ok(())
    }

    /// Longest-prefix-match lookup: among entries whose `prefix_len` high
    /// bits of `key` equal the stored prefix, return the value of the
    /// longest one.
    pub fn lpm_get(&self, id: StateId, key: u64, key_width: u8) -> Result<Option<Vec<u64>>> {
        let idx = self.slot(id, SlotKind::Lpm)?;
        let mut best: Option<(u8, &Vec<u64>)> = None;
        for (prefix, len, value) in &self.lpms[idx] {
            let matches = if *len == 0 {
                true
            } else {
                let shift = key_width.saturating_sub(*len);
                (key >> shift) == (*prefix >> shift)
            };
            if matches && best.map(|(bl, _)| *len > bl).unwrap_or(true) {
                best = Some((*len, value));
            }
        }
        Ok(best.map(|(_, v)| v.clone()))
    }

    /// Install an LPM entry (configuration-time API).
    pub fn lpm_put(&mut self, id: StateId, prefix: u64, len: u8, value: Vec<u64>) -> Result<()> {
        let idx = self.slot(id, SlotKind::Lpm)?;
        self.lpms[idx].retain(|(p, l, _)| !(*p == prefix && *l == len));
        self.lpms[idx].push((prefix, len, value));
        Ok(())
    }

    /// Snapshot of an LPM table's entries (sorted, for determinism).
    pub fn lpm_entries(&self, id: StateId) -> Result<Vec<(u64, u8, Vec<u64>)>> {
        let idx = self.slot(id, SlotKind::Lpm)?;
        let mut v = self.lpms[idx].clone();
        v.sort();
        Ok(v)
    }

    /// Fused fetch-and-add on a register (single stateful-ALU access).
    pub fn reg_fetch_add(&mut self, id: StateId, delta: u64) -> Result<u64> {
        let idx = self.slot(id, SlotKind::Register)?;
        let old = self.registers[idx];
        self.registers[idx] = old.wrapping_add(delta);
        Ok(old)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decls() -> Vec<GlobalState> {
        vec![
            GlobalState {
                name: "map".into(),
                kind: StateKind::Map {
                    key_widths: vec![16],
                    value_widths: vec![32],
                    max_entries: Some(65536),
                },
            },
            GlobalState {
                name: "backends".into(),
                kind: StateKind::Vector {
                    elem_width: 32,
                    capacity: 16,
                },
            },
            GlobalState {
                name: "counter".into(),
                kind: StateKind::Register { width: 16 },
            },
        ]
    }

    #[test]
    fn map_ops() {
        let mut s = StateStore::new(&decls());
        let id = StateId(0);
        assert_eq!(s.map_get(id, &[1]).unwrap(), None);
        s.map_put(id, vec![1], vec![99]).unwrap();
        assert_eq!(s.map_get(id, &[1]).unwrap(), Some(vec![99]));
        assert_eq!(s.map_len(id).unwrap(), 1);
        s.map_del(id, &[1]).unwrap();
        assert_eq!(s.map_get(id, &[1]).unwrap(), None);
    }

    #[test]
    fn vector_ops() {
        let mut s = StateStore::new(&decls());
        let id = StateId(1);
        s.vec_set_all(id, vec![10, 20, 30]).unwrap();
        assert_eq!(s.vec_len(id).unwrap(), 3);
        assert_eq!(s.vec_get(id, 2).unwrap(), 30);
        assert!(matches!(s.vec_get(id, 3), Err(MirError::Fault(_))));
    }

    #[test]
    fn register_ops() {
        let mut s = StateStore::new(&decls());
        let id = StateId(2);
        assert_eq!(s.reg_read(id).unwrap(), 0);
        s.reg_write(id, 5).unwrap();
        assert_eq!(s.reg_fetch_add(id, 3).unwrap(), 5);
        assert_eq!(s.reg_read(id).unwrap(), 8);
    }

    #[test]
    fn wrong_kind_rejected() {
        let s = StateStore::new(&decls());
        assert!(matches!(
            s.map_get(StateId(1), &[0]),
            Err(MirError::Invalid(_))
        ));
        assert!(matches!(s.reg_read(StateId(0)), Err(MirError::Invalid(_))));
        assert!(matches!(
            s.map_get(StateId(9), &[0]),
            Err(MirError::DanglingRef(_))
        ));
    }

    #[test]
    fn memory_bits() {
        let d = decls();
        assert_eq!(d[0].kind.memory_bits(), Some(65536 * 48));
        assert_eq!(d[1].kind.memory_bits(), Some(512));
        assert_eq!(d[2].kind.memory_bits(), Some(16));
        let unannotated = StateKind::Map {
            key_widths: vec![16],
            value_widths: vec![32],
            max_entries: None,
        };
        assert_eq!(unannotated.memory_bits(), None);
    }
}
