//! Lowering a [`StagedProgram`] to a [`P4Program`] (Figure 6).

use crate::ast::*;
use gallium_mir::cfg::Cfg;
use gallium_mir::{Op, StateKind, Terminator, Ty, ValueId};
use gallium_partition::transfer::fields_for_value;
use gallium_partition::{Partition, StagedProgram, StatePlacement};
use std::collections::BTreeSet;

/// Code-generation failures. All indicate internal compiler bugs — the
/// partitioner must never hand the code generator an inexpressible
/// offloaded statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodegenError {
    /// An offloaded statement has no P4 lowering.
    Unsupported {
        /// The offending instruction.
        value: ValueId,
        /// Human-readable description.
        what: String,
    },
}

impl std::fmt::Display for CodegenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodegenError::Unsupported { value, what } => {
                write!(f, "no P4 lowering for {value}: {what}")
            }
        }
    }
}

impl std::error::Error for CodegenError {}

/// Generate the combined pre+post P4 program for `staged`.
pub fn generate(staged: &StagedProgram) -> Result<P4Program, CodegenError> {
    let prog = &staged.prog;
    let f = &prog.func;
    let cfg = Cfg::new(f);
    let ipdom = cfg.postdominators();

    // ---- state objects -------------------------------------------------
    let mut tables = Vec::new();
    let mut registers = Vec::new();
    for (i, st) in prog.states.iter().enumerate() {
        let sid = gallium_mir::StateId(i as u32);
        let on_switch = matches!(
            staged.placement_of(sid),
            StatePlacement::SwitchOnly | StatePlacement::Replicated
        );
        if !on_switch {
            continue;
        }
        match &st.kind {
            StateKind::Map {
                key_widths,
                value_widths,
                max_entries,
            } => tables.push(P4Table {
                name: st.name.clone(),
                state: sid,
                key_widths: key_widths.clone(),
                value_widths: value_widths.clone(),
                size: max_entries.expect("offloaded maps are size-annotated"),
                match_kind: crate::ast::TableMatchKind::Exact,
            }),
            StateKind::LpmMap {
                key_width,
                value_widths,
                max_entries,
            } => tables.push(P4Table {
                name: st.name.clone(),
                state: sid,
                key_widths: vec![*key_width],
                value_widths: value_widths.clone(),
                size: max_entries.expect("offloaded LPM tables are size-annotated"),
                match_kind: crate::ast::TableMatchKind::Lpm,
            }),
            StateKind::Register { width } => registers.push(P4Register {
                name: st.name.clone(),
                state: sid,
                width: *width,
            }),
            StateKind::Vector { .. } => {
                // Vectors have no P4 lowering (Figure 6); the partitioner
                // never places vector accesses on the switch.
                unreachable!("vector state placed on switch");
            }
        }
    }
    let table_idx = |s: gallium_mir::StateId| tables.iter().position(|t| t.state == s);
    let reg_idx = |s: gallium_mir::StateId| registers.iter().position(|r| r.state == s);

    // ---- metadata fields -------------------------------------------------
    // Every value materialized on the switch plus every transferred value.
    let mut meta_names: BTreeSet<(String, u16)> = BTreeSet::new();
    for i in 0..f.insts.len() {
        let v = ValueId(i as u32);
        let needed = staged.partition_of(v).on_switch()
            || staged.to_server_values.contains(&v)
            || staged.to_switch_values.contains(&v);
        if needed {
            for fld in fields_for_value(prog, v) {
                meta_names.insert((fld.name, fld.bits));
            }
        }
    }
    let metadata: Vec<MetaField> = meta_names
        .into_iter()
        .map(|(name, bits)| MetaField { name, bits })
        .collect();

    // ---- pipeline nodes --------------------------------------------------
    let lower_traversal = |part: Partition| -> Result<Vec<BlockNode>, CodegenError> {
        let mut nodes = Vec::with_capacity(f.blocks.len());
        for b in &f.blocks {
            let mut stmts = Vec::new();
            let mut has_foreign = false;
            for &v in &b.insts {
                if staged.partition_of(v) != part {
                    // On the pre traversal, any non-pre instruction means
                    // this path still has later-stage work: the packet must
                    // visit the server (slow path).
                    if part == Partition::Pre {
                        has_foreign = true;
                    }
                    continue;
                }
                if matches!(f.inst(v).op, Op::Phi { .. }) {
                    continue; // lowered into predecessors below
                }
                stmts.push(lower_inst(staged, v, &table_idx, &reg_idx)?);
            }
            let cond_available = |cond: ValueId| -> bool {
                match part {
                    Partition::Pre => staged.partition_of(cond) == Partition::Pre,
                    Partition::Post => {
                        staged.partition_of(cond) == Partition::Post
                            || staged.to_switch_values.contains(&cond)
                    }
                    Partition::NonOffloaded => unreachable!(),
                }
            };
            let next = match &b.term {
                Terminator::Jump(t) => NodeNext::Jump(t.0 as usize),
                Terminator::Return => NodeNext::End,
                Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    // A loop-header branch never becomes a pipeline Cond:
                    // loop bodies hold no offloaded statements (rule 5),
                    // and a back edge would put a cycle in the stage DAG.
                    let is_loop_branch = cfg.reaches_nonempty(b.id, b.id);
                    if cond_available(*cond) && !is_loop_branch {
                        NodeNext::Cond {
                            meta: StagedProgram::field_name(*cond),
                            then_n: then_bb.0 as usize,
                            else_n: else_bb.0 as usize,
                        }
                    } else {
                        // The branch belongs to a later (or, for post, an
                        // earlier-but-untransferred) stage: skip to the
                        // join point.
                        let join = match ipdom[b.id.0 as usize] {
                            Some(j) if j != b.id => Some(j.0 as usize),
                            _ => None,
                        };
                        let skipped_has_foreign = part == Partition::Pre
                            && cfg.reachable_from(b.id).iter().any(|rb| {
                                f.block(*rb)
                                    .insts
                                    .iter()
                                    .any(|v| staged.partition_of(*v) != Partition::Pre)
                            });
                        NodeNext::SkipJoin {
                            join,
                            skipped_has_foreign,
                        }
                    }
                }
            };
            nodes.push(BlockNode {
                stmts,
                has_foreign_work: has_foreign,
                next,
            });
        }
        // φ lowering: copy incoming values at the end of each predecessor.
        for b in &f.blocks {
            for &v in &b.insts {
                if staged.partition_of(v) != part {
                    continue;
                }
                let Op::Phi { incoming } = &f.inst(v).op else {
                    continue;
                };
                for (pred, val) in incoming {
                    nodes[pred.0 as usize].stmts.push(P4Stmt::SetMeta(
                        StagedProgram::field_name(v),
                        P4Expr::Meta(StagedProgram::field_name(*val)),
                    ));
                }
            }
        }
        Ok(nodes)
    };

    let pre_nodes = lower_traversal(Partition::Pre)?;
    let post_nodes = lower_traversal(Partition::Post)?;

    let to_server_fields = staged
        .to_server_values
        .iter()
        .flat_map(|v| fields_for_value(prog, *v))
        .map(|f| f.name)
        .collect();

    Ok(P4Program {
        name: prog.name.clone(),
        metadata,
        tables,
        registers,
        pre_nodes,
        post_nodes,
        entry: f.entry.0 as usize,
        header_to_server: staged.header_to_server.clone(),
        header_to_switch: staged.header_to_switch.clone(),
        to_server_fields,
    })
}

fn lower_inst(
    staged: &StagedProgram,
    v: ValueId,
    table_idx: &dyn Fn(gallium_mir::StateId) -> Option<usize>,
    reg_idx: &dyn Fn(gallium_mir::StateId) -> Option<usize>,
) -> Result<P4Stmt, CodegenError> {
    let f = &staged.prog.func;
    let name = StagedProgram::field_name(v);
    let meta = |u: ValueId| P4Expr::Meta(StagedProgram::field_name(u));
    let err = |what: &str| CodegenError::Unsupported {
        value: v,
        what: what.into(),
    };
    Ok(match &f.inst(v).op {
        Op::Const { value, width } => P4Stmt::SetMeta(name, P4Expr::Const(*value, *width)),
        Op::Bin { op, a, b } => {
            if !op.p4_supported() {
                return Err(err(&format!("ALU op {}", op.name())));
            }
            P4Stmt::SetMeta(
                name,
                P4Expr::Bin(*op, Box::new(meta(*a)), Box::new(meta(*b))),
            )
        }
        Op::Not { a } => P4Stmt::SetMeta(name, P4Expr::Not(Box::new(meta(*a)))),
        Op::Cast { a, width } => P4Stmt::SetMeta(name, P4Expr::Cast(Box::new(meta(*a)), *width)),
        Op::ReadField { field } => P4Stmt::SetMeta(name, P4Expr::Header(*field)),
        Op::WriteField { field, value } => P4Stmt::SetHeader(*field, meta(*value)),
        Op::ReadPort => P4Stmt::SetMeta(name, P4Expr::IngressPort),
        Op::LpmGet { table, key } => {
            let t = table_idx(*table).ok_or_else(|| err("LPM table not placed on switch"))?;
            let value_metas = match &f.inst(v).ty {
                Ty::MapResult(ws) => (0..ws.len()).map(|i| format!("{name}.{i}")).collect(),
                _ => return Err(err("lpmget without MapResult type")),
            };
            P4Stmt::TableLookup {
                table: t,
                keys: vec![meta(*key)],
                hit_meta: format!("{name}.hit"),
                value_metas,
            }
        }
        Op::MapGet { map, key } => {
            let table = table_idx(*map).ok_or_else(|| err("map not placed on switch"))?;
            let value_metas = match &f.inst(v).ty {
                Ty::MapResult(ws) => (0..ws.len()).map(|i| format!("{name}.{i}")).collect(),
                _ => return Err(err("mapget without MapResult type")),
            };
            P4Stmt::TableLookup {
                table,
                keys: key.iter().map(|k| meta(*k)).collect(),
                hit_meta: format!("{name}.hit"),
                value_metas,
            }
        }
        Op::IsNull { a } => P4Stmt::SetMeta(
            name,
            P4Expr::Bin(
                gallium_mir::BinOp::Eq,
                Box::new(P4Expr::Meta(format!(
                    "{}.hit",
                    StagedProgram::field_name(*a)
                ))),
                Box::new(P4Expr::Const(0, 1)),
            ),
        ),
        Op::Extract { a, index } => P4Stmt::SetMeta(
            name,
            P4Expr::Meta(format!("{}.{index}", StagedProgram::field_name(*a))),
        ),
        Op::RegRead { reg } => P4Stmt::RegRead {
            reg: reg_idx(*reg).ok_or_else(|| err("register not placed on switch"))?,
            dst: name,
        },
        Op::RegWrite { reg, value } => P4Stmt::RegWrite {
            reg: reg_idx(*reg).ok_or_else(|| err("register not placed on switch"))?,
            src: meta(*value),
        },
        Op::RegFetchAdd { reg, delta } => P4Stmt::RegFetchAdd {
            reg: reg_idx(*reg).ok_or_else(|| err("register not placed on switch"))?,
            dst: name,
            delta: meta(*delta),
        },
        Op::Hash { inputs, width } => P4Stmt::SetMeta(
            name,
            P4Expr::Hash(inputs.iter().map(|i| meta(*i)).collect(), *width),
        ),
        Op::UpdateChecksum => P4Stmt::UpdateChecksum,
        Op::Send => P4Stmt::EmitCopy,
        Op::Drop => P4Stmt::MarkDrop,
        Op::Phi { .. } => unreachable!("phis lowered into predecessors"),
        Op::MapPut { .. } | Op::MapDel { .. } => return Err(err("data-plane table write")),
        Op::VecGet { .. } | Op::VecLen { .. } => return Err(err("vector access")),
        Op::PayloadMatch { .. } => return Err(err("payload access")),
        Op::Now => return Err(err("wall clock")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gallium_mir::{BinOp, FuncBuilder, HeaderField, Program};
    use gallium_partition::{partition_program, SwitchModel};

    fn minilb() -> Program {
        let mut b = FuncBuilder::new("minilb");
        let map = b.decl_map("map", vec![16], vec![32], Some(65536));
        let backends = b.decl_vector("backends", 32, 16);
        let saddr = b.read_field(HeaderField::IpSaddr);
        let daddr = b.read_field(HeaderField::IpDaddr);
        let hash32 = b.bin(BinOp::Xor, saddr, daddr);
        let mask = b.cnst(0xFFFF, 32);
        let low = b.bin(BinOp::And, hash32, mask);
        let key = b.cast(low, 16);
        let res = b.map_get(map, vec![key]);
        let null = b.is_null(res);
        let hit = b.new_block();
        let miss = b.new_block();
        b.branch(null, miss, hit);
        b.switch_to(hit);
        let bk = b.extract(res, 0);
        b.write_field(HeaderField::IpDaddr, bk);
        b.send();
        b.ret();
        b.switch_to(miss);
        let len = b.vec_len(backends);
        let idx = b.bin(BinOp::Mod, hash32, len);
        let bk2 = b.vec_get(backends, idx);
        b.write_field(HeaderField::IpDaddr, bk2);
        b.map_put(map, vec![key], vec![bk2]);
        b.send();
        b.ret();
        b.finish().unwrap()
    }

    fn staged() -> StagedProgram {
        partition_program(&minilb(), &SwitchModel::tofino_like()).unwrap()
    }

    #[test]
    fn minilb_generates_one_table_no_registers() {
        let p4 = generate(&staged()).unwrap();
        assert_eq!(p4.tables.len(), 1);
        assert_eq!(p4.tables[0].name, "map");
        assert_eq!(p4.tables[0].size, 65536);
        assert!(p4.registers.is_empty());
    }

    #[test]
    fn minilb_pre_pipeline_shape() {
        let p4 = generate(&staged()).unwrap();
        // Entry block: 8 statements (reads, xor, const, and, cast, lookup,
        // isnull) then a Cond on the isnull meta.
        let entry = &p4.pre_nodes[p4.entry];
        assert_eq!(entry.stmts.len(), 8);
        assert!(matches!(
            entry.next,
            NodeNext::Cond { ref meta, .. } if meta == "v7"
        ));
        assert!(entry
            .stmts
            .iter()
            .any(|s| matches!(s, P4Stmt::TableLookup { .. })));
        // Hit block (b1): extract, header write, emit — all pre.
        let hit = &p4.pre_nodes[1];
        assert_eq!(hit.stmts.len(), 3);
        assert!(!hit.has_foreign_work);
        assert!(matches!(hit.stmts[2], P4Stmt::EmitCopy));
        // Miss block (b2): nothing to do in pre, but it has foreign work —
        // this is what routes the packet to the server.
        let miss = &p4.pre_nodes[2];
        assert!(miss.stmts.is_empty());
        assert!(miss.has_foreign_work);
    }

    #[test]
    fn minilb_post_pipeline_shape() {
        let p4 = generate(&staged()).unwrap();
        // Post traversal: entry has no post statements; branch cond v7 is
        // transferred so it is available.
        let entry = &p4.post_nodes[p4.entry];
        assert!(entry.stmts.is_empty());
        assert!(matches!(entry.next, NodeNext::Cond { .. }));
        // Miss block carries the daddr write + send.
        let miss = &p4.post_nodes[2];
        assert_eq!(miss.stmts.len(), 2);
        assert!(matches!(
            miss.stmts[0],
            P4Stmt::SetHeader(HeaderField::IpDaddr, _)
        ));
        assert!(matches!(miss.stmts[1], P4Stmt::EmitCopy));
        // Hit block does nothing on the post traversal.
        assert!(p4.post_nodes[1].stmts.is_empty());
    }

    #[test]
    fn metadata_includes_transferred_values() {
        let p4 = generate(&staged()).unwrap();
        let names: Vec<&str> = p4.metadata.iter().map(|m| m.name.as_str()).collect();
        assert!(names.contains(&"v2"), "hash32 meta");
        assert!(names.contains(&"v7"), "branch-bit meta");
        assert!(names.contains(&"v13"), "server-computed backend meta");
        assert!(names.contains(&"v6.hit"), "lookup hit meta");
    }

    #[test]
    fn pipeline_depth_within_model() {
        let p4 = generate(&staged()).unwrap();
        assert!(p4.pipeline_depth() <= SwitchModel::tofino_like().pipeline_depth);
    }

    #[test]
    fn table_memory_matches_annotation() {
        let p4 = generate(&staged()).unwrap();
        assert_eq!(p4.table_memory_bits(), 65536 * (16 + 32));
    }
}
