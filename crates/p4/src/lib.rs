//! # gallium-p4 — P4 program representation and code generation (§4.3.1)
//!
//! Lowers a partitioned [`gallium_partition::StagedProgram`] into a
//! [`P4Program`]: the single switch program that contains **both** the
//! pre-processing and post-processing partitions, dispatched on the ingress
//! interface exactly as the paper describes ("Gallium creates a
//! match-action table that matches on the ingress interface of the packet
//! at the beginning of the processing pipeline").
//!
//! The mapping follows Figure 6:
//!
//! | CFG construct        | P4 counterpart                          |
//! |----------------------|-----------------------------------------|
//! | temporary variable   | metadata field                          |
//! | map                  | match-action table (+ write-back shadow)|
//! | global variable      | register                                |
//! | branch               | branch (pipeline conditional)           |
//! | header access        | header access                           |
//! | ALU operation        | P4 ALU primitive                        |
//! | map lookup           | table lookup                            |
//!
//! The AST is a **pipeline DAG** (one node per source basic block) rather
//! than structured if/else source — matching how physical RMT pipelines and
//! bmv2 actually represent control flow. [`printer`] renders a readable
//! P4-16-style listing from it; `gallium-switchsim` executes it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod codegen;
pub mod printer;

pub use ast::{
    BlockNode, ControlPlaneOp, MetaField, NodeNext, P4Expr, P4Program, P4Register, P4Stmt, P4Table,
    TableMatchKind,
};
pub use codegen::{generate, CodegenError};
pub use printer::print_p4;
