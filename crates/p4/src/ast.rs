//! The P4 program AST.

use gallium_mir::{BinOp, HeaderField, StateId};
use gallium_net::TransferHeaderLayout;

/// A metadata (scratchpad) field — the P4 counterpart of a temporary
/// variable (Figure 6). Allocated per packet, garbage-collected when the
/// packet leaves the switch (§2.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaField {
    /// Field name (`v17`, `v6.hit`, …).
    pub name: String,
    /// Width in bits.
    pub bits: u16,
}

/// Match kind of a table's keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableMatchKind {
    /// Exact match (hash tables).
    Exact,
    /// Longest-prefix match (§7 extension).
    Lpm,
}

/// A match-action table — the P4 counterpart of an offloaded `HashMap`.
///
/// Each offloaded table carries a smaller **write-back shadow table** and
/// participates in the atomic-update protocol of §4.3.3: when the global
/// write-back bit is set, lookups consult the shadow first (a tombstone
/// entry negates the main table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct P4Table {
    /// Table name (derived from the state name).
    pub name: String,
    /// The IR state this table realizes.
    pub state: StateId,
    /// Key component widths in bits.
    pub key_widths: Vec<u8>,
    /// Value component widths in bits.
    pub value_widths: Vec<u8>,
    /// Developer-annotated maximum entries (sizes the SRAM allocation).
    pub size: usize,
    /// Exact or longest-prefix match.
    pub match_kind: TableMatchKind,
}

/// A register — the P4 counterpart of an offloaded global variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct P4Register {
    /// Register name.
    pub name: String,
    /// The IR state this register realizes.
    pub state: StateId,
    /// Width in bits.
    pub width: u8,
}

/// Pure expressions evaluated by the match-action ALUs.
#[derive(Debug, Clone, PartialEq)]
pub enum P4Expr {
    /// Integer literal.
    Const(u64, u8),
    /// Read a metadata field.
    Meta(String),
    /// Read a packet-header field.
    Header(HeaderField),
    /// Read the ingress port (standard metadata).
    IngressPort,
    /// ALU operation (only P4-expressible [`BinOp`]s appear here; codegen
    /// rejects the rest).
    Bin(BinOp, Box<P4Expr>, Box<P4Expr>),
    /// Bitwise NOT.
    Not(Box<P4Expr>),
    /// Truncate/zero-extend.
    Cast(Box<P4Expr>, u8),
    /// Hardware hash unit.
    Hash(Vec<P4Expr>, u8),
}

/// Statements executed inside a pipeline node.
#[derive(Debug, Clone, PartialEq)]
pub enum P4Stmt {
    /// `meta.NAME = expr`.
    SetMeta(String, P4Expr),
    /// `hdr.FIELD = expr`.
    SetHeader(HeaderField, P4Expr),
    /// Apply a match-action table: read keys from metadata, write the hit
    /// flag and value components back into metadata.
    TableLookup {
        /// Index into [`P4Program::tables`].
        table: usize,
        /// Key expressions (one per key component).
        keys: Vec<P4Expr>,
        /// Metadata field receiving the hit flag.
        hit_meta: String,
        /// Metadata fields receiving the value components.
        value_metas: Vec<String>,
    },
    /// Read a register into metadata.
    RegRead {
        /// Index into [`P4Program::registers`].
        reg: usize,
        /// Destination metadata field.
        dst: String,
    },
    /// Write a register.
    RegWrite {
        /// Index into [`P4Program::registers`].
        reg: usize,
        /// Source expression.
        src: P4Expr,
    },
    /// Stateful-ALU fetch-and-add: old value lands in `dst`.
    RegFetchAdd {
        /// Index into [`P4Program::registers`].
        reg: usize,
        /// Destination metadata field for the pre-increment value.
        dst: String,
        /// Increment expression.
        delta: P4Expr,
    },
    /// Recompute the IPv4 checksum in the deparser.
    UpdateChecksum,
    /// Emit a copy of the current packet out of the switch (a `send` that
    /// executes on the switch).
    EmitCopy,
    /// Mark the working packet dropped.
    MarkDrop,
}

/// How control leaves a pipeline node.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeNext {
    /// Unconditional transfer.
    Jump(usize),
    /// Conditional transfer on a metadata field (the branch condition is
    /// always materialized in metadata before the branch).
    Cond {
        /// 1-bit metadata field holding the branch outcome.
        meta: String,
        /// Node when nonzero.
        then_n: usize,
        /// Node when zero.
        else_n: usize,
    },
    /// The branch condition is computed by a *later* pipeline stage
    /// (server or post); this traversal cannot take either arm. Control
    /// skips to the join point (the branch block's immediate
    /// postdominator), or ends when the arms never rejoin.
    SkipJoin {
        /// Join node, if the arms reconverge.
        join: Option<usize>,
        /// Whether the skipped region contains work for a later stage
        /// (forces the packet to the server on the pre traversal).
        skipped_has_foreign: bool,
    },
    /// End of traversal.
    End,
}

/// One pipeline node — the lowering of one source basic block for one
/// traversal (pre or post).
#[derive(Debug, Clone, PartialEq)]
pub struct BlockNode {
    /// Statements, in order.
    pub stmts: Vec<P4Stmt>,
    /// Whether the source block contains instructions belonging to a later
    /// stage (pre traversal only; decides fast path vs. slow path).
    pub has_foreign_work: bool,
    /// Control transfer.
    pub next: NodeNext,
}

/// The complete switch program: both offloaded partitions plus all state
/// and header declarations.
#[derive(Debug, Clone, PartialEq)]
pub struct P4Program {
    /// Program name (middlebox name).
    pub name: String,
    /// Every metadata field either partition materializes.
    pub metadata: Vec<MetaField>,
    /// Match-action tables (offloaded maps).
    pub tables: Vec<P4Table>,
    /// Registers (offloaded global variables).
    pub registers: Vec<P4Register>,
    /// Pre-processing pipeline, one node per source block.
    pub pre_nodes: Vec<BlockNode>,
    /// Post-processing pipeline, one node per source block.
    pub post_nodes: Vec<BlockNode>,
    /// Entry node index (same for both traversals: the source entry block).
    pub entry: usize,
    /// Layout of the header added when forwarding to the server.
    pub header_to_server: TransferHeaderLayout,
    /// Layout of the header expected on packets arriving from the server.
    pub header_to_switch: TransferHeaderLayout,
    /// Names of metadata fields packed into the to-server header.
    pub to_server_fields: Vec<String>,
}

impl P4Program {
    /// Find a table index by the IR state it realizes.
    pub fn table_for_state(&self, s: StateId) -> Option<usize> {
        self.tables.iter().position(|t| t.state == s)
    }

    /// Find a register index by the IR state it realizes.
    pub fn register_for_state(&self, s: StateId) -> Option<usize> {
        self.registers.iter().position(|r| r.state == s)
    }

    /// Total match-action memory the tables require, in bits (Constraint 1
    /// as seen by the switch loader).
    pub fn table_memory_bits(&self) -> usize {
        self.tables
            .iter()
            .map(|t| {
                let entry: usize = t
                    .key_widths
                    .iter()
                    .chain(t.value_widths.iter())
                    .map(|w| usize::from(*w))
                    .sum();
                entry * t.size
            })
            .sum()
    }

    /// Total metadata bits declared (Constraint 4 as seen by the loader —
    /// an upper bound; the compiler's liveness-based figure is tighter).
    pub fn metadata_bits(&self) -> usize {
        self.metadata.iter().map(|m| usize::from(m.bits)).sum()
    }

    /// Pipeline stages required by the longest chain of *dependent*
    /// operations (Constraint 2 as seen by the loader).
    ///
    /// Matches the RMT execution model: operations whose inputs are ready
    /// at the same stage execute in parallel, regardless of how many
    /// control-flow nodes separate them — only metadata def-use chains
    /// (and the single stateful access each table/register gets per
    /// traversal) consume sequential stages. This is the same metric the
    /// partitioner bounds with the dependency-distance computation, so a
    /// program the compiler accepts always loads.
    pub fn pipeline_depth(&self) -> usize {
        depth_of(&self.pre_nodes, self.entry).max(depth_of(&self.post_nodes, self.entry))
    }
}

/// Metadata fields read by an expression.
fn expr_reads(e: &P4Expr, out: &mut Vec<String>) {
    match e {
        P4Expr::Meta(n) => out.push(n.clone()),
        P4Expr::Bin(_, a, b) => {
            expr_reads(a, out);
            expr_reads(b, out);
        }
        P4Expr::Not(a) | P4Expr::Cast(a, _) => expr_reads(a, out),
        P4Expr::Hash(parts, _) => {
            for p in parts {
                expr_reads(p, out);
            }
        }
        P4Expr::Const(..) | P4Expr::Header(_) | P4Expr::IngressPort => {}
    }
}

/// Dataflow-level depth of one traversal: a forward pass over the pipeline
/// DAG tracking, per metadata field, the stage after which its value is
/// available; every statement executes one stage after its latest input.
fn depth_of(nodes: &[BlockNode], entry: usize) -> usize {
    use std::collections::HashMap;
    #[derive(Clone, Default)]
    struct Levels {
        meta: HashMap<String, usize>,
        max: usize,
    }
    fn merge(a: &mut Levels, b: &Levels) -> bool {
        let mut changed = false;
        for (k, v) in &b.meta {
            let e = a.meta.entry(k.clone()).or_insert(0);
            if *v > *e {
                *e = *v;
                changed = true;
            }
        }
        if b.max > a.max {
            a.max = b.max;
            changed = true;
        }
        changed
    }
    let n = nodes.len();
    let mut inbox: Vec<Option<Levels>> = vec![None; n];
    inbox[entry] = Some(Levels::default());
    // The generated DAG has no cycles; iterate to a fixpoint (cheap: the
    // node count is small and merges are monotone).
    let mut overall = 0usize;
    let mut changed = true;
    let mut rounds = 0;
    while changed {
        changed = false;
        rounds += 1;
        assert!(rounds <= n + 2, "cycle in generated pipeline");
        for i in 0..n {
            let Some(level_in) = inbox[i].clone() else {
                continue;
            };
            let mut lv = level_in;
            for stmt in &nodes[i].stmts {
                let mut reads = Vec::new();
                let mut writes: Vec<&String> = Vec::new();
                match stmt {
                    P4Stmt::SetMeta(name, e) => {
                        expr_reads(e, &mut reads);
                        writes.push(name);
                    }
                    P4Stmt::SetHeader(_, e) => expr_reads(e, &mut reads),
                    P4Stmt::TableLookup {
                        keys,
                        hit_meta,
                        value_metas,
                        ..
                    } => {
                        for k in keys {
                            expr_reads(k, &mut reads);
                        }
                        writes.push(hit_meta);
                        writes.extend(value_metas.iter());
                    }
                    P4Stmt::RegRead { dst, .. } => writes.push(dst),
                    P4Stmt::RegWrite { src, .. } => expr_reads(src, &mut reads),
                    P4Stmt::RegFetchAdd { dst, delta, .. } => {
                        expr_reads(delta, &mut reads);
                        writes.push(dst);
                    }
                    P4Stmt::UpdateChecksum | P4Stmt::EmitCopy | P4Stmt::MarkDrop => {}
                }
                let in_level = reads
                    .iter()
                    .map(|r| lv.meta.get(r).copied().unwrap_or(0))
                    .max()
                    .unwrap_or(0);
                let stage = in_level + 1;
                for w in writes {
                    lv.meta.insert(w.clone(), stage);
                }
                lv.max = lv.max.max(stage);
            }
            overall = overall.max(lv.max);
            let succs: Vec<usize> = match &nodes[i].next {
                NodeNext::Jump(t) => vec![*t],
                NodeNext::Cond { then_n, else_n, .. } => vec![*then_n, *else_n],
                NodeNext::SkipJoin { join: Some(j), .. } => vec![*j],
                _ => vec![],
            };
            for s in succs {
                match &mut inbox[s] {
                    Some(existing) => changed |= merge(existing, &lv),
                    slot @ None => {
                        *slot = Some(lv.clone());
                        changed = true;
                    }
                }
            }
        }
    }
    overall
}

/// Control-plane operations the middlebox server (or the operator's
/// configuration scripts) can issue to the switch. These run on the
/// switch's management CPU and are orders of magnitude slower than packet
/// processing (§2.1) — the latency model lives in `gallium-switchsim`.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlPlaneOp {
    /// Insert an entry into a main table.
    TableInsert {
        /// Table name.
        table: String,
        /// Key components.
        key: Vec<u64>,
        /// Value components.
        value: Vec<u64>,
    },
    /// Modify an existing entry in a main table.
    TableModify {
        /// Table name.
        table: String,
        /// Key components.
        key: Vec<u64>,
        /// New value components.
        value: Vec<u64>,
    },
    /// Delete an entry from a main table.
    TableDelete {
        /// Table name.
        table: String,
        /// Key components.
        key: Vec<u64>,
    },
    /// Write a register.
    RegisterSet {
        /// Register name.
        register: String,
        /// New value.
        value: u64,
    },
    /// Insert a longest-prefix-match entry (§7 extension).
    LpmInsert {
        /// Table name.
        table: String,
        /// Prefix value (high bits significant).
        prefix: u64,
        /// Prefix length in bits.
        prefix_len: u8,
        /// Value components.
        value: Vec<u64>,
    },
    /// Stage an entry in a table's write-back shadow (`None` value = the
    /// tombstone marking deletion).
    WriteBackStage {
        /// Table name.
        table: String,
        /// Key components.
        key: Vec<u64>,
        /// Staged value, or `None` for deletion.
        value: Option<Vec<u64>>,
    },
    /// Atomically flip the global write-back visibility bit.
    SetWriteBackBit(bool),
    /// Clear a table's write-back shadow (after folding into the main
    /// table).
    WriteBackClear {
        /// Table name.
        table: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_memory_accounting() {
        let prog = P4Program {
            name: "t".into(),
            metadata: vec![
                MetaField {
                    name: "a".into(),
                    bits: 32,
                },
                MetaField {
                    name: "b".into(),
                    bits: 1,
                },
            ],
            tables: vec![P4Table {
                name: "map".into(),
                state: StateId(0),
                key_widths: vec![16],
                value_widths: vec![32],
                size: 100,
                match_kind: TableMatchKind::Exact,
            }],
            registers: vec![],
            pre_nodes: vec![BlockNode {
                stmts: vec![],
                has_foreign_work: false,
                next: NodeNext::End,
            }],
            post_nodes: vec![BlockNode {
                stmts: vec![],
                has_foreign_work: false,
                next: NodeNext::End,
            }],
            entry: 0,
            header_to_server: TransferHeaderLayout::default(),
            header_to_switch: TransferHeaderLayout::default(),
            to_server_fields: vec![],
        };
        assert_eq!(prog.table_memory_bits(), 4800);
        assert_eq!(prog.metadata_bits(), 33);
        // Empty nodes consume no stages under the dataflow metric.
        assert_eq!(prog.pipeline_depth(), 0);
        assert_eq!(prog.table_for_state(StateId(0)), Some(0));
        assert_eq!(prog.table_for_state(StateId(1)), None);
    }
}
