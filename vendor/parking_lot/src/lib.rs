//! Minimal, hermetic stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::Mutex`/`RwLock` with `parking_lot`'s non-poisoning
//! API (no `Result` from `lock()`): a poisoned std lock just means a
//! panicking thread held it, and the stand-in mirrors parking_lot by
//! handing the data out anyway.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consume the lock and return the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Reader-writer lock whose acquisitions never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consume the lock and return the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
