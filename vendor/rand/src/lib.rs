//! Minimal, hermetic stand-in for the `rand` crate.
//!
//! Provides exactly the subset the workspace uses: a seedable
//! deterministic generator ([`rngs::StdRng`]), the [`Rng`] extension
//! trait with `gen` / `gen_range`, and [`SeedableRng::seed_from_u64`].
//! The generator is splitmix64 — statistically fine for workload
//! synthesis, not cryptographic.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be drawn uniformly from an [`RngCore`].
pub trait Random: Sized {
    /// Draw one value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u32
    }
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn uniformly from.
pub trait SampleRange {
    /// Element type of the range.
    type Output;
    /// Draw one value in the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::random(rng) * (self.end - self.start)
    }
}

impl SampleRange for Range<u64> {
    type Output = u64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        let span = self.end.checked_sub(self.start).filter(|s| *s > 0);
        match span {
            Some(s) => self.start + rng.next_u64() % s,
            None => self.start,
        }
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        ((self.start as u64)..(self.end as u64)).sample_from(rng) as usize
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a uniformly random value of type `T`.
    fn gen<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// Draw a value uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let r = rng.gen_range(2.0..5.0);
            assert!((2.0..5.0).contains(&r));
        }
    }

    #[test]
    fn int_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(5usize..6);
            assert_eq!(w, 5);
        }
    }
}
