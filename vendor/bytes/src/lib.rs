//! Minimal, hermetic stand-in for the `bytes` crate.
//!
//! The workspace builds offline; only the small subset of the real crate's
//! API that `gallium-net` uses is provided. Both types are thin wrappers
//! around `Vec<u8>` — contiguous, owned, no refcounted views.

use std::ops::{Deref, DerefMut};

/// Immutable byte buffer (frozen form of [`BytesMut`]).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Vec::new())
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(v.to_vec())
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// A buffer of `len` zero bytes.
    pub fn zeroed(len: usize) -> Self {
        BytesMut(vec![0; len])
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Split off and return the tail starting at `at`.
    pub fn split_off(&mut self, at: usize) -> BytesMut {
        BytesMut(self.0.split_off(at))
    }

    /// Resize to `new_len`, filling with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.0.resize(new_len, value);
    }

    /// Truncate to at most `len` bytes.
    pub fn truncate(&mut self, len: usize) {
        self.0.truncate(len);
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.0.extend_from_slice(extend);
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        BytesMut(v.to_vec())
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_resize_extend_roundtrip() {
        let mut b = BytesMut::from(&b"hello world"[..]);
        let tail = b.split_off(5);
        assert_eq!(&b[..], b"hello");
        b.resize(7, 0);
        b.extend_from_slice(&tail);
        assert_eq!(&b[..], b"hello\0\0 world");
        b.truncate(5);
        assert_eq!(&b.freeze()[..], b"hello");
    }

    #[test]
    fn zeroed_is_zero() {
        let b = BytesMut::zeroed(4);
        assert_eq!(&b[..], &[0, 0, 0, 0]);
    }
}
