//! Minimal, hermetic stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel::{bounded, Sender, Receiver}` is provided,
//! implemented over `std::sync::mpsc::sync_channel`, which gives the
//! same blocking-on-full backpressure semantics the server sharding
//! layer relies on.

/// Multi-producer channels with bounded capacity.
pub mod channel {
    use std::sync::mpsc;

    /// Error returned when the receiving side has disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when the sending side has disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Sending half of a bounded channel.
    #[derive(Debug, Clone)]
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Sender<T> {
        /// Send, blocking while the channel is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// Receiving half of a bounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Receive, blocking until a message or disconnection.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Iterate over messages until the channel disconnects.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.recv().ok())
        }
    }

    /// Create a channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = bounded(4);
            for i in 0..4 {
                tx.send(i).unwrap();
            }
            drop(tx);
            assert_eq!(rx.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn disconnected_send_fails() {
            let (tx, rx) = bounded(1);
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }
    }
}
