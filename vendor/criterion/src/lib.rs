//! Minimal, hermetic stand-in for the `criterion` crate.
//!
//! Implements enough of the API for the workspace's `harness = false`
//! benches to compile and run: `Criterion`, benchmark groups,
//! `Bencher::iter`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros. Timing is a fixed-iteration wall-clock
//! average printed to stdout — no warmup, outlier analysis, or plots.

use std::fmt;
use std::time::Instant;

/// Iterations per measurement. Small: benches here gate compilation and
/// smoke-run, not statistics.
const ITERS: u32 = 50;

/// Re-export of `std::hint::black_box` for callers that import it.
pub use std::hint::black_box;

/// Identifier for one parameterised benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identify a case by its parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// Identify a case by function name plus parameter.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Timer handed to each benchmark body.
pub struct Bencher {
    elapsed_ns: u128,
    iters: u32,
}

impl Bencher {
    /// Run `routine` repeatedly and record the mean wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
        self.iters = ITERS;
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        elapsed_ns: 0,
        iters: 1,
    };
    f(&mut b);
    let mean = b.elapsed_ns / u128::from(b.iters.max(1));
    println!("bench {label:<48} {mean:>12} ns/iter");
}

/// Group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmark a routine against one input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Benchmark a plain routine under this group.
    pub fn bench_function<S: fmt::Display, F>(&mut self, id: S, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Finish the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Benchmark a single routine.
    pub fn bench_function<S: fmt::Display, F>(&mut self, id: S, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&id.to_string(), f);
        self
    }
}

/// Declare a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::from_parameter("x"), &3u64, |b, v| {
            b.iter(|| v + 1)
        });
        g.bench_function("plain", |b| b.iter(|| 2 + 2));
        g.finish();
        c.bench_function("top", |b| b.iter(|| black_box(1)));
    }
}
