//! The case runner: deterministic seeds, reject bookkeeping, failure
//! reporting.

use crate::strategy::TestRng;

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property is false for this input.
    Fail(String),
    /// A `prop_assume!` precondition rejected this input.
    Reject(String),
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Fixed base seed: runs are reproducible across machines and time.
const BASE_SEED: u64 = 0x0009_a111_u64;

/// Execute up to `config.cases` accepted cases of `case`, panicking on
/// the first failure with the case's seed for replay.
pub fn run(
    config: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> TestCaseResult,
) {
    let max_rejects = config.cases.saturating_mul(64).max(1024);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let mut attempt = 0u64;
    while accepted < config.cases {
        let seed = BASE_SEED ^ attempt.wrapping_mul(0x2545_f491_4f6c_dd1d);
        let mut rng = TestRng::seed_from_u64(seed);
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "property `{name}`: too many prop_assume! rejects \
                         ({rejected} rejects for {accepted} accepted cases)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property failed: `{name}` (case {accepted}, seed {seed:#x}): {msg}");
            }
        }
        attempt += 1;
    }
}
