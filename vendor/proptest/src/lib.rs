//! Minimal, hermetic stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: the
//! [`proptest!`] macro with `arg in strategy` bindings and a
//! `#![proptest_config(...)]` attribute, `any::<T>()` for primitives,
//! integer-range and tuple strategies, [`strategy::Just`],
//! `prop_oneof!`, `prop_map`, [`collection::vec`], and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest: generation is a fixed deterministic
//! seed sequence (reproducible across runs and machines), there is no
//! shrinking, and `*.proptest-regressions` files are ignored.

pub mod strategy;
pub mod test_runner;

/// `Arbitrary` implementations for primitive types.
pub mod arbitrary {
    use crate::strategy::{Strategy, TestRng};
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draw one unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Admissible lengths for a generated collection.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max_exclusive: r.end.max(r.start + 1),
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_exclusive: r.end().saturating_add(1).max(r.start() + 1),
            }
        }
    }

    /// Strategy producing a `Vec` of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Choose uniformly between several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fail the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current test case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Fail the current test case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// Discard the current test case (retried with fresh inputs) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Define `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($config:expr; $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let strategies = ($($strat,)+);
            $crate::test_runner::run(&config, stringify!($name), |rng| {
                #[allow(non_snake_case)]
                let ($($arg,)+) = $crate::strategy::Strategy::generate(&strategies, rng);
                let case = || -> $crate::test_runner::TestCaseResult {
                    $body
                    ::std::result::Result::Ok(())
                };
                case()
            });
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Kind {
        A,
        B,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..9, y in 1u16..=4, z in 0..5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!((0..5).contains(&z));
        }

        #[test]
        fn oneof_map_and_vec(k in prop_oneof![Just(Kind::A), Just(Kind::B)],
                             v in crate::collection::vec(any::<u8>(), 2..6),
                             w in (any::<u32>(), 0usize..4).prop_map(|(a, b)| a as usize + b)) {
            prop_assert!(k == Kind::A || k == Kind::B);
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(w >= 0usize.wrapping_add(0));
        }

        #[test]
        fn assume_rejects_without_failing(n in any::<u8>()) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics() {
        let config = ProptestConfig::with_cases(4);
        crate::test_runner::run(&config, "always_fails", |_| {
            Err(TestCaseError::Fail("nope".into()))
        });
    }
}
