//! The [`Strategy`] trait and combinators.

use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving value production (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded construction; the runner derives one seed per test case.
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A recipe for producing values of one type.
pub trait Strategy {
    /// Type of value produced.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Object-safe view of [`Strategy`]; the target of [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn DynStrategy<T>>;

/// Object-safe generation, implemented by every `Strategy`.
pub trait DynStrategy<T> {
    /// Produce one value.
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.as_ref().generate_dyn(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from a non-empty set of options.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        if options.is_empty() {
            panic!("prop_oneof! requires at least one alternative");
        }
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128).max(1) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128 - *self.start() as i128 + 1).max(1) as u128;
                (*self.start() as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
